//! `timestamp-suite` — umbrella crate for the `timestamp-space` workspace.
//!
//! This crate re-exports the public API of every workspace member so that
//! the examples and integration tests in the repository root can exercise
//! the whole system through a single dependency. Library users should
//! depend on the individual crates instead:
//!
//! - [`ts_register`] — atomic multi-writer multi-reader register substrate
//! - [`ts_snapshot`] — collect / scan / snapshot substrate
//! - [`ts_model`] — formal execution model and mini model-checker
//! - [`ts_core`] — the paper's timestamp algorithms
//! - [`ts_lowerbound`] — covering-argument machinery and bound formulas
//! - [`ts_clocks`] — the introduction's lineage: Lamport/vector/matrix clocks
//! - [`ts_service`] — sharded/batched/combining timestamp service layer
//! - [`ts_replica`] — quorum-replicated register backend over a fault-injecting modelled network
//! - [`ts_apps`] — consumers: FCFS locks, k-exclusion, renaming
//! - [`ts_workloads`] — workload scenario engine with latency histograms
//!
//! # Example
//!
//! ```
//! use timestamp_suite::ts_core::{OneShotTimestamp, SimpleOneShot, Timestamp};
//!
//! let ts = SimpleOneShot::new(4);
//! let a = ts.get_ts(0).unwrap();
//! let b = ts.get_ts(1).unwrap();
//! assert!(Timestamp::compare(&a, &b) || Timestamp::compare(&b, &a));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use ts_apps;
pub use ts_clocks;
pub use ts_core;
pub use ts_lowerbound;
pub use ts_model;
pub use ts_register;
pub use ts_replica;
pub use ts_service;
pub use ts_snapshot;
pub use ts_workloads;
