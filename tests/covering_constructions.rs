//! Cross-crate integration of the lower-bound machinery: the covering
//! constructions driven end-to-end against the model twins of the
//! paper's algorithms.

use timestamp_suite::ts_core::model::{BoundedModel, CollectMaxModel, SimpleModel};
use timestamp_suite::ts_lowerbound::lemma21::probe;
use timestamp_suite::ts_lowerbound::longlived::{signature_recurrence, LongLivedConstruction};
use timestamp_suite::ts_lowerbound::oneshot::{OneShotConstruction, StepCase};
use timestamp_suite::ts_lowerbound::signature::OrderedSignature;
use timestamp_suite::ts_model::{solo_run, System};

#[test]
fn oneshot_construction_meets_theorem12_bound_for_alg4() {
    for n in [16usize, 32, 64, 128] {
        let report = OneShotConstruction::run(BoundedModel::new(n));
        assert!(
            report.final_covered as f64 >= report.lower_bound,
            "n={n}: covered {} < bound {:.2}",
            report.final_covered,
            report.lower_bound
        );
        assert!(
            report.case2_count as f64 <= (n as f64).log2(),
            "n={n}: Case 2 occurred {} times",
            report.case2_count
        );
    }
}

#[test]
fn oneshot_construction_figure1_is_l_constrained() {
    let report = OneShotConstruction::run(BoundedModel::new(64));
    let fig1 = &report.steps[0];
    let ordered = OrderedSignature::from_signature(&fig1.signature);
    // The shortest-prefix rule makes the configuration ℓ-constrained at
    // the moment of recording (the diagonal was *just* reached).
    assert!(
        ordered.diagonal_column(fig1.l).is_some(),
        "Figure 1 must show a column at the diagonal"
    );
}

#[test]
fn oneshot_inductive_steps_grow_j_monotonically() {
    let report = OneShotConstruction::run(BoundedModel::new(64));
    let mut last_j = 0;
    for step in &report.steps {
        assert!(step.j >= last_j, "j regressed at {}", step.label);
        last_j = step.j;
        if let Some(StepCase::Case2) = step.case {
            // Case 2 lowers ℓ by one; final ℓ accounts for all of them.
        }
    }
    assert_eq!(
        report.final_l,
        report.grid_width - report.case2_count,
        "ℓ bookkeeping mismatch"
    );
}

#[test]
fn simple_model_exhaustion_covers_all_pair_registers() {
    for n in [8usize, 16, 24] {
        let report = OneShotConstruction::run(SimpleModel::new(n));
        assert_eq!(report.final_covered, n / 2, "n={n}");
    }
}

#[test]
fn longlived_construction_scales() {
    for n in [6usize, 30, 90] {
        let report = LongLivedConstruction::run(CollectMaxModel::new(n));
        assert_eq!(report.reached_k, n / 2);
        assert!(report.covered >= report.lower_bound);
    }
}

#[test]
fn lemma21_probe_holds_along_the_construction() {
    // At a mid-construction configuration of Algorithm 4's model, pick
    // two coverers of R[1] as singleton blocks and two idle candidates:
    // the Lemma 2.1 disjunction must hold.
    let mut sys = System::new(BoundedModel::new(8));
    for p in 0..4 {
        let out = solo_run(&mut sys, p, &[], 100_000).unwrap();
        assert_eq!(out.covered(), Some(0));
    }
    let outcome = probe(&sys, &[0], &[1], 4, 5, &[0], 100_000);
    assert!(outcome.holds(), "{outcome:?}");
}

#[test]
fn signature_recurrence_terminates_fast_for_collect_max() {
    let (first, second, _) = signature_recurrence(CollectMaxModel::new(6), 2, 8);
    assert!(second > first);
    assert!(second <= 2, "collect-max coverings repeat immediately");
}
