//! End-to-end application tests: the paper's motivating consumers
//! (mutual exclusion, k-exclusion, renaming) running on the timestamp
//! objects, across crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use timestamp_suite::ts_apps::{FcfsLock, KExclusion, OrderPreservingRenaming};

#[test]
fn fcfs_lock_protects_a_counter() {
    let n = 6;
    let iters = 100;
    let lock = Arc::new(FcfsLock::new(n));
    // A plain (non-atomic via unsafe cell pattern would be UB) counter
    // modeled as two atomics that must always agree when observed inside
    // the critical section.
    let a = Arc::new(AtomicUsize::new(0));
    let b = Arc::new(AtomicUsize::new(0));
    crossbeam::scope(|s| {
        for pid in 0..n {
            let lock = Arc::clone(&lock);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            s.spawn(move |_| {
                for _ in 0..iters {
                    let g = lock.lock(pid);
                    let va = a.load(Ordering::Relaxed);
                    let vb = b.load(Ordering::Relaxed);
                    assert_eq!(va, vb, "critical section raced");
                    a.store(va + 1, Ordering::Relaxed);
                    b.store(vb + 1, Ordering::Relaxed);
                    drop(g);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(a.load(Ordering::Relaxed), n * iters);
}

#[test]
fn k_exclusion_throughput_exceeds_mutex() {
    // With k = 3, three holders can be inside at once; we only assert
    // the safety bound here (throughput is a bench concern).
    let n = 6;
    let k = 3;
    let pool = Arc::new(KExclusion::new(n, k));
    let inside = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    crossbeam::scope(|s| {
        for pid in 0..n {
            let pool = Arc::clone(&pool);
            let inside = Arc::clone(&inside);
            let peak = Arc::clone(&peak);
            s.spawn(move |_| {
                for _ in 0..100 {
                    let g = pool.acquire(pid);
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    inside.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                }
            });
        }
    })
    .unwrap();
    assert!(peak.load(Ordering::SeqCst) <= k);
}

#[test]
fn renaming_round_trip_with_waves() {
    let n = 18;
    let renaming = Arc::new(OrderPreservingRenaming::new(n));
    let wave = |lo: usize, hi: usize| -> Vec<u64> {
        crossbeam::scope(|s| {
            let hs: Vec<_> = (lo..hi)
                .map(|p| {
                    let r = Arc::clone(&renaming);
                    s.spawn(move |_| r.acquire(p).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap()
    };
    let w1 = wave(0, 6);
    let w2 = wave(6, 12);
    let w3 = wave(12, 18);
    // Distinctness across all waves.
    let mut all: Vec<u64> = w1.iter().chain(&w2).chain(&w3).copied().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "name collision");
    // Order preservation across waves.
    for a in &w1 {
        for b in &w2 {
            assert!(a < b);
        }
    }
    for b in &w2 {
        for c in &w3 {
            assert!(b < c);
        }
    }
}

#[test]
fn lock_tickets_reflect_fcfs_order() {
    // Sequential lockers get strictly increasing tickets — the
    // timestamp property surfacing through the application layer.
    let lock = FcfsLock::new(3);
    let mut tickets = Vec::new();
    for pid in [2usize, 0, 1] {
        let g = lock.lock(pid);
        tickets.push(lock.ticket_of(pid));
        drop(g);
    }
    assert!(
        tickets[0] < tickets[1] && tickets[1] < tickets[2],
        "{tickets:?}"
    );
}
