//! Space accounting across the full sweep of `n`/`M`, against every
//! closed-form bound in the paper (the EXPERIMENTS.md tables in test
//! form).

use timestamp_suite::ts_core::model::{BoundedModel, SimpleModel};
use timestamp_suite::ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, LongLivedTimestamp, OneShotTimestamp, SimpleOneShot,
};
use timestamp_suite::ts_lowerbound::bounds::{
    bounded_upper_bound, longlived_lower_bound, oneshot_lower_bound, simple_upper_bound,
};
use timestamp_suite::ts_model::RandomScheduler;

#[test]
fn simple_allocation_matches_section5() {
    for n in 1..40 {
        assert_eq!(SimpleOneShot::new(n).registers(), simple_upper_bound(n));
    }
}

#[test]
fn alg4_allocation_matches_theorem13() {
    for n in 2..200 {
        let alloc = OneShotTimestamp::registers(&BoundedTimestamp::one_shot(n));
        assert_eq!(alloc, bounded_upper_bound(n).max(2), "n={n}");
        // and sits asymptotically above the Theorem 1.2 lower bound:
        assert!(alloc as f64 >= oneshot_lower_bound(n), "n={n}");
    }
}

#[test]
fn alg4_written_registers_never_exceed_allocation() {
    for n in [4usize, 9, 17, 33, 65, 129] {
        let ts = BoundedTimestamp::one_shot(n);
        for p in 0..n {
            ts.get_ts(p).unwrap();
        }
        let stats = ts.phase_stats();
        assert!(
            stats.registers_written < stats.m,
            "n={n}: the sentinel must stay unwritten ({stats:?})"
        );
    }
}

#[test]
fn longlived_baseline_sits_above_theorem11_bound() {
    for n in [6usize, 12, 60, 120] {
        let ts = CollectMax::new(n);
        for round in 0..3 {
            for p in 0..n {
                ts.get_ts(p).unwrap();
            }
            let _ = round;
        }
        let written = ts.meter().snapshot().registers_written();
        assert_eq!(written, n);
        assert!(
            written as f64 >= longlived_lower_bound(n),
            "n={n}: {written} registers < n/6−1"
        );
    }
}

#[test]
fn model_twins_agree_with_concrete_space_usage() {
    // The model twin and the real object must write the same number of
    // registers on sequential one-shot workloads.
    for n in [4usize, 8, 16, 32] {
        let real = BoundedTimestamp::one_shot(n);
        for p in 0..n {
            real.get_ts(p).unwrap();
        }
        let real_written = real.phase_stats().registers_written;

        let mut sys = timestamp_suite::ts_model::System::new(BoundedModel::new(n));
        for p in 0..n {
            sys.run_solo_to_completion(p, 1_000_000).unwrap();
        }
        assert_eq!(
            sys.registers_written(),
            real_written,
            "model/concrete divergence at n={n}"
        );
    }
}

#[test]
fn simple_model_twin_matches_concrete_outputs() {
    // Sequential one-shot runs must return identical timestamps from
    // the model twin and the real object, pid by pid.
    for n in [3usize, 6, 11] {
        let real = SimpleOneShot::new(n);
        let mut sys = timestamp_suite::ts_model::System::new(SimpleModel::new(n));
        for p in 0..n {
            let concrete = real.get_ts(p).unwrap();
            let modeled = sys.run_solo_to_completion(p, 10_000).unwrap();
            assert_eq!(concrete, modeled, "n={n} p={p}");
        }
    }
}

#[test]
fn bounded_model_twin_matches_concrete_outputs() {
    for n in [4usize, 10, 20] {
        let real = BoundedTimestamp::one_shot(n);
        let mut sys = timestamp_suite::ts_model::System::new(BoundedModel::new(n));
        for p in 0..n {
            let concrete = real.get_ts(p).unwrap();
            let modeled = sys.run_solo_to_completion(p, 100_000).unwrap();
            assert_eq!(concrete, modeled, "n={n} p={p}");
        }
    }
}

#[test]
fn random_model_runs_respect_space_bounds() {
    for n in [6usize, 10, 14] {
        for seed in 0..10 {
            let r = RandomScheduler::new(seed).run(BoundedModel::new(n));
            assert!(
                r.registers_written <= bounded_upper_bound(n).max(2),
                "n={n} seed {seed}: {} registers",
                r.registers_written
            );
            let r = RandomScheduler::new(seed).run(SimpleModel::new(n));
            assert!(r.registers_written <= simple_upper_bound(n));
        }
    }
}

#[test]
fn phase_accounting_bounds_hold_under_concurrency_sweep() {
    for &budget in &[16usize, 100, 500] {
        for &threads in &[2usize, 8] {
            let ts = BoundedTimestamp::with_budget(budget);
            crossbeam::thread::scope(|s| {
                for t in 0..threads {
                    let ts = &ts;
                    s.spawn(move |_| {
                        let mut k = 0u32;
                        while ts.get_ts_with_id(GetTsId::new(t as u32, k)).is_ok() {
                            k += 1;
                        }
                    });
                }
            })
            .unwrap();
            let stats = ts.phase_stats();
            assert!(stats.phase_bound_holds(), "{stats:?}");
            assert!(stats.invalidation_bound_holds(), "{stats:?}");
            assert!(stats.space_bound_holds(), "{stats:?}");
        }
    }
}
