//! Model checking the paper's algorithms: exhaustive interleaving
//! exploration for small instances, randomized schedules for larger
//! ones, and detection checks against deliberately broken objects.

use timestamp_suite::ts_core::model::{
    BoundedModel, CollectMaxFastModel, CollectMaxModel, HelpingScanModel, SimpleModel,
};
use timestamp_suite::ts_model::toy::{ConstantAlgorithm, CounterAlgorithm};
use timestamp_suite::ts_model::{Explorer, PctScheduler, RandomScheduler};

#[test]
fn simple_model_exhaustive_up_to_four_processes() {
    for n in 2..=4 {
        let report = Explorer::new(SimpleModel::new(n), 1).run();
        assert!(report.violation.is_none(), "n={n}: {:?}", report.violation);
        assert!(report.executions > 0, "n={n}");
        assert!(!report.truncated, "n={n}");
        assert!(!report.depth_bounded, "n={n}: exploration was depth-cut");
    }
}

#[test]
fn bounded_model_exhaustive_two_processes() {
    let report = Explorer::new(BoundedModel::new(2), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    // DPOR counts only branching states (deterministic chains collapse),
    // so the vacuousness floor is on transitions, not states.
    assert!(report.transitions > 100, "suspiciously small exploration");
    assert!(!report.depth_bounded);
}

#[test]
fn bounded_model_exhaustive_three_processes() {
    let report = Explorer::new(BoundedModel::new(3), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.pruned > 0, "state merging must engage");
    assert!(!report.depth_bounded);
}

#[test]
#[ignore = "minutes-scale state space; run with --ignored for the full sweep"]
fn bounded_model_exhaustive_four_processes() {
    let report = Explorer::new(BoundedModel::new(4), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn never_overwrite_policy_is_clean_for_three_processes_exhaustively() {
    // The Section 6.1 bug needs ≥ 5 distinct participants; with 3
    // processes even the Never policy is exhaustively safe. (The bug
    // itself is demonstrated in tests/never_overwrite_bug.rs.)
    use timestamp_suite::ts_core::OverwritePolicy;
    let report = Explorer::new(BoundedModel::with_policy(3, OverwritePolicy::Never), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn collect_max_exhaustive_long_lived() {
    // 2 processes × 2 ops and 3 × 1 op.
    let report = Explorer::new(CollectMaxModel::new(2), 2).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.executions > 0, "vacuous exploration");
    assert!(!report.truncated);
    assert!(!report.depth_bounded);
    let report = Explorer::new(CollectMaxModel::new(3), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.depth_bounded);
}

#[test]
fn collect_max_fast_path_exhaustive_long_lived() {
    // The cached-max fast path (one cache read + one CAS, collect
    // fallback on a lost race): exhaustively explored at 2 processes ×
    // 2 ops and 3 × 1 op. The CAS is one atomic model step, so the
    // explorer covers every stalled-CAS window — including a process
    // parking between its cache advance and its register write while
    // others complete — and any stale max would surface as a property
    // violation here.
    let report = Explorer::new(CollectMaxFastModel::new(2), 2).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.executions > 0, "vacuous exploration");
    assert!(!report.truncated);
    assert!(!report.depth_bounded);
    let report = Explorer::new(CollectMaxFastModel::new(3), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.depth_bounded);
}

#[test]
fn collect_max_fast_exhaustive_three_processes_two_ops() {
    // 3 processes × 2 ops each: the configuration where a stalled CAS
    // from a *previous* operation can overlap a later fast-path read.
    // Out of reach for plain enumeration; the DPOR reduction brings it
    // into the CI budget.
    let report = Explorer::new(CollectMaxFastModel::new(3), 2).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.executions > 0, "vacuous exploration");
    assert!(!report.truncated);
    assert!(!report.depth_bounded);
}

#[test]
fn helping_scan_exhaustive_long_lived() {
    // The adaptive-scan helping protocol (process 0 scans, the rest
    // write with era-tagged help publication), exhaustively at 2
    // processes × 2 ops and 3 × 1 op. `!depth_bounded` is the
    // wait-freedom acceptance gate: the explorer enumerated every
    // interleaving to a Return without the depth cut firing, so no
    // schedule drives the scanner into an unbounded recollect loop —
    // starvation beyond the bound always ends in adoption.
    let report = Explorer::new(HelpingScanModel::new(2), 2).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.executions > 0, "vacuous exploration");
    assert!(!report.truncated);
    assert!(!report.depth_bounded, "an unbounded recollect path exists");
    let report = Explorer::new(HelpingScanModel::new(3), 1).run();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.depth_bounded, "an unbounded recollect path exists");
}

#[test]
fn helping_scan_pct_sweep_three_processes() {
    // PCT depth-6 over the helping protocol at 3 processes × 2 ops:
    // the bug class here is a priority inversion between the scanner's
    // era bump and a writer's help publication (a stale-tagged record
    // adopted across an era boundary would be a depth-2/3 ordering
    // bug; chained adoptions across consecutive scans need the deeper
    // change points).
    for seed in 0..100u64 {
        let report = PctScheduler::new(seed, 6)
            .ops_per_process(2)
            .run(HelpingScanModel::new(3));
        assert!(report.steps > 0, "seed {seed}: empty run");
        assert!(
            report.violation.is_none(),
            "seed {seed}: {:?}",
            report.violation
        );
    }
}

#[test]
fn collect_max_fast_path_pct_sweep_three_processes() {
    // PCT depth-6 on the fast-path twin, mirroring the classic-path
    // sweep below. Stalled-CAS overtakes are depth-2/3 ordering bugs;
    // depth 6 also covers chained overtakes across consecutive ops, and
    // the DPOR-era exhaustive gates freed enough budget to double it.
    for seed in 0..100u64 {
        let report = PctScheduler::new(seed, 6)
            .ops_per_process(2)
            .run(CollectMaxFastModel::new(3));
        assert!(report.steps > 0, "seed {seed}: empty run");
        assert!(
            report.violation.is_none(),
            "seed {seed}: {:?}",
            report.violation
        );
    }
}

#[test]
fn collect_max_pct_sweep_three_processes() {
    // PCT (depth-6: five priority change points) at 3 processes × 2
    // ops, matching the seeded-schedule coverage SimpleOneShot gets
    // from `random_schedules_stay_clean_across_algorithms`. Depth-2/3
    // ordering bugs — a stalled collector overtaken by writers — are
    // PCT's sweet spot and remain covered; depth 6 additionally probes
    // multi-op overtake chains, and stays in the same CI budget.
    for seed in 0..100u64 {
        let report = PctScheduler::new(seed, 6)
            .ops_per_process(2)
            .run(CollectMaxModel::new(3));
        assert!(report.steps > 0, "seed {seed}: empty run");
        assert!(
            report.violation.is_none(),
            "seed {seed}: {:?}",
            report.violation
        );
    }
}

#[test]
fn pct_sweeps_stay_clean_suite_wide() {
    // The same PCT coverage for the other real algorithm models, so
    // every model twin gets exhaustive + random + PCT checking.
    for seed in 0..40u64 {
        let report = PctScheduler::new(seed, 6).run(SimpleModel::new(8));
        assert!(report.violation.is_none(), "simple seed {seed}");
        let report = PctScheduler::new(seed, 6).run(BoundedModel::new(6));
        assert!(report.violation.is_none(), "bounded seed {seed}");
    }
}

#[test]
fn random_schedules_stay_clean_across_algorithms() {
    for seed in 0..30u64 {
        let r = RandomScheduler::new(seed).run(SimpleModel::new(12));
        assert!(r.violation.is_none(), "simple seed {seed}");
        let r = RandomScheduler::new(seed).run(BoundedModel::new(10));
        assert!(r.violation.is_none(), "bounded seed {seed}");
        let r = RandomScheduler::new(seed)
            .ops_per_process(3)
            .run(CollectMaxModel::new(5));
        assert!(r.violation.is_none(), "collectmax seed {seed}");
        let r = RandomScheduler::new(seed)
            .ops_per_process(3)
            .run(CollectMaxFastModel::new(5));
        assert!(r.violation.is_none(), "collectmax-fast seed {seed}");
        let r = RandomScheduler::new(seed)
            .ops_per_process(3)
            .run(HelpingScanModel::new(4));
        assert!(r.violation.is_none(), "helping-scan seed {seed}");
    }
}

#[test]
fn broken_algorithms_are_detected_not_vacuously_passed() {
    // The toy counter is correct at n ≤ 3 and broken at n = 4; the
    // constant object is broken immediately. If these assertions ever
    // fail, the checker itself has regressed.
    assert!(Explorer::new(CounterAlgorithm::new(3), 1)
        .run()
        .violation
        .is_none());
    assert!(Explorer::new(CounterAlgorithm::new(4), 1)
        .run()
        .violation
        .is_some());
    assert!(Explorer::new(ConstantAlgorithm::new(2), 1)
        .run()
        .violation
        .is_some());
}

#[test]
fn explorer_counterexamples_replay() {
    use timestamp_suite::ts_model::System;
    let report = Explorer::new(CounterAlgorithm::new(4), 1).run();
    let violation = report.violation.expect("counter breaks at n=4");
    let mut sys = System::new(CounterAlgorithm::new(4));
    for &pid in &violation.schedule {
        sys.step(pid).unwrap();
    }
    assert!(sys.check_property().is_some());
}
