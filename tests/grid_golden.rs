//! Golden tests pinning the grid rendering and the deterministic
//! construction artifacts: if either the adversary or the renderer
//! changes behaviour, these diffs surface it immediately.

use timestamp_suite::ts_core::model::BoundedModel;
use timestamp_suite::ts_lowerbound::grid::Grid;
use timestamp_suite::ts_lowerbound::oneshot::OneShotConstruction;
use timestamp_suite::ts_lowerbound::signature::OrderedSignature;

/// Compares renderings ignoring trailing whitespace per line.
fn assert_grid_eq(actual: &str, expected_lines: &[&str]) {
    let actual_trimmed: Vec<&str> = actual.lines().map(str::trim_end).collect();
    assert_eq!(actual_trimmed, expected_lines, "\n{actual}");
}

#[test]
fn figure1_grid_for_n16_is_stable() {
    let report = OneShotConstruction::run(BoundedModel::new(16));
    assert_grid_eq(
        &report.steps[0].grid,
        &[
            "  4 |*",
            "  3 |#/",
            "  2 |#./",
            "  1 |#../",
            "    +--------",
            "     12345678",
        ],
    );
}

#[test]
fn grid_rendering_of_a_hand_built_signature() {
    let grid = Grid::new(OrderedSignature::from_signature(&[3, 2, 0, 0]), 5);
    assert_grid_eq(
        &grid.render(),
        &[
            "  4 |/",
            "  3 |#/",
            "  2 |##/",
            "  1 |##./",
            "    +----",
            "     1234",
        ],
    );
}

#[test]
fn construction_is_deterministic() {
    let a = OneShotConstruction::run(BoundedModel::new(32));
    let b = OneShotConstruction::run(BoundedModel::new(32));
    assert_eq!(a.final_j, b.final_j);
    assert_eq!(a.final_covered, b.final_covered);
    assert_eq!(a.steps.len(), b.steps.len());
    for (x, y) in a.steps.iter().zip(&b.steps) {
        assert_eq!(x.grid, y.grid);
        assert_eq!(x.signature, y.signature);
    }
}

#[test]
fn sequential_walkthrough_trace_is_stable() {
    // The model trace of a two-call sequential run of Algorithm 4 pins
    // the register access pattern of the pseudocode.
    use timestamp_suite::ts_model::trace;
    // m = 3 registers
    let alg = BoundedModel::new(2);
    // p0 solo: invoke, read R1(⊥), two collects (3 reads each), write
    // R1, done = 1 + 1 + 6 + 1 + 1 = 10 slots; then p1.
    let schedule: Vec<usize> = std::iter::repeat_n(0, 10)
        .chain(std::iter::repeat_n(1, 13))
        .collect();
    let rendered = trace::render(&alg, &schedule);
    assert!(
        rendered.contains("p0 returns Timestamp { rnd: 1, turn: 0 }"),
        "{rendered}"
    );
    assert!(
        rendered.contains("p1 returns Timestamp { rnd: 2, turn: 0 }"),
        "{rendered}"
    );
    // The sentinel register R[3] is read but never written.
    assert!(rendered.contains("reads  R[3]"), "{rendered}");
    assert!(!rendered.contains("writes R[3]"), "{rendered}");
}
