//! Property-based tests for the service layer's timestamp algebra.
//!
//! Three law families, each a paper-facing claim:
//!
//! - the lexicographic order on [`ShardedTimestamp`] is a *strict total
//!   order* (irreflexive, asymmetric, transitive, total on distinct
//!   triples) — the service's cross-client guarantee is exactly this
//!   order, so its laws carry the whole relaxation;
//! - a client session's stamps are *strictly increasing* under any
//!   interleaving of single issues, batches, combining passes and shard
//!   migrations — per-client monotonicity is the other half of the
//!   guarantee;
//! - serde round-trips are *byte-stable*: deserialize ∘ serialize is
//!   identity on values **and** serialize ∘ deserialize is identity on
//!   bytes, so recorded bench rows and replay corpora can be diffed
//!   textually across versions.

use proptest::prelude::*;

use timestamp_suite::ts_core::ShardedTimestamp;
use timestamp_suite::ts_service::{ServiceConfig, ShardedCollectMax};

fn stamp_strategy() -> impl Strategy<Value = ShardedTimestamp> {
    (0u32..50, 0u32..50, 0u32..8).prop_map(|(e, l, s)| ShardedTimestamp::new(e, l, s))
}

proptest! {
    /// Strict total order: irreflexive, asymmetric + total on distinct
    /// triples, and agreeing with the lexicographic tuple order it is
    /// documented to be.
    #[test]
    fn sharded_compare_is_a_strict_total_order(a in stamp_strategy(), b in stamp_strategy()) {
        prop_assert!(!ShardedTimestamp::compare(&a, &a));
        if a == b {
            prop_assert!(!ShardedTimestamp::compare(&a, &b));
            prop_assert!(!ShardedTimestamp::compare(&b, &a));
        } else {
            prop_assert!(ShardedTimestamp::compare(&a, &b) ^ ShardedTimestamp::compare(&b, &a));
            let lex = (a.epoch, a.local, a.shard) < (b.epoch, b.local, b.shard);
            prop_assert_eq!(ShardedTimestamp::compare(&a, &b), lex);
        }
    }

    /// Transitivity (sampled over triples).
    #[test]
    fn sharded_compare_is_transitive(
        a in stamp_strategy(), b in stamp_strategy(), c in stamp_strategy()
    ) {
        if ShardedTimestamp::compare(&a, &b) && ShardedTimestamp::compare(&b, &c) {
            prop_assert!(ShardedTimestamp::compare(&a, &c));
        }
    }

    /// The packed `(epoch, local)` word order agrees with the stamp
    /// order shard-locally, and `from_word` inverts `word`.
    #[test]
    fn word_encoding_is_order_preserving(a in stamp_strategy(), b in stamp_strategy()) {
        prop_assert_eq!(ShardedTimestamp::from_word(a.word(), a.shard), a);
        if a.shard == b.shard {
            prop_assert_eq!(a.word() < b.word(), ShardedTimestamp::compare(&a, &b));
        }
    }

    /// Per-client monotonicity survives any action sequence: every
    /// issued stamp strictly exceeds the session's previous one, across
    /// batches, combining passes and shard migrations, on every shard
    /// shape.
    #[test]
    fn session_stamps_increase_under_any_action_sequence(
        shards in 1usize..5,
        slots in 1usize..3,
        seed_actions in proptest::collection::vec((0u8..4, 1u32..18, 0usize..8), 1..40),
    ) {
        let service = ShardedCollectMax::new(ServiceConfig::new(shards, slots));
        let mut session = service.session();
        let mut prev: Option<ShardedTimestamp> = None;
        let mut issued: u64 = 0;
        for (kind, k, raw_shard) in seed_actions {
            let (first, last) = match kind {
                0 => { let t = session.get_ts(); (t, t) }
                1 => {
                    let b = session.get_ts_batch(k);
                    prop_assert_eq!(b.len() as u32, k);
                    (b.first_stamp(), b.last_stamp())
                }
                2 => { let t = session.get_ts_combined(); (t, t) }
                _ => { session.migrate(raw_shard % shards); continue }
            };
            issued += u64::from(if kind == 1 { k } else { 1 });
            if let Some(p) = prev {
                prop_assert!(
                    ShardedTimestamp::compare(&p, &first),
                    "stamp did not advance: {} !< {}", p, first
                );
            }
            prop_assert!(
                first == last || ShardedTimestamp::compare(&first, &last),
                "batch ends below its start: {} !<= {}", first, last
            );
            prev = Some(last);
        }
        prop_assert_eq!(service.stats().stamps, issued);
    }

    /// Serde round-trips: value identity through the wire format, and
    /// byte identity when re-serializing what was parsed.
    #[test]
    fn serde_round_trips_byte_stably(t in stamp_strategy()) {
        let json = serde_json::to_string(&t).expect("stamps serialize");
        let back: ShardedTimestamp = serde_json::from_str(&json).expect("stamps parse");
        prop_assert_eq!(back, t);
        let again = serde_json::to_string(&back).expect("stamps re-serialize");
        prop_assert_eq!(again, json, "re-serialization changed bytes");
    }
}

/// Two sessions on different shards issue stamps that the total order
/// still ranks — no incomparable pairs exist, which is what lets
/// `Compare` stay shared-memory-free.
#[test]
fn cross_shard_stamps_are_always_comparable() {
    let service = ShardedCollectMax::new(ServiceConfig::new(2, 1));
    let mut a = service.session();
    let mut b = service.session();
    assert_ne!(a.shard(), b.shard());
    let (ta, tb) = (a.get_ts(), b.get_ts());
    assert!(ShardedTimestamp::compare(&ta, &tb) ^ ShardedTimestamp::compare(&tb, &ta));
}
