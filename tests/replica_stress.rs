//! Multi-threaded storms over the quorum-replicated backend under
//! partition/heal churn.
//!
//! Every replica's monotonic-register invariant is an *armed* runtime
//! assert (not a debug assert), so these storms double as invariant
//! fuzzers: any handler that regressed a stored stamp would abort the
//! whole test process. The specific regression pinned here is the
//! killed-and-healed minority: a replica isolated across acknowledged
//! writes and then reconnected must never cause a stale read, because
//! every read quorum still intersects every write quorum and reads
//! take the maximum.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use timestamp_suite::ts_core::{CollectMax, LongLivedTimestamp, Timestamp};
use timestamp_suite::ts_replica::{with_cluster, Cluster, ClusterConfig, FaultPlan, QuorumBackend};

/// Rotates single-replica partitions (always a minority for f >= 1)
/// until `done` flips, healing between victims.
fn churn_partitions(cluster: &Cluster, done: &AtomicBool) {
    let n = cluster.replicas();
    let mut victim = 0u32;
    while !done.load(Ordering::Relaxed) {
        cluster.router().partition(&[victim]);
        for _ in 0..50 {
            if done.load(Ordering::Relaxed) {
                break;
            }
            std::thread::yield_now();
        }
        cluster.router().heal();
        victim = (victim + 1) % n as u32;
        std::thread::yield_now();
    }
    cluster.router().heal();
}

/// Writer/reader storm on the replicated collect-max object while a
/// churn thread partitions and heals one replica at a time. Each
/// worker checks its own timestamps strictly increase; the armed
/// replica invariant checks no stored stamp ever regresses.
#[test]
fn collect_max_storm_survives_partition_heal_churn() {
    const THREADS: usize = 4;
    const OPS: usize = 300;
    let plan = FaultPlan {
        seed: 0xc0ffee,
        delay_max: 2,
        reorder: true,
        ..FaultPlan::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
    let ts = with_cluster(&cluster, || {
        CollectMax::<QuorumBackend>::with_backend(THREADS)
    });
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| churn_partitions(&cluster, &done));
        let handles: Vec<_> = (0..THREADS)
            .map(|pid| {
                let ts = &ts;
                s.spawn(move || {
                    let mut prev: Option<Timestamp> = None;
                    for _ in 0..OPS {
                        let t = ts.get_ts(pid).expect("pid in range");
                        if let Some(p) = prev {
                            assert!(
                                Timestamp::compare(&p, &t),
                                "p{pid}: timestamps regressed under churn: {p} !< {t}"
                            );
                        }
                        prev = Some(t);
                    }
                    prev.expect("ran ops")
                })
            })
            .collect();
        let finals: Vec<Timestamp> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Relaxed);
        // Every op went somewhere: the global maximum covers at least
        // the longest per-thread chain.
        let max = finals.iter().map(|t| t.rnd).max().unwrap();
        assert!(max >= OPS as u64, "global max {max} < per-thread op count");
    });

    assert!(
        cluster.quorum_rounds() > 0,
        "the storm ran through the quorum protocol"
    );
}

/// The stale-read regression: a minority replica is isolated, writes
/// are acknowledged without it, it heals — and every subsequent read,
/// from *every* rotation window (one fresh client thread per window),
/// must return the last acknowledged write, never the healed replica's
/// stale word.
#[test]
fn killed_and_healed_minority_never_causes_a_stale_read() {
    let cluster = Cluster::new(ClusterConfig::new(1).with_plan(FaultPlan {
        seed: 7,
        ..FaultPlan::default()
    }));
    let reg = cluster.alloc_register(0);
    let n = cluster.replicas();

    for round in 1..=20u64 {
        let victim = ((round as usize) % n) as u32;
        cluster.router().partition(&[victim]);
        let stamp = cluster.abd_write(reg, round);
        // The ack really excluded the victim: it is still behind.
        assert!(
            cluster.replica(victim as usize).stored(reg).0 < stamp,
            "round {round}: the isolated replica saw the write"
        );
        cluster.router().heal();

        // One reader per rotation window (fresh threads mint fresh
        // client ids, so collectively the windows cover every replica,
        // including the stale one).
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    let (read_stamp, word) = cluster.abd_read(reg);
                    assert_eq!(word, round, "stale read after heal");
                    assert!(read_stamp >= stamp);
                });
            }
        });
    }
    assert!(
        cluster.quorum_repairs() > 0,
        "healed replicas were brought forward by read-repair"
    );
}

/// Concurrent writers and readers on one replicated register under a
/// lossy, reordering network: each reader's observed stamp sequence
/// per register must be non-decreasing (reads take quorum maxima and
/// replicas never regress), and the final word must be one of the
/// written values.
#[test]
fn concurrent_register_storm_observes_monotone_stamps() {
    const WRITERS: usize = 3;
    const READERS: usize = 3;
    const OPS: u64 = 200;
    let plan = FaultPlan {
        seed: 99,
        drop_permille: 30,
        dup_permille: 20,
        delay_max: 2,
        reorder: true,
        ..FaultPlan::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
    let reg = cluster.alloc_register(0);
    let issued = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let cluster = Arc::clone(&cluster);
            let issued = &issued;
            s.spawn(move || {
                for i in 1..=OPS {
                    // Distinct words per writer; low bits tag the writer.
                    cluster.abd_write(reg, i * WRITERS as u64 + w);
                    issued.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for _ in 0..READERS {
            let cluster = Arc::clone(&cluster);
            s.spawn(move || {
                let mut last = None;
                loop {
                    let (stamp, _) = cluster.abd_read(reg);
                    if let Some(prev) = last {
                        assert!(stamp >= prev, "reader saw stamps regress: {stamp} < {prev}");
                    }
                    last = Some(stamp);
                    if stamp.seq as u64 >= OPS {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let (final_stamp, final_word) = cluster.abd_read(reg);
    // Sequence numbers grow by exactly one per successful install, so
    // the final stamp counts the writes that actually advanced the
    // register; concurrent writers may overwrite each other (last
    // writer wins) but the end state must be some writer's last word.
    assert!(final_stamp.seq as u64 >= OPS);
    assert!(
        final_word >= OPS * WRITERS as u64,
        "final word {final_word} is stale"
    );
}
