//! Property-based tests (proptest) over schedules, budgets and
//! timestamp algebra.

use proptest::prelude::*;

use timestamp_suite::ts_core::model::{BoundedModel, CollectMaxModel, SimpleModel};
use timestamp_suite::ts_core::{
    BoundedTimestamp, GetTsId, OneShotTimestamp, SimpleOneShot, Timestamp,
};
use timestamp_suite::ts_lowerbound::bounds::bounded_upper_bound;
use timestamp_suite::ts_lowerbound::signature::{as_3k_configuration, OrderedSignature};
use timestamp_suite::ts_model::RandomScheduler;

proptest! {
    /// Algorithm 3's compare is a strict total order on distinct pairs.
    #[test]
    fn compare_is_a_strict_total_order(
        a_rnd in 0u64..100, a_turn in 0u64..100,
        b_rnd in 0u64..100, b_turn in 0u64..100,
    ) {
        let a = Timestamp::new(a_rnd, a_turn);
        let b = Timestamp::new(b_rnd, b_turn);
        // irreflexive
        prop_assert!(!Timestamp::compare(&a, &a));
        // asymmetric + total on distinct values
        if a != b {
            prop_assert!(Timestamp::compare(&a, &b) ^ Timestamp::compare(&b, &a));
        } else {
            prop_assert!(!Timestamp::compare(&a, &b) && !Timestamp::compare(&b, &a));
        }
    }

    /// compare is transitive (sampled).
    #[test]
    fn compare_is_transitive(
        vals in proptest::collection::vec((0u64..20, 0u64..20), 3)
    ) {
        let t: Vec<Timestamp> = vals.iter().map(|&(r, u)| Timestamp::new(r, u)).collect();
        if Timestamp::compare(&t[0], &t[1]) && Timestamp::compare(&t[1], &t[2]) {
            prop_assert!(Timestamp::compare(&t[0], &t[2]));
        }
    }

    /// ⌈2√M⌉ is exact: m² ≥ 4M and (m−1)² < 4M.
    #[test]
    fn register_budget_is_exact_ceiling(m_calls in 1usize..1_000_000) {
        let m = bounded_upper_bound(m_calls);
        prop_assert!(m * m >= 4 * m_calls);
        prop_assert!((m - 1) * (m - 1) < 4 * m_calls);
    }

    /// Random model schedules never violate the property, for every
    /// algorithm (the model checker as a property).
    #[test]
    fn random_schedules_are_clean(seed in 0u64..10_000, n in 2usize..9) {
        let r = RandomScheduler::new(seed).run(SimpleModel::new(n));
        prop_assert!(r.violation.is_none(), "simple: {:?}", r.violation);
        let r = RandomScheduler::new(seed).run(BoundedModel::new(n));
        prop_assert!(r.violation.is_none(), "bounded: {:?}", r.violation);
        let r = RandomScheduler::new(seed).ops_per_process(2).run(CollectMaxModel::new(n));
        prop_assert!(r.violation.is_none(), "collectmax: {:?}", r.violation);
    }

    /// Ordered signatures are permutations: same multiset, sorted.
    #[test]
    fn ordered_signature_is_a_sorted_permutation(sig in proptest::collection::vec(0usize..5, 0..12)) {
        let o = OrderedSignature::from_signature(&sig);
        let mut sorted = sig.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(o.entries(), sorted.as_slice());
        prop_assert_eq!(o.total(), sig.iter().sum::<usize>());
    }

    /// (3,k) detection agrees with its definition.
    #[test]
    fn three_k_detection_matches_definition(sig in proptest::collection::vec(0usize..6, 0..10)) {
        let got = as_3k_configuration(&sig);
        let expected = sig.iter().all(|&c| c <= 3).then(|| sig.iter().sum::<usize>());
        prop_assert_eq!(got, expected);
    }

    /// Sequential one-shot calls on the real objects always strictly
    /// increase, for any interleaving of *which* processes call next.
    #[test]
    fn sequential_calls_increase_for_any_pid_order(perm in proptest::sample::subsequence((0..12usize).collect::<Vec<_>>(), 1..12)) {
        let simple = SimpleOneShot::new(12);
        let alg4 = BoundedTimestamp::one_shot(12);
        let mut last_simple: Option<Timestamp> = None;
        let mut last_alg4: Option<Timestamp> = None;
        for &pid in &perm {
            let s = simple.get_ts(pid).unwrap();
            let b = alg4.get_ts(pid).unwrap();
            if let Some(prev) = last_simple {
                prop_assert!(Timestamp::compare(&prev, &s));
            }
            if let Some(prev) = last_alg4 {
                prop_assert!(Timestamp::compare(&prev, &b));
            }
            last_simple = Some(s);
            last_alg4 = Some(b);
        }
    }

    /// The budgeted object admits exactly min(attempts, budget) calls.
    #[test]
    fn budget_admission_is_exact(budget in 1usize..60, attempts in 1usize..80) {
        let ts = BoundedTimestamp::with_budget(budget);
        let granted = (0..attempts)
            .filter(|&k| ts.get_ts_with_id(GetTsId::new(0, k as u32)).is_ok())
            .count();
        prop_assert_eq!(granted, budget.min(attempts));
    }
}
