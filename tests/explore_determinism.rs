//! Parallel exploration must be deterministic: the partitioned mode's
//! report — violation schedule, every counter — is a pure function of
//! the configuration, independent of worker count and thread timing.
//! The explorer guarantees this by construction (constant-size BFS
//! frontier, per-item state caches, associative merge with the
//! lexicographically least violation winning); these tests are the
//! regression net over that construction.

use timestamp_suite::ts_core::model::{CollectMaxFastModel, CollectMaxModel};
use timestamp_suite::ts_model::toy::{ConstantAlgorithm, CounterAlgorithm};
use timestamp_suite::ts_model::{CacheMode, Explorer};

#[test]
fn clean_model_reports_identical_across_thread_counts() {
    let reports: Vec<_> = [1, 2, 4]
        .iter()
        .map(|&t| {
            Explorer::new(CollectMaxModel::new(3), 1)
                .with_threads(t)
                .run()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 4 threads");
    assert!(reports[0].violation.is_none());
    assert!(reports[0].executions > 0);
}

#[test]
fn violating_model_reports_identical_across_thread_counts() {
    let reports: Vec<_> = [1, 2, 4]
        .iter()
        .map(|&t| {
            Explorer::new(CounterAlgorithm::new(4), 1)
                .with_threads(t)
                .run()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 4 threads");
    let violation = reports[0]
        .violation
        .as_ref()
        .expect("counter breaks at n=4");
    assert!(!violation.schedule.is_empty());
}

#[test]
fn repeated_runs_are_identical() {
    for threads in [1, 3] {
        let a = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(threads)
            .run();
        let b = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(threads)
            .run();
        assert_eq!(a, b, "threads={threads}");
    }
}

#[test]
fn determinism_holds_with_outcome_recording_and_exact_cache() {
    let a = Explorer::new(ConstantAlgorithm::new(3), 1)
        .with_threads(1)
        .with_cache(CacheMode::Exact)
        .record_outcomes(true)
        .run();
    let b = Explorer::new(ConstantAlgorithm::new(3), 1)
        .with_threads(4)
        .with_cache(CacheMode::Exact)
        .record_outcomes(true)
        .run();
    assert_eq!(a, b);
    assert!(a.violation.is_some());
    assert!(a.outcomes.as_ref().is_some_and(|o| !o.is_empty()));
}

#[test]
fn parallel_counterexample_is_the_lexicographic_minimum_of_candidates() {
    // Two runs at different thread counts must report the same
    // schedule, and that schedule must actually reproduce.
    use timestamp_suite::ts_model::System;
    let one = Explorer::new(CollectMaxFastModel::new(2), 2)
        .with_threads(1)
        .run();
    let many = Explorer::new(CollectMaxFastModel::new(2), 2)
        .with_threads(4)
        .run();
    assert_eq!(one, many);
    // This model is clean; the broken counter supplies the violating
    // counterpart.
    assert!(one.violation.is_none());

    let broken_one = Explorer::new(CounterAlgorithm::new(4), 1)
        .with_threads(1)
        .run();
    let broken_many = Explorer::new(CounterAlgorithm::new(4), 1)
        .with_threads(4)
        .run();
    let schedule_one = broken_one.violation.expect("violates").schedule;
    let schedule_many = broken_many.violation.expect("violates").schedule;
    assert_eq!(schedule_one, schedule_many);
    let mut sys = System::new(CounterAlgorithm::new(4));
    for &pid in &schedule_one {
        sys.step(pid).unwrap();
    }
    assert!(sys.check_property().is_some(), "counterexample must replay");
}
