//! Real-thread stress tests: barrier-separated rounds establish genuine
//! happens-before edges, and every cross-round timestamp pair must
//! compare correctly — for every concrete object in the crate.

use std::sync::Arc;

use timestamp_suite::ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, GrowableTimestamp, LongLivedTimestamp, OneShotTimestamp,
    SimpleOneShot, Timestamp,
};

fn assert_rounds_ordered(rounds: &[Vec<Timestamp>]) {
    for i in 0..rounds.len() {
        for j in i + 1..rounds.len() {
            for a in &rounds[i] {
                for b in &rounds[j] {
                    assert!(
                        Timestamp::compare(a, b),
                        "round {i} ts {a} !< round {j} ts {b}"
                    );
                    assert!(
                        !Timestamp::compare(b, a),
                        "round {j} ts {b} < round {i} ts {a}"
                    );
                }
            }
        }
    }
}

#[test]
fn simple_oneshot_eight_rounds_of_eight() {
    let rounds_n = 8;
    let per_round = 8;
    let ts = Arc::new(SimpleOneShot::new(rounds_n * per_round));
    let mut rounds = Vec::new();
    for r in 0..rounds_n {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..per_round)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    let pid = r * per_round + i;
                    s.spawn(move |_| ts.get_ts(pid).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        rounds.push(outs);
    }
    assert_rounds_ordered(&rounds);
    // Space: all ⌈n/2⌉ registers and no more.
    assert_eq!(
        ts.meter().snapshot().registers_written(),
        (rounds_n * per_round) / 2
    );
}

#[test]
fn bounded_oneshot_rounds_and_bounds() {
    let n = 128;
    let ts = Arc::new(BoundedTimestamp::one_shot(n));
    let mut rounds = Vec::new();
    for r in 0..8 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..n / 8)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    let pid = r * (n / 8) + i;
                    s.spawn(move |_| ts.get_ts(pid).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        rounds.push(outs);
    }
    assert_rounds_ordered(&rounds);
    let stats = ts.phase_stats();
    assert!(stats.space_bound_holds(), "{stats:?}");
    assert!(stats.phase_bound_holds(), "{stats:?}");
    assert!(stats.invalidation_bound_holds(), "{stats:?}");
}

#[test]
fn budgeted_object_under_oversubscription() {
    // More threads than budget: exactly `budget` calls succeed, the rest
    // fail cleanly, and the successful ones are still ordered.
    let budget = 48;
    let threads = 8;
    let per_thread = 10; // 80 attempts > 48 budget
    let ts = Arc::new(BoundedTimestamp::with_budget(budget));
    let results: Vec<Vec<Option<Timestamp>>> = crossbeam::thread::scope(|s| {
        let hs: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                s.spawn(move |_| {
                    (0..per_thread)
                        .map(|k| ts.get_ts_with_id(GetTsId::new(t as u32, k as u32)).ok())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        hs.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    let granted: usize = results.iter().flatten().filter(|r| r.is_some()).count();
    assert_eq!(granted, budget);
    // Per-thread sequences must strictly increase (same thread = real
    // happens-before).
    for row in &results {
        let own: Vec<Timestamp> = row.iter().flatten().copied().collect();
        for w in own.windows(2) {
            assert!(Timestamp::compare(&w[0], &w[1]), "{} !< {}", w[0], w[1]);
        }
    }
}

#[test]
fn collect_max_long_lived_heavy_rounds() {
    let n = 16;
    let ts = Arc::new(CollectMax::new(n));
    let mut prev_max: Option<Timestamp> = None;
    for round in 0..10 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..n)
                .map(|p| {
                    let ts = Arc::clone(&ts);
                    s.spawn(move |_| ts.get_ts(p).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        if let Some(pm) = prev_max {
            assert!(
                Timestamp::compare(&pm, &min),
                "round {round}: {pm} !< {min}"
            );
        }
        prev_max = Some(max);
    }
    assert_eq!(ts.calls(), 160);
}

#[test]
fn growable_concurrent_rounds() {
    let ts = Arc::new(GrowableTimestamp::new());
    let mut prev_max: Option<Timestamp> = None;
    for round in 0..5u32 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..12u32)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    s.spawn(move |_| ts.get_ts_with_id(GetTsId::new(i, round)))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        if let Some(pm) = prev_max {
            assert!(Timestamp::compare(&pm, &min), "round {round}");
        }
        prev_max = Some(max);
    }
    // Space stays √-ish: 60 calls → well under 2√60 ≈ 15.5 + concurrency
    // slack; assert a generous cap to catch runaway growth.
    assert!(
        ts.registers_touched() <= 24,
        "growable touched {} registers for 60 calls",
        ts.registers_touched()
    );
}

#[test]
fn broken_objects_fail_the_round_check() {
    use timestamp_suite::ts_core::{BrokenConstant, BrokenStaleRead};
    let ts = BrokenConstant::new(4);
    let a = ts.get_ts(0).unwrap();
    let b = ts.get_ts(1).unwrap();
    assert!(!Timestamp::compare(&a, &b), "checker must be able to fail");
    let ts = BrokenStaleRead::new(4);
    let a = ts.get_ts(0).unwrap();
    let b = ts.get_ts(1).unwrap();
    assert!(!Timestamp::compare(&a, &b));
}
