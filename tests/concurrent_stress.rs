//! Real-thread stress tests: barrier-separated rounds establish genuine
//! happens-before edges, and every cross-round timestamp pair must
//! compare correctly — for every concrete object in the crate.

use std::sync::Arc;

use timestamp_suite::ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, GrowableTimestamp, LongLivedTimestamp, OneShotTimestamp,
    SimpleOneShot, Timestamp,
};

fn assert_rounds_ordered(rounds: &[Vec<Timestamp>]) {
    for i in 0..rounds.len() {
        for j in i + 1..rounds.len() {
            for a in &rounds[i] {
                for b in &rounds[j] {
                    assert!(
                        Timestamp::compare(a, b),
                        "round {i} ts {a} !< round {j} ts {b}"
                    );
                    assert!(
                        !Timestamp::compare(b, a),
                        "round {j} ts {b} < round {i} ts {a}"
                    );
                }
            }
        }
    }
}

#[test]
fn simple_oneshot_eight_rounds_of_eight() {
    let rounds_n = 8;
    let per_round = 8;
    let ts = Arc::new(SimpleOneShot::new(rounds_n * per_round));
    let mut rounds = Vec::new();
    for r in 0..rounds_n {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..per_round)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    let pid = r * per_round + i;
                    s.spawn(move |_| ts.get_ts(pid).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        rounds.push(outs);
    }
    assert_rounds_ordered(&rounds);
    // Space: all ⌈n/2⌉ registers and no more.
    assert_eq!(
        ts.meter().snapshot().registers_written(),
        (rounds_n * per_round) / 2
    );
}

#[test]
fn bounded_oneshot_rounds_and_bounds() {
    let n = 128;
    let ts = Arc::new(BoundedTimestamp::one_shot(n));
    let mut rounds = Vec::new();
    for r in 0..8 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..n / 8)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    let pid = r * (n / 8) + i;
                    s.spawn(move |_| ts.get_ts(pid).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        rounds.push(outs);
    }
    assert_rounds_ordered(&rounds);
    let stats = ts.phase_stats();
    assert!(stats.space_bound_holds(), "{stats:?}");
    assert!(stats.phase_bound_holds(), "{stats:?}");
    assert!(stats.invalidation_bound_holds(), "{stats:?}");
}

#[test]
fn budgeted_object_under_oversubscription() {
    // More threads than budget: exactly `budget` calls succeed, the rest
    // fail cleanly, and the successful ones are still ordered.
    let budget = 48;
    let threads = 8;
    let per_thread = 10; // 80 attempts > 48 budget
    let ts = Arc::new(BoundedTimestamp::with_budget(budget));
    let results: Vec<Vec<Option<Timestamp>>> = crossbeam::thread::scope(|s| {
        let hs: Vec<_> = (0..threads)
            .map(|t| {
                let ts = Arc::clone(&ts);
                s.spawn(move |_| {
                    (0..per_thread)
                        .map(|k| ts.get_ts_with_id(GetTsId::new(t as u32, k as u32)).ok())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        hs.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    let granted: usize = results.iter().flatten().filter(|r| r.is_some()).count();
    assert_eq!(granted, budget);
    // Per-thread sequences must strictly increase (same thread = real
    // happens-before).
    for row in &results {
        let own: Vec<Timestamp> = row.iter().flatten().copied().collect();
        for w in own.windows(2) {
            assert!(Timestamp::compare(&w[0], &w[1]), "{} !< {}", w[0], w[1]);
        }
    }
}

#[test]
fn collect_max_long_lived_heavy_rounds() {
    let n = 16;
    let ts = Arc::new(CollectMax::new(n));
    let mut prev_max: Option<Timestamp> = None;
    for round in 0..10 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..n)
                .map(|p| {
                    let ts = Arc::clone(&ts);
                    s.spawn(move |_| ts.get_ts(p).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        if let Some(pm) = prev_max {
            assert!(
                Timestamp::compare(&pm, &min),
                "round {round}: {pm} !< {min}"
            );
        }
        prev_max = Some(max);
    }
    assert_eq!(ts.calls(), 160);
}

#[test]
fn growable_concurrent_rounds() {
    let ts = Arc::new(GrowableTimestamp::new());
    let mut prev_max: Option<Timestamp> = None;
    for round in 0..5u32 {
        let outs: Vec<Timestamp> = crossbeam::thread::scope(|s| {
            let hs: Vec<_> = (0..12u32)
                .map(|i| {
                    let ts = Arc::clone(&ts);
                    s.spawn(move |_| ts.get_ts_with_id(GetTsId::new(i, round)))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        if let Some(pm) = prev_max {
            assert!(Timestamp::compare(&pm, &min), "round {round}");
        }
        prev_max = Some(max);
    }
    // Space stays √-ish: 60 calls → well under 2√60 ≈ 15.5 + concurrency
    // slack; assert a generous cap to catch runaway growth.
    assert!(
        ts.registers_touched() <= 24,
        "growable touched {} registers for 60 calls",
        ts.registers_touched()
    );
}

#[test]
fn writer_storm_scans_stay_within_the_starvation_bound() {
    // Wait-freedom under a perpetual storm: writers run until every
    // scanner is done (scan completion can never depend on the storm
    // pausing), and each scan must either validate within a bounded
    // number of retry passes or adopt a helped view. The bound is the
    // helping protocol's: `starvation_bound` tolerated failures, plus
    // up to one pass per writer already in flight before distress was
    // visible (they store without publishing), plus one pass per
    // writer racing the distress raise, plus adoption slack.
    use std::sync::atomic::{AtomicBool, Ordering};
    use timestamp_suite::ts_register::RegisterArray;
    use timestamp_suite::ts_snapshot::{helping_scan, helping_write, HelpBoard, ScanPolicy};

    let writers = 6usize;
    let scanners = 3usize;
    let scans_each = 150usize;
    let policy = ScanPolicy {
        starvation_bound: 2,
    };
    let limit = u64::from(policy.starvation_bound) + 2 * writers as u64 + 2;

    let array = Arc::new(RegisterArray::new(256, 0u64));
    let board = Arc::new(HelpBoard::new(writers));
    let stop = Arc::new(AtomicBool::new(false));

    let per_scanner: Vec<(u64, u64)> = crossbeam::thread::scope(|s| {
        for w in 0..writers {
            let (array, board, stop) = (Arc::clone(&array), Arc::clone(&board), Arc::clone(&stop));
            s.spawn(move |_| {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    // Clustered low indices: every write dirties block
                    // 0, the worst case for a retrying scanner.
                    helping_write(&array, &board, w, w, v).unwrap();
                }
            });
        }
        let hs: Vec<_> = (0..scanners)
            .map(|_| {
                let (array, board) = (Arc::clone(&array), Arc::clone(&board));
                let policy = policy;
                s.spawn(move |_| {
                    let (mut helped, mut recollects) = (0u64, 0u64);
                    for _ in 0..scans_each {
                        let (view, out) = helping_scan(&array, &board, &policy);
                        assert_eq!(view.len(), 256);
                        assert!(
                            out.helped || out.recollect_passes <= limit,
                            "scan starved past the bound: {} passes, limit {limit}",
                            out.recollect_passes
                        );
                        helped += u64::from(out.helped);
                        recollects += out.recollect_passes;
                    }
                    (helped, recollects)
                })
            })
            .collect();
        let tallies = hs.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        tallies
    })
    .unwrap();

    assert_eq!(
        board.distress_level(),
        0,
        "every distressed scanner must lower its flag on exit"
    );
    // The per-thread tallies absorb into the same totals ServiceStats
    // would report (the workload target does this aggregation; the raw
    // API test checks the arithmetic holds).
    use timestamp_suite::ts_core::ServiceStats;
    let mut absorbed = ServiceStats::default();
    for &(helped, recollects) in &per_scanner {
        absorbed.absorb(&ServiceStats {
            helped_scans: helped,
            dirty_recollects: recollects,
            ..Default::default()
        });
    }
    let helped_total: u64 = per_scanner.iter().map(|t| t.0).sum();
    let recollect_total: u64 = per_scanner.iter().map(|t| t.1).sum();
    assert_eq!(absorbed.helped_scans, helped_total);
    assert_eq!(absorbed.dirty_recollects, recollect_total);
}

#[test]
fn writer_storm_workload_stats_reconcile_with_thread_tallies() {
    // The same storm through the workload seam: per-thread op tallies
    // must reconcile exactly with the target's ServiceStats, and the
    // bound-1 policy makes `dirty_recollects >= helped_scans` an
    // invariant (every adoption was preceded by at least one failed
    // pass).
    use timestamp_suite::ts_core::{HelpingScanWorkload, ScanMode, WorkloadOp, WorkloadTarget};
    use timestamp_suite::ts_snapshot::ScanPolicy;

    let writers = 4usize;
    let writer_ops = 2_000usize;
    let scanner_ops = 200usize;
    let target = HelpingScanWorkload::new(
        writers,
        256,
        ScanMode::Helping,
        ScanPolicy {
            starvation_bound: 1,
        },
    );

    let per_thread: Vec<usize> = crossbeam::thread::scope(|s| {
        let hs: Vec<_> = (0..writers + 1)
            .map(|slot| {
                let target = &target;
                s.spawn(move |_| {
                    let mut worker = target.worker(slot);
                    let ops = if slot == 0 { scanner_ops } else { writer_ops };
                    for _ in 0..ops {
                        worker.step(WorkloadOp::GetTs);
                    }
                    ops
                })
            })
            .collect();
        hs.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let stats = target.service_stats().expect("helping target has counters");
    let writer_tally: usize = per_thread[1..].iter().sum();
    assert_eq!(
        stats.calls, writer_tally as u64,
        "writer ops lost or duplicated"
    );
    assert_eq!(
        stats.stamps, stats.calls,
        "every storm write mints one stamp"
    );
    assert_eq!(
        target.scans(),
        per_thread[0] as u64,
        "scanner ops lost or duplicated"
    );
    assert!(
        stats.helped_scans <= target.scans(),
        "more adoptions than scans"
    );
    assert!(
        stats.dirty_recollects >= stats.helped_scans,
        "bound-1 adoption without a failed pass: {} helped, {} recollects",
        stats.helped_scans,
        stats.dirty_recollects
    );
}

#[test]
fn broken_objects_fail_the_round_check() {
    use timestamp_suite::ts_core::{BrokenConstant, BrokenStaleRead};
    let ts = BrokenConstant::new(4);
    let a = ts.get_ts(0).unwrap();
    let b = ts.get_ts(1).unwrap();
    assert!(!Timestamp::compare(&a, &b), "checker must be able to fail");
    let ts = BrokenStaleRead::new(4);
    let a = ts.get_ts(0).unwrap();
    let b = ts.get_ts(1).unwrap();
    assert!(!Timestamp::compare(&a, &b));
}
