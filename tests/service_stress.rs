//! Concurrency stress for the `ts-service` layer.
//!
//! Three hammers, each aimed at a different uniqueness argument:
//!
//! - **Batch reservations**: N threads issue mixed-size batches on both
//!   register backends; every stamp ever issued must be globally unique
//!   and every batch internally consecutive — one CAS reserving `k`
//!   stamps must never overlap another reservation.
//! - **Flat combining**: N threads route single-stamp requests through
//!   the publication array; a combiner serving a peer's request twice
//!   (or never) would surface as a duplicate (or a hang).
//! - **Vpid multiplexing**: the workload engine drives `M = 64` client
//!   sessions over `n = 8` physical slots through the churn scenario;
//!   the per-worker monotonicity asserts inside the engine check the
//!   timestamp property while sessions outnumber registers 8:1.

use std::collections::HashSet;
use std::sync::Barrier;

use timestamp_suite::ts_core::{EpochBackend, PackedBackend, RegisterBackend, ShardedTimestamp};
use timestamp_suite::ts_register;
use timestamp_suite::ts_service::{IssueMode, ServiceConfig, ShardedCollectMax};
use timestamp_suite::ts_workloads::ServiceTarget;
use timestamp_suite::ts_workloads::{run_scenario, Arrival, Churn, OpMix, RunConfig, Scenario};

const THREADS: usize = 8;

/// Collects every stamp issued by `per_thread` calls from each of
/// `THREADS` threads, as `(shard, word)` keys (shard-qualified words
/// are unique iff stamps are).
fn hammer<B, F>(service: &ShardedCollectMax<B>, per_thread: usize, issue: F) -> HashSet<(u32, u64)>
where
    B: RegisterBackend<u64>,
    F: Fn(&mut timestamp_suite::ts_service::ClientSession<'_, B>, usize) -> Vec<ShardedTimestamp>
        + Sync,
{
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    let mut session = service.session();
                    let mut seen = Vec::new();
                    barrier.wait();
                    for i in 0..per_thread {
                        seen.extend(issue(&mut session, i));
                    }
                    seen
                })
            })
            .collect();
        let mut all = HashSet::new();
        let mut count = 0usize;
        for h in handles {
            for t in h.join().expect("stress thread panicked") {
                count += 1;
                assert!(
                    all.insert((t.shard, t.word())),
                    "duplicate stamp issued: {t}"
                );
            }
        }
        assert_eq!(all.len(), count);
        all
    })
}

fn batch_stress<B: RegisterBackend<u64>>(shards: usize) {
    let service: ShardedCollectMax<B> =
        ShardedCollectMax::with_backend(ServiceConfig::new(shards, THREADS.div_ceil(shards)));
    let per_thread = 150;
    let all = hammer(&service, per_thread, |session, i| {
        // Mixed batch sizes 1..=16, cycling differently per call.
        let k = (i % 16) as u32 + 1;
        let batch = session.get_ts_batch(k);
        assert_eq!(batch.remaining() as u32, k);
        let stamps: Vec<ShardedTimestamp> = batch.collect();
        // Consecutive within the batch: same shard and epoch, locals
        // stepping by exactly one (reservations never span an epoch).
        for pair in stamps.windows(2) {
            assert_eq!(pair[0].shard, pair[1].shard);
            assert_eq!(pair[0].epoch, pair[1].epoch, "batch spanned an epoch");
            assert_eq!(pair[0].local + 1, pair[1].local, "batch not consecutive");
        }
        stamps
    });
    let stats = service.stats();
    assert_eq!(
        stats.stamps,
        all.len() as u64,
        "stats disagree with issue count"
    );
    assert_eq!(stats.calls, (THREADS * per_thread) as u64);
    assert_eq!(stats.shard_stamps.len(), shards);
    assert_eq!(stats.shard_stamps.iter().sum::<u64>(), stats.stamps);
}

#[test]
fn batches_are_unique_and_consecutive_packed() {
    batch_stress::<PackedBackend>(1);
    batch_stress::<PackedBackend>(4);
    ts_register::reclaim::flush();
}

#[test]
fn batches_are_unique_and_consecutive_epoch() {
    batch_stress::<EpochBackend>(1);
    batch_stress::<EpochBackend>(4);
    ts_register::reclaim::flush();
}

/// Batches stay unique while the shard is driven across an epoch
/// boundary mid-stress (the `advance` jump path under contention).
#[test]
fn batches_survive_epoch_rollover_under_contention() {
    let service = ShardedCollectMax::new(ServiceConfig::new(1, THREADS));
    // Park the shard close to `local` exhaustion so the stress crosses
    // the epoch bump almost immediately.
    service.raise_shard_floor(0, ShardedTimestamp::new(0, u32::MAX - 500, 0));
    let all = hammer(&service, 100, |session, i| {
        session.get_ts_batch((i % 8) as u32 + 1).collect()
    });
    assert!(
        all.iter().any(|&(_, word)| word >> 32 >= 1),
        "stress never reached the next epoch"
    );
    assert_eq!(service.stats().stamps, all.len() as u64);
}

#[test]
fn combining_issues_each_request_exactly_once() {
    for shards in [1usize, 2] {
        let service = ShardedCollectMax::new(ServiceConfig::new(shards, THREADS));
        let per_thread = 300;
        let all = hammer(&service, per_thread, |session, _| {
            vec![session.get_ts_combined()]
        });
        let stats = service.stats();
        assert_eq!(all.len(), THREADS * per_thread);
        assert_eq!(stats.stamps, (THREADS * per_thread) as u64);
        // Every request was served through some pass (possibly its own).
        assert!(stats.combine_passes >= 1);
        assert!(
            stats.combined_ops >= stats.combine_passes,
            "passes served fewer requests than passes ran"
        );
    }
}

/// The acceptance configuration: M = 64 client sessions multiplexed
/// over n = 8 physical slots (2 shards × 4 slots), driven by the
/// workload engine's churn scenario. The engine's workers assert
/// per-session monotonicity on every issued stamp; this test adds the
/// space-side claims.
#[test]
fn sixty_four_clients_multiplex_over_eight_slots() {
    let target = ServiceTarget::new("sharded_mux", ServiceConfig::new(2, 4), IssueMode::Single);
    let scenario = Scenario {
        name: "mux_churn",
        arrival: Arrival::ClosedLoop,
        mix: OpMix::get_ts_only(),
        churn: Some(Churn { ops_per_life: 100 }),
    };
    let cfg = RunConfig {
        threads: 8,
        ops_per_thread: 800,
        seed: 0x64,
    };
    let report = run_scenario(&target, &scenario, &cfg);
    assert_eq!(report.lives, 64, "8 threads x 8 lives = 64 sessions");
    assert_eq!(target.service().sessions(), 64);
    assert_eq!(
        target.service().registers(),
        16,
        "8 slots (x2-register pairs) regardless of client count"
    );
    let stats = target.service().stats();
    assert_eq!(stats.stamps, 8 * 800);
    assert_eq!(
        stats.shard_stamps.iter().sum::<u64>(),
        stats.stamps,
        "every stamp is accounted to a shard"
    );
}
