//! Mutual-exclusion stress: N threads hammer `FcfsLock` and
//! `KExclusion` on both register backends while an atomic occupancy
//! counter checks the core safety property — never more than 1 holder
//! (mutex), never more than k (k-exclusion).
//!
//! The in-crate unit tests cover the default (packed) backend lightly;
//! this suite is the heavier cross-backend hammer, and it also drains
//! the epoch backend's deferred garbage afterwards so lock traffic
//! cannot leak reclamation work into later tests.

use std::sync::atomic::{AtomicUsize, Ordering};

use timestamp_suite::ts_apps::{FcfsLock, KExclusion};
use timestamp_suite::ts_core::{EpochBackend, PackedBackend, RegisterBackend};
use timestamp_suite::ts_register;

/// Occupancy bookkeeping shared by both stress drivers.
struct Occupancy {
    current: AtomicUsize,
    max_seen: AtomicUsize,
    completed: AtomicUsize,
}

impl Occupancy {
    fn new() -> Self {
        Self {
            current: AtomicUsize::new(0),
            max_seen: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
        }
    }

    /// Enters the protected section: bumps occupancy, records the high
    /// water mark, dwells a moment so overlap can actually happen.
    fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_seen.fetch_max(now, Ordering::SeqCst);
        for _ in 0..2 {
            std::thread::yield_now();
        }
    }

    fn exit(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
    }
}

fn stress_fcfs<B: RegisterBackend<u64>>(threads: usize, iters: usize) {
    let lock: FcfsLock<B> = FcfsLock::with_backend(threads);
    let occ = Occupancy::new();
    crossbeam::scope(|s| {
        for pid in 0..threads {
            let lock = &lock;
            let occ = &occ;
            s.spawn(move |_| {
                for _ in 0..iters {
                    let guard = lock.lock(pid);
                    occ.enter();
                    occ.exit();
                    drop(guard);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        occ.max_seen.load(Ordering::SeqCst),
        1,
        "mutual exclusion broken on {} backend",
        B::NAME
    );
    assert_eq!(occ.completed.load(Ordering::SeqCst), threads * iters);
}

fn stress_kexclusion<B: RegisterBackend<u64>>(threads: usize, k: usize, iters: usize) {
    let pool: KExclusion<B> = KExclusion::with_backend(threads, k);
    let occ = Occupancy::new();
    crossbeam::scope(|s| {
        for pid in 0..threads {
            let pool = &pool;
            let occ = &occ;
            s.spawn(move |_| {
                for _ in 0..iters {
                    let guard = pool.acquire(pid);
                    occ.enter();
                    occ.exit();
                    drop(guard);
                }
            });
        }
    })
    .unwrap();
    let max = occ.max_seen.load(Ordering::SeqCst);
    assert!(
        max <= k,
        "{max} concurrent holders with k = {k} on {} backend",
        B::NAME
    );
    assert_eq!(occ.completed.load(Ordering::SeqCst), threads * iters);
    assert_eq!(pool.competing(), 0, "tickets left behind after the storm");
}

#[test]
fn fcfs_lock_never_admits_two_holders_packed() {
    stress_fcfs::<PackedBackend>(8, 150);
}

#[test]
fn fcfs_lock_never_admits_two_holders_epoch() {
    stress_fcfs::<EpochBackend>(8, 150);
    // Epoch tickets defer garbage on every write; the storm must not
    // strand it (exited test threads orphan their bags — adopt them).
    ts_register::reclaim::drain(10_000);
}

#[test]
fn k_exclusion_never_exceeds_k_holders_packed() {
    stress_kexclusion::<PackedBackend>(8, 3, 120);
}

#[test]
fn k_exclusion_never_exceeds_k_holders_epoch() {
    stress_kexclusion::<EpochBackend>(8, 3, 120);
    ts_register::reclaim::drain(10_000);
}

#[test]
fn k_equals_one_matches_the_mutex_guarantee() {
    // k = 1 must degenerate to mutual exclusion on both backends.
    stress_kexclusion::<PackedBackend>(6, 1, 80);
    stress_kexclusion::<EpochBackend>(6, 1, 80);
}
