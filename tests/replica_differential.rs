//! Differential tests: the quorum-replicated backend against the
//! word-inlined [`PackedBackend`], same operation programs, equal
//! outcomes when the network is fault-free.
//!
//! The point of the [`RegisterBackend`] seam is that algorithms cannot
//! tell backends apart; these tests pin that for the replicated
//! backend across the whole consumer stack — the collect-max timestamp
//! object, the double-collect snapshot scan, and the FCFS lock from
//! `ts-apps`.
//!
//! [`RegisterBackend`]: timestamp_suite::ts_register::RegisterBackend

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use timestamp_suite::ts_apps::FcfsLock;
use timestamp_suite::ts_core::{CollectMax, LongLivedTimestamp, PackedBackend, Timestamp};
use timestamp_suite::ts_register::RegisterArray;
use timestamp_suite::ts_replica::{with_cluster, Cluster, ClusterConfig, QuorumBackend};
use timestamp_suite::ts_snapshot::double_collect_scan;

/// A deterministic slot sequence: which process issues the i-th op.
fn slot_program(slots: usize, len: usize) -> Vec<usize> {
    // Weyl-ish mix, deterministic and slot-covering.
    (0..len).map(|i| (i * 7 + i / 3) % slots).collect()
}

/// The same single-threaded `getTS` program against
/// `CollectMax<QuorumBackend>` and `CollectMax<PackedBackend>` yields
/// the *identical* timestamp sequence on a fault-free network — the
/// quorum protocol is invisible through the backend seam.
#[test]
fn quorum_and_packed_collect_max_agree_on_the_same_program() {
    const SLOTS: usize = 3;
    let cluster = Cluster::new(ClusterConfig::new(1));
    let quorum = with_cluster(&cluster, || {
        CollectMax::<QuorumBackend>::with_backend(SLOTS)
    });
    let packed = CollectMax::<PackedBackend>::with_backend(SLOTS);

    for pid in slot_program(SLOTS, 120) {
        let a = quorum.get_ts(pid).expect("pid in range");
        let b = packed.get_ts(pid).expect("pid in range");
        assert_eq!(a, b, "backends diverged at slot {pid}");
    }
    assert!(
        cluster.quorum_rounds() > 0,
        "the quorum variant really replicated"
    );
    assert_eq!(
        cluster.quorum_repairs(),
        0,
        "fault-free sequential runs never need read-repair"
    );
}

/// The double-collect snapshot scan works unchanged over replicated
/// registers and returns the same view as over packed registers after
/// the same write program.
#[test]
fn double_collect_scan_agrees_across_backends() {
    const CAP: usize = 8;
    let cluster = Cluster::new(ClusterConfig::new(1));
    let quorum = with_cluster(&cluster, || {
        RegisterArray::<u64, QuorumBackend>::with_backend(CAP, 0)
    });
    let packed = RegisterArray::<u64, PackedBackend>::with_backend(CAP, 0);

    for (i, &slot) in slot_program(CAP, 40).iter().enumerate() {
        let word = (i as u64 + 1) * 10;
        quorum.write(slot, word).expect("in capacity");
        packed.write(slot, word).expect("in capacity");
    }

    let qv = double_collect_scan(&quorum);
    let pv = double_collect_scan(&packed);
    assert_eq!(qv.values(), pv.values(), "scans diverged across backends");
    for i in 0..CAP {
        assert_eq!(quorum.read(i).expect("in capacity"), pv.values()[i]);
    }
}

/// The FCFS lock from `ts-apps` runs on quorum-replicated ticket
/// registers: mutual exclusion holds under real contention, which
/// smoke-tests the whole `with_backend` wiring through `ts-apps`.
#[test]
fn fcfs_lock_excludes_over_replicated_tickets() {
    const THREADS: usize = 3;
    const ROUNDS: usize = 40;
    let cluster = Cluster::new(ClusterConfig::new(1));
    let lock = with_cluster(&cluster, || {
        FcfsLock::<QuorumBackend>::with_backend(THREADS)
    });
    let inside = AtomicBool::new(false);
    let entries = AtomicU64::new(0);

    std::thread::scope(|s| {
        for pid in 0..THREADS {
            let lock = &lock;
            let inside = &inside;
            let entries = &entries;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    let guard = lock.lock(pid);
                    assert!(
                        !inside.swap(true, Ordering::SeqCst),
                        "two threads inside the critical section"
                    );
                    entries.fetch_add(1, Ordering::Relaxed);
                    inside.store(false, Ordering::SeqCst);
                    drop(guard);
                }
            });
        }
    });

    assert_eq!(entries.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
    assert!(
        cluster.quorum_rounds() > 0,
        "every ticket went through the quorum protocol"
    );
}

/// Concurrent `getTS` storms on both backends produce valid (strictly
/// increasing per process) histories with the same final global
/// maximum when each process runs the same number of ops — outcome
/// equivalence under real parallelism, not just sequentially.
#[test]
fn concurrent_programs_reach_the_same_final_maximum() {
    const THREADS: usize = 4;
    const OPS: usize = 150;

    fn run<B: timestamp_suite::ts_register::RegisterBackend<u64>>(ts: &CollectMax<B>) -> u64 {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|pid| {
                    s.spawn(move || {
                        let mut last: Option<Timestamp> = None;
                        for _ in 0..OPS {
                            let t = ts.get_ts(pid).expect("pid in range");
                            if let Some(p) = last {
                                assert!(Timestamp::compare(&p, &t));
                            }
                            last = Some(t);
                        }
                        last.expect("ran ops").rnd
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap()
        })
    }

    let cluster = Cluster::new(ClusterConfig::new(1));
    let quorum = with_cluster(&cluster, || {
        CollectMax::<QuorumBackend>::with_backend(THREADS)
    });
    let packed = CollectMax::<PackedBackend>::with_backend(THREADS);

    let qmax = run(&quorum);
    let pmax = run(&packed);
    // Interleavings differ, but the final maximum is determined by the
    // op count: every op advances the global max by at least one and
    // at most one per op in total.
    assert!(qmax >= OPS as u64 && qmax <= (THREADS * OPS) as u64);
    assert!(pmax >= OPS as u64 && pmax <= (THREADS * OPS) as u64);
}
