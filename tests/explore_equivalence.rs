//! Differential harness for the DPOR explorer.
//!
//! The DPOR reduction, the fingerprint cache, and the partitioned
//! parallel mode are all *supposed* to be invisible: they must find a
//! violation iff plain full enumeration does, and they must reach
//! exactly the same set of terminal outcomes. This harness checks that
//! equivalence on every model twin at small sizes, against two ground
//! truths:
//!
//! - **full**: exhaustive enumeration with the exact (collision-free)
//!   state cache — the pre-DPOR explorer;
//! - **raw**: exhaustive enumeration with *no* cache at all (pure tree
//!   walk), on the smallest configurations where that is feasible —
//!   this is the oracle the caches themselves are checked against.
//!
//! Any unsound footprint override, independence misclassification, or
//! fingerprint collision shows up here as a verdict or outcome-set
//! disagreement.

use std::hash::Hash;

use timestamp_suite::ts_core::model::{
    BrokenCounterModel, CollectMaxFastModel, CollectMaxModel, HelpingScanModel, SimpleModel,
};
use timestamp_suite::ts_model::toy::{ConstantAlgorithm, CounterAlgorithm};
use timestamp_suite::ts_model::{
    reproduces, shrink, Algorithm, CacheMode, ExploreReport, Explorer, Machine, System,
};

fn explorer<A: Algorithm + Clone>(algorithm: A, ops: usize) -> Explorer<A> {
    Explorer::new(algorithm, ops).record_outcomes(true)
}

/// Runs full-vs-DPOR-vs-parallel on one model and checks equivalence.
/// `check_raw` additionally runs the uncached tree walk (exponential —
/// smallest configurations only).
fn check<A>(label: &str, algorithm: A, ops: usize, expect_violation: bool, check_raw: bool)
where
    A: Algorithm + Clone + Send + Sync,
    A::Machine: Send + Sync,
    <A::Machine as Machine>::Value: Send + Sync,
    <A::Machine as Machine>::Output: Send + Sync,
{
    let full = explorer(algorithm.clone(), ops)
        .with_reduction(false)
        .with_cache(CacheMode::Exact)
        .run();
    let dpor = explorer(algorithm.clone(), ops).run();
    let parallel = explorer(algorithm.clone(), ops).with_threads(2).run();

    for (mode, report) in [("full", &full), ("dpor", &dpor), ("parallel", &parallel)] {
        assert!(!report.depth_bounded, "{label}/{mode}: depth bound fired");
        assert_eq!(
            report.violation.is_some(),
            expect_violation,
            "{label}/{mode}: verdict {:?}",
            report.violation
        );
        verify_counterexample(label, mode, &algorithm, report);
    }

    assert_eq!(
        full.outcomes, dpor.outcomes,
        "{label}: full vs dpor outcome sets differ"
    );
    assert_eq!(
        full.outcomes, parallel.outcomes,
        "{label}: full vs parallel outcome sets differ"
    );

    if check_raw {
        let raw = explorer(algorithm.clone(), ops)
            .with_reduction(false)
            .with_cache(CacheMode::None)
            .run();
        assert_eq!(
            raw.violation.is_some(),
            expect_violation,
            "{label}/raw: verdict {:?}",
            raw.violation
        );
        assert_eq!(
            raw.outcomes, full.outcomes,
            "{label}: the exact cache changed the reachable outcomes"
        );
    }
}

/// A reported counterexample must replay step for step: rerunning the
/// schedule reproduces the same violating pair, and its 1-minimal
/// shrink still reproduces.
fn verify_counterexample<A>(
    label: &str,
    mode: &str,
    algorithm: &A,
    report: &ExploreReport<<A::Machine as Machine>::Output>,
) where
    A: Algorithm + Clone,
{
    let Some(violation) = &report.violation else {
        return;
    };
    let mut sys = System::new(algorithm.clone());
    for &pid in &violation.schedule {
        sys.step(pid)
            .unwrap_or_else(|e| panic!("{label}/{mode}: counterexample step failed: {e:?}"));
    }
    let replayed = sys
        .check_property()
        .unwrap_or_else(|| panic!("{label}/{mode}: counterexample does not replay"));
    assert_eq!(
        replayed, violation.property,
        "{label}/{mode}: replay found a different violating pair"
    );
    let minimized = shrink(algorithm, &violation.schedule);
    assert!(
        reproduces(algorithm, &minimized),
        "{label}/{mode}: minimized counterexample lost the violation"
    );
    assert!(minimized.len() <= violation.schedule.len());
}

#[test]
fn toy_counter_clean_sizes_agree() {
    check("counter_n2", CounterAlgorithm::new(2), 1, false, true);
    check("counter_n3", CounterAlgorithm::new(3), 1, false, true);
}

#[test]
fn toy_counter_violation_agrees_at_n4() {
    check("counter_n4", CounterAlgorithm::new(4), 1, true, false);
}

#[test]
fn constant_algorithm_violation_agrees() {
    check("constant_n2", ConstantAlgorithm::new(2), 1, true, true);
    check("constant_n3", ConstantAlgorithm::new(3), 1, true, true);
}

#[test]
fn broken_counter_twin_agrees_across_the_correctness_boundary() {
    check("broken_n3", BrokenCounterModel::new(3), 1, false, true);
    check("broken_n4", BrokenCounterModel::new(4), 1, true, false);
}

#[test]
fn collect_max_agrees() {
    check("collectmax_n2x2", CollectMaxModel::new(2), 2, false, true);
    check("collectmax_n3", CollectMaxModel::new(3), 1, false, false);
}

#[test]
fn collect_max_fast_agrees() {
    // Raw (uncached) ground truth on the single-op pair; the larger
    // configurations compare against the exact-cache oracle (a raw walk
    // of n=2 x 2 ops is ~2.7M paths — minutes in debug builds).
    check(
        "collectmax_fast_n2",
        CollectMaxFastModel::new(2),
        1,
        false,
        true,
    );
    check(
        "collectmax_fast_n2x2",
        CollectMaxFastModel::new(2),
        2,
        false,
        false,
    );
    check(
        "collectmax_fast_n3",
        CollectMaxFastModel::new(3),
        1,
        false,
        false,
    );
}

#[test]
fn helping_scan_agrees() {
    // The helping-scan protocol has the richest branch structure in
    // the suite (era CAS retries, distress-gated writer paths, board
    // adoption): raw (uncached) ground truth on the single-op pair,
    // exact-cache oracle for the larger configurations.
    check("helping_scan_n2", HelpingScanModel::new(2), 1, false, true);
    check(
        "helping_scan_n2x2",
        HelpingScanModel::new(2),
        2,
        false,
        false,
    );
    check("helping_scan_n3", HelpingScanModel::new(3), 1, false, false);
}

#[test]
fn simple_model_agrees() {
    // Raw ground truth at n=2 only: the n=3 raw walk is ~9M paths.
    check("simple_n2", SimpleModel::new(2), 1, false, true);
    check("simple_n3", SimpleModel::new(3), 1, false, false);
    check("simple_n4", SimpleModel::new(4), 1, false, false);
}

#[test]
fn fingerprint_cache_matches_exact_cache_under_reduction() {
    // Same DPOR search, exact vs fingerprint storage: identical reports
    // (states, transitions, prunes, verdict). A fingerprint collision
    // would break this.
    fn fp_check<A>(label: &str, algorithm: A, ops: usize)
    where
        A: Algorithm + Clone + Send + Sync,
        A::Machine: Send + Sync,
        <A::Machine as Machine>::Value: Send + Sync,
        <A::Machine as Machine>::Output: Send + Sync + Eq + Hash,
    {
        let exact = explorer(algorithm.clone(), ops)
            .with_cache(CacheMode::Exact)
            .run();
        let fp = explorer(algorithm, ops)
            .with_cache(CacheMode::Fingerprint)
            .run();
        assert_eq!(exact, fp, "{label}");
    }
    fp_check("counter_n4", CounterAlgorithm::new(4), 1);
    fp_check("collectmax_n3", CollectMaxModel::new(3), 1);
    fp_check("collectmax_fast_n3", CollectMaxFastModel::new(3), 1);
    fp_check("helping_scan_n3", HelpingScanModel::new(3), 1);
    fp_check("simple_n4", SimpleModel::new(4), 1);
}

#[test]
fn dpor_reduces_explored_states_substantially() {
    // The acceptance metric for the reduction machinery: on at least
    // one real model the DPOR explorer visits ≥ 5x fewer states than
    // full enumeration. SimpleModel's pairwise register sharing is the
    // showcase (~6.6x at n = 4); CollectMax n=3 must clear ≥ 4x.
    // (BENCH_explore.json tracks the same ratios.)
    let full = Explorer::new(SimpleModel::new(4), 1)
        .with_reduction(false)
        .with_cache(CacheMode::Exact)
        .run();
    let dpor = Explorer::new(SimpleModel::new(4), 1).run();
    assert!(full.violation.is_none() && dpor.violation.is_none());
    assert!(
        dpor.states * 5 <= full.states,
        "expected ≥5x state reduction, got full={} dpor={}",
        full.states,
        dpor.states
    );

    let full = Explorer::new(CollectMaxModel::new(3), 1)
        .with_reduction(false)
        .with_cache(CacheMode::Exact)
        .run();
    let dpor = Explorer::new(CollectMaxModel::new(3), 1).run();
    assert!(full.violation.is_none() && dpor.violation.is_none());
    assert!(
        dpor.states * 4 <= full.states,
        "expected ≥4x state reduction, got full={} dpor={}",
        full.states,
        dpor.states
    );
}
