//! The adversarial-trace corpus: regeneration, schema, and replay.
//!
//! `tests/traces/*.json` are model-checker schedules serialized as
//! `ts_model::replay::ReplayTrace` JSON — most importantly the
//! minimized Explorer counterexample for the broken shared counter.
//! These tests keep the corpus *live*:
//!
//! 1. the Explorer/PCT generators rerun on every test invocation and
//!    the results are diffed byte-for-byte against the checked-in
//!    files, so a drifting model invalidates the corpus loudly;
//! 2. the checked-in files themselves (not the regenerated copies) are
//!    replayed against the real objects on real threads, so the corpus
//!    is a genuine regression suite for the concrete implementations.
//!
//! To refresh the files after an intentional model change:
//!
//! ```sh
//! TS_REGEN_TRACES=1 cargo test --test replay_corpus
//! ```

use std::path::PathBuf;

use timestamp_suite::ts_model::replay::ReplayTrace;
use timestamp_suite::ts_workloads::replay::{
    case_target, corpus_cases, corpus_traces, expected_completion_order, replay_trace,
};

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

fn checked_in(name: &str) -> ReplayTrace {
    let path = traces_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing corpus trace {path:?}: {e} (regenerate with TS_REGEN_TRACES=1)")
    });
    ReplayTrace::from_json(&text)
        .unwrap_or_else(|e| panic!("unparsable corpus trace {path:?}: {e:?}"))
}

#[test]
fn corpus_regenerates_byte_identically() {
    let regen = corpus_traces();
    assert!(!regen.is_empty());
    if std::env::var_os("TS_REGEN_TRACES").is_some() {
        std::fs::create_dir_all(traces_dir()).expect("create tests/traces");
        for entry in &regen {
            let path = traces_dir().join(format!("{}.json", entry.name));
            std::fs::write(&path, entry.trace.to_json() + "\n").expect("write trace");
            eprintln!("wrote {path:?}");
        }
        return;
    }
    for entry in &regen {
        let disk = checked_in(entry.name);
        assert_eq!(
            disk, entry.trace,
            "corpus trace {} is stale: the generators no longer produce the checked-in \
             schedule (if the model change is intentional, refresh with TS_REGEN_TRACES=1)",
            entry.name
        );
        assert_eq!(
            disk.to_json() + "\n",
            std::fs::read_to_string(traces_dir().join(format!("{}.json", entry.name))).unwrap(),
            "corpus file {} is not in canonical serialization",
            entry.name
        );
    }
}

#[test]
fn corpus_traces_are_well_formed() {
    for entry in corpus_traces() {
        let disk = checked_in(entry.name);
        disk.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(disk.schema, timestamp_suite::ts_model::replay::TRACE_SCHEMA);
    }
}

#[test]
fn minimized_counterexample_replays_and_reproduces() {
    // The acceptance check: a minimized Explorer counterexample
    // schedule, replayed from its CHECKED-IN serialization against the
    // real (non-model) object on real OS threads, deterministically
    // reproduces the recorded op order and the recorded outputs —
    // violation included.
    let trace = checked_in("broken_counter_n4_minimized");
    assert!(trace.violating, "the corpus counterexample must violate");
    let case = corpus_cases()
        .into_iter()
        .find(|c| c.trace_name == "broken_counter_n4_minimized")
        .expect("counterexample case");
    let target = case_target(&case, &trace);
    let report = replay_trace(target.as_ref(), &trace);

    // Recorded op order reproduced exactly — attested by the worker
    // threads themselves: each stamps a shared completion counter when
    // its op body returns, so this comparison fails if any body ran
    // out of the released order (it is not controller bookkeeping).
    assert_eq!(
        report.worker_observed_return_order(),
        expected_completion_order(&trace, report.granularity)
    );

    // Recorded outputs reproduced exactly (deterministic replay).
    assert_eq!(report.output_mismatches, 0);
    assert_eq!(report.output_matches, trace.completed_ops().len());

    // And the property violation itself reproduces on real threads.
    let violation = report.violation.expect("violation must reproduce");
    assert_eq!(violation.earlier.ts, violation.later.ts);
}

#[test]
fn every_corpus_case_replays_as_expected() {
    for case in corpus_cases() {
        let trace = checked_in(case.trace_name);
        let target = case_target(&case, &trace);
        let report = replay_trace(target.as_ref(), &trace);
        assert_eq!(
            report.steps_replayed,
            trace.steps.len(),
            "case {}",
            case.name
        );
        assert_eq!(
            report.violation.is_some(),
            case.expect_violation,
            "case {}: violation {:?}",
            case.name,
            report.violation
        );
        if case.expect_exact_outputs {
            assert_eq!(report.output_mismatches, 0, "case {}", case.name);
        }
        assert_eq!(
            report.completed.len(),
            trace.completed_ops().len(),
            "case {}: every recorded return must replay",
            case.name
        );
        assert_eq!(
            report.worker_observed_return_order(),
            expected_completion_order(&trace, report.granularity),
            "case {}: op bodies completed out of released order",
            case.name
        );
    }
}

#[test]
fn corpus_round_trips_through_json() {
    for entry in corpus_traces() {
        let disk = checked_in(entry.name);
        let back = ReplayTrace::from_json(&disk.to_json()).expect("round-trip parses");
        assert_eq!(back, disk);
    }
}
