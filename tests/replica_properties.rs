//! Property tests for the quorum-replicated backend (`ts-replica`):
//! random fault schedules against sequential semantics, write-ack
//! durability, byte-stable serde round trips for the protocol types,
//! and bit-identical replay of a seeded fault schedule — the
//! reproducibility contract the whole modelled network rests on.

use proptest::prelude::*;

use timestamp_suite::ts_replica::{
    Cluster, ClusterConfig, FaultPlan, Message, MsgKind, WriteStamp,
};

/// A fault plan drawn from the proptest strategy space. Loss stays
/// below ~30% so single-threaded programs terminate fast (the client
/// retransmits until a quorum answers; heavier loss only slows that
/// loop down).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    // Nested tuples: the vendored proptest implements `Strategy` for
    // tuples of arity <= 4.
    (
        (any::<u64>(), 0u16..300),
        (0u16..300, 0u8..6, any::<bool>()),
    )
        .prop_map(|((seed, drop), (dup, delay, reorder))| FaultPlan {
            seed,
            drop_permille: drop,
            dup_permille: dup,
            delay_max: delay,
            reorder,
            ..FaultPlan::default()
        })
}

/// One step of a single-threaded register program.
#[derive(Debug, Clone)]
enum ProgStep {
    Write { reg: usize, word: u64 },
    Read { reg: usize },
}

fn arb_program(registers: usize, len: usize) -> impl Strategy<Value = Vec<ProgStep>> {
    proptest::collection::vec(
        (0..registers, 1u64..1 << 40, any::<bool>()).prop_map(|(reg, word, is_write)| {
            if is_write {
                ProgStep::Write { reg, word }
            } else {
                ProgStep::Read { reg }
            }
        }),
        1..=len,
    )
}

proptest! {
    /// Single-threaded programs are sequentially consistent no matter
    /// the fault schedule: every read returns exactly the last written
    /// value, and write stamps grow monotonically per register —
    /// drop/duplicate/delay/reorder must be *invisible* through the
    /// retransmitting quorum protocol.
    #[test]
    fn random_fault_schedules_preserve_sequential_semantics(
        plan in arb_plan(),
        f in 0usize..3,
        program in arb_program(3, 24),
    ) {
        let cluster = Cluster::new(ClusterConfig::new(f).with_plan(plan));
        let regs: Vec<u32> = (0..3).map(|_| cluster.alloc_register(0)).collect();
        let mut last_write = [0u64; 3];
        let mut last_stamp = [WriteStamp::INITIAL; 3];
        for step in &program {
            match *step {
                ProgStep::Write { reg, word } => {
                    let stamp = cluster.abd_write(regs[reg], word);
                    prop_assert!(
                        stamp > last_stamp[reg],
                        "stamps must grow: {stamp} !> {}", last_stamp[reg]
                    );
                    last_stamp[reg] = stamp;
                    last_write[reg] = word;
                }
                ProgStep::Read { reg } => {
                    let (stamp, word) = cluster.abd_read(regs[reg]);
                    prop_assert_eq!(
                        word, last_write[reg],
                        "read returned a value other than the last write"
                    );
                    prop_assert!(stamp >= last_stamp[reg]);
                }
            }
        }
    }

    /// A returned write-ack is a durability proof: the moment
    /// `abd_write` returns, at least `f + 1` replicas hold the
    /// register at (or above) the returned stamp, so any future read
    /// quorum intersects the write set.
    #[test]
    fn write_ack_implies_quorum_durability(
        plan in arb_plan(),
        f in 0usize..3,
        words in proptest::collection::vec(1u64..1 << 40, 1..8),
    ) {
        let cluster = Cluster::new(ClusterConfig::new(f).with_plan(plan));
        let reg = cluster.alloc_register(0);
        for word in words {
            let stamp = cluster.abd_write(reg, word);
            let durable = (0..cluster.replicas())
                .filter(|&r| cluster.replica(r).stored(reg).0 >= stamp)
                .count();
            prop_assert!(
                durable >= cluster.quorum(),
                "only {durable} replicas at stamp {stamp}, need {}", cluster.quorum()
            );
        }
    }

    /// Protocol types serialize byte-stably: decode(encode(x)) == x and
    /// encode(decode(encode(x))) == encode(x), for arbitrary field
    /// values — the property the on-disk trace corpus depends on.
    #[test]
    fn message_serde_round_trips_byte_stable(
        kind_idx in 0usize..6,
        header in (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()),
        payload in (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
    ) {
        let (op, from, to, reg) = header;
        let (seq, writer, word, expected) = payload;
        let kinds = [
            MsgKind::ReadQuery,
            MsgKind::ReadReply,
            MsgKind::Write,
            MsgKind::WriteAck,
            MsgKind::Install,
            MsgKind::InstallReply,
        ];
        let msg = Message {
            kind: kinds[kind_idx],
            op,
            from,
            to,
            reg,
            seq,
            writer,
            word,
            expected,
        };
        let json = serde_json::to_string(&msg).expect("messages serialize");
        let back: Message = serde_json::from_str(&json).expect("messages parse");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serialize"), json);

        let stamp = WriteStamp { seq, writer };
        let sjson = serde_json::to_string(&stamp).expect("stamps serialize");
        let sback: WriteStamp = serde_json::from_str(&sjson).expect("stamps parse");
        prop_assert_eq!(sback, stamp);
        prop_assert_eq!(serde_json::to_string(&sback).expect("re-serialize"), sjson);
    }

    /// The packed [`Stamp`](timestamp_suite::ts_register::Stamp) word
    /// orders exactly like the `(seq, writer)` pair — the invariant
    /// that lets `QuorumRegister` reuse the register seam's ordering
    /// contract unchanged.
    #[test]
    fn packed_stamp_order_equals_pair_order(
        a_pair in (any::<u32>(), any::<u32>()),
        b_pair in (any::<u32>(), any::<u32>()),
    ) {
        let a = WriteStamp { seq: a_pair.0, writer: a_pair.1 };
        let b = WriteStamp { seq: b_pair.0, writer: b_pair.1 };
        prop_assert_eq!(a.cmp(&b), a.as_stamp().cmp(&b.as_stamp()));
    }
}

/// Runs one fixed scripted program — writes, reads, a partition, a
/// heal — on a fresh cluster under `plan`, and returns the evidence of
/// what the network did: the full delivered-message log plus the final
/// register states.
fn scripted_run(plan: FaultPlan) -> (Vec<Message>, Vec<(WriteStamp, u64)>) {
    let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
    let regs: Vec<u32> = (0..2).map(|_| cluster.alloc_register(0)).collect();
    cluster.abd_write(regs[0], 10);
    cluster.abd_write(regs[1], 20);
    // Partition the client's own window-start replica so the next ops
    // must retransmit and widen; the choice is derived from the
    // cluster, not hard-coded, because client ids rotate the window.
    let victim = (cluster.client_id() as usize % cluster.replicas()) as u32;
    cluster.router().partition(&[victim]);
    cluster.abd_write(regs[0], 11);
    assert_eq!(cluster.abd_read(regs[0]).1, 11);
    cluster.router().heal();
    cluster.abd_write(regs[1], 21);
    assert_eq!(cluster.abd_read(regs[1]).1, 21);
    let finals = (0..cluster.replicas())
        .flat_map(|r| regs.iter().map(move |&g| (r, g)))
        .map(|(r, g)| cluster.replica(r).stored(g))
        .collect();
    (cluster.router().delivery_log(), finals)
}

/// The acceptance determinism check: one seeded schedule combining
/// drop, duplication, delay, reorder **and** a partition/heal cycle
/// reproduces bit-identically — every delivered message, in order, and
/// every replica's final `(stamp, word)` — across two independent
/// clusters.
#[test]
fn seeded_fault_schedule_reproduces_bit_identically() {
    let plan = FaultPlan {
        seed: 0xfeed_beef,
        drop_permille: 80,
        dup_permille: 40,
        delay_max: 3,
        reorder: true,
        record_log: true,
    };
    let (log_a, finals_a) = scripted_run(plan);
    let (log_b, finals_b) = scripted_run(plan);
    assert!(!log_a.is_empty(), "the scripted run sends messages");
    assert_eq!(log_a, log_b, "same seed, same delivery log, bit for bit");
    assert_eq!(finals_a, finals_b, "and the same replica end states");

    // A different seed must actually change the schedule (the knobs
    // are live, not decorative).
    let (log_c, _) = scripted_run(FaultPlan {
        seed: 0x0dd_5eed,
        ..plan
    });
    assert_ne!(log_a, log_c, "a different seed reorders the network");
}

/// The monotonicity invariant is armed on every replica: a handler can
/// never regress a stored stamp, under any fault schedule. (The
/// runtime assert lives in the replica itself; this pins that the
/// stored stamps really only grow across a lossy, reordering run.)
#[test]
fn replica_stamps_never_regress_under_faults() {
    let plan = FaultPlan {
        seed: 42,
        drop_permille: 150,
        dup_permille: 100,
        delay_max: 4,
        reorder: true,
        ..FaultPlan::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(1).with_plan(plan));
    let reg = cluster.alloc_register(0);
    let mut seen = vec![WriteStamp::INITIAL; cluster.replicas()];
    for word in 1..=40u64 {
        cluster.abd_write(reg, word);
        for r in 0..cluster.replicas() {
            let (stamp, _) = cluster.replica(r).stored(reg);
            assert!(
                stamp >= seen[r],
                "replica {r} regressed: {stamp} < {}",
                seen[r]
            );
            seen[r] = stamp;
        }
    }
}
