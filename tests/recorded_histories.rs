//! Exact happens-before checking of real concurrent executions via the
//! `HistoryRecorder` (S12): random thread timing, no barriers — the
//! recorder derives the true order from a global sequencer.

use std::sync::Arc;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use timestamp_suite::ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, GrowableTimestamp, HistoryRecorder, LongLivedTimestamp,
    OneShotTimestamp, SimpleOneShot,
};

fn jitter(seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    if rng.random_bool(0.5) {
        std::thread::sleep(Duration::from_micros(rng.random_range(0..200)));
    } else {
        std::thread::yield_now();
    }
}

#[test]
fn simple_oneshot_recorded_history_is_clean() {
    let n = 24;
    let ts = Arc::new(SimpleOneShot::new(n));
    let rec = Arc::new(HistoryRecorder::new());
    crossbeam::scope(|s| {
        for p in 0..n {
            let ts = Arc::clone(&ts);
            let rec = Arc::clone(&rec);
            s.spawn(move |_| {
                jitter(p as u64);
                rec.record(p, || ts.get_ts(p)).unwrap();
            });
        }
    })
    .unwrap();
    let violations = rec.violations();
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(rec.len(), n);
}

#[test]
fn bounded_oneshot_recorded_history_is_clean() {
    let n = 48;
    let ts = Arc::new(BoundedTimestamp::one_shot(n));
    let rec = Arc::new(HistoryRecorder::new());
    crossbeam::scope(|s| {
        for p in 0..n {
            let ts = Arc::clone(&ts);
            let rec = Arc::clone(&rec);
            s.spawn(move |_| {
                jitter(1000 + p as u64);
                rec.record(p, || ts.get_ts(p)).unwrap();
            });
        }
    })
    .unwrap();
    assert!(rec.violations().is_empty());
}

#[test]
fn collect_max_recorded_long_lived_history_is_clean() {
    let n = 8;
    let ops = 20;
    let ts = Arc::new(CollectMax::new(n));
    let rec = Arc::new(HistoryRecorder::new());
    crossbeam::scope(|s| {
        for p in 0..n {
            let ts = Arc::clone(&ts);
            let rec = Arc::clone(&rec);
            s.spawn(move |_| {
                for k in 0..ops {
                    jitter((p * ops + k) as u64);
                    rec.record(p, || ts.get_ts(p)).unwrap();
                }
            });
        }
    })
    .unwrap();
    assert!(rec.violations().is_empty());
    assert_eq!(rec.len(), n * ops);
}

#[test]
fn growable_recorded_history_is_clean() {
    let ts = Arc::new(GrowableTimestamp::new());
    let rec = Arc::new(HistoryRecorder::new());
    crossbeam::scope(|s| {
        for t in 0..6u32 {
            let ts = Arc::clone(&ts);
            let rec = Arc::clone(&rec);
            s.spawn(move |_| {
                for k in 0..15u32 {
                    jitter((t * 100 + k) as u64);
                    rec.record_infallible(t as usize, || ts.get_ts_with_id(GetTsId::new(t, k)));
                }
            });
        }
    })
    .unwrap();
    assert!(rec.violations().is_empty());
    assert_eq!(rec.len(), 90);
}

#[test]
fn recorder_catches_broken_objects_under_concurrency() {
    use timestamp_suite::ts_core::BrokenStaleRead;
    let n = 8;
    let ts = Arc::new(BrokenStaleRead::new(n));
    let rec = Arc::new(HistoryRecorder::new());
    // Sequentialize to guarantee ordered pairs exist.
    for p in 0..n {
        rec.record(p, || ts.get_ts(p)).unwrap();
    }
    assert!(
        !rec.violations().is_empty(),
        "the stale-read object must be flagged"
    );
}
