//! Property-based differential testing of the DPOR explorer on random
//! straight-line register programs ([`ProgramAlgorithm`]).
//!
//! For every generated program family, full enumeration (exact cache,
//! no reduction) and the default DPOR exploration must agree on
//! whether a violation exists AND on the exact set of reachable
//! terminal outcomes. Proptest shrinks any disagreement to a minimal
//! program — the strongest soundness probe the reduction has, because
//! random programs exercise footprint/independence corner cases
//! (same-register CAS races, read-only processes, disjoint clusters)
//! that the hand-written models never hit in combination.

use proptest::prelude::*;

use timestamp_suite::ts_model::program::{ProgStep, ProgramAlgorithm};
use timestamp_suite::ts_model::{CacheMode, Explorer};

const MAX_REGS: usize = 3;

/// One random program step over registers `0..MAX_REGS` with small
/// values (small value universes maximize CAS hit/miss variety).
fn step_strategy() -> impl Strategy<Value = ProgStep> {
    prop_oneof![
        (0..MAX_REGS).prop_map(|reg| ProgStep::Read { reg }),
        (0..MAX_REGS, 0u64..3).prop_map(|(reg, value)| ProgStep::Write { reg, value }),
        (0..MAX_REGS, 0u64..3, 0u64..3).prop_map(|(reg, expected, new)| ProgStep::Cas {
            reg,
            expected,
            new
        }),
    ]
}

/// 2–3 processes, each with 0–3 steps.
fn programs_strategy() -> impl Strategy<Value = Vec<Vec<ProgStep>>> {
    proptest::collection::vec(proptest::collection::vec(step_strategy(), 0..=3), 2..=3)
}

proptest! {
    /// Full vs DPOR: identical verdicts and identical reachable-outcome
    /// sets on arbitrary programs.
    #[test]
    fn full_and_dpor_agree_on_random_programs(programs in programs_strategy()) {
        let algorithm = ProgramAlgorithm::new(MAX_REGS, programs);
        let full = Explorer::new(algorithm.clone(), 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .record_outcomes(true)
            .run();
        let dpor = Explorer::new(algorithm.clone(), 1)
            .record_outcomes(true)
            .run();
        prop_assert_eq!(
            full.violation.is_some(),
            dpor.violation.is_some(),
            "verdicts diverge on {:?}: full={:?} dpor={:?}",
            algorithm.programs(),
            full.violation,
            dpor.violation
        );
        prop_assert_eq!(
            &full.outcomes,
            &dpor.outcomes,
            "outcome sets diverge on {:?}",
            algorithm.programs()
        );
        prop_assert!(!full.depth_bounded && !dpor.depth_bounded);
    }

    /// The partitioned parallel mode agrees with full enumeration too,
    /// and is identical across thread counts on random programs.
    #[test]
    fn parallel_mode_agrees_on_random_programs(programs in programs_strategy()) {
        let algorithm = ProgramAlgorithm::new(MAX_REGS, programs);
        let full = Explorer::new(algorithm.clone(), 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .record_outcomes(true)
            .run();
        let par1 = Explorer::new(algorithm.clone(), 1)
            .with_threads(1)
            .record_outcomes(true)
            .run();
        let par4 = Explorer::new(algorithm.clone(), 1)
            .with_threads(4)
            .record_outcomes(true)
            .run();
        prop_assert_eq!(&par1, &par4, "thread count changed the report");
        prop_assert_eq!(full.violation.is_some(), par1.violation.is_some());
        prop_assert_eq!(&full.outcomes, &par1.outcomes);
    }

    /// A violation reported on a random program replays: rerunning the
    /// schedule reproduces a violating history.
    #[test]
    fn random_program_counterexamples_replay(programs in programs_strategy()) {
        use timestamp_suite::ts_model::System;
        let algorithm = ProgramAlgorithm::new(MAX_REGS, programs);
        let report = Explorer::new(algorithm.clone(), 1).run();
        if let Some(violation) = report.violation {
            let mut sys = System::new(algorithm);
            for &pid in &violation.schedule {
                sys.step(pid).unwrap();
            }
            prop_assert!(sys.check_property().is_some(), "counterexample must replay");
        }
    }
}
