//! Deterministic reproduction of the Section 6.1 concurrency hazard.
//!
//! The paper explains why Algorithm 4 overwrites an invalid register
//! when `R[j].rnd < myrnd` (lines 10–11): without the overwrite, a stale
//! phase-opening write can *re-validate* previously invalidated
//! registers, letting a later `getTS` return a turn timestamp smaller
//! than an earlier, already-returned one.
//!
//! This test drives the model through exactly the scenario sketched in
//! Section 6.1 (two racing scanners `p`/`q` with divergent views, an old
//! write landing between their scans, then `a` and `b` taking turns) and
//! shows:
//!
//! - with [`OverwritePolicy::Never`], the timestamp property breaks;
//! - with the paper's policy, the same schedule is harmless.

use timestamp_suite::ts_core::model::BoundedModel;
use timestamp_suite::ts_core::{OverwritePolicy, Timestamp};
use timestamp_suite::ts_model::{solo_run, StepOutcome, System};

/// Drives the Section 6.1 schedule; returns `(a_ts, b_ts, violation?)`.
fn drive(policy: OverwritePolicy) -> (Timestamp, Timestamp, bool) {
    // n = 8 processes, m = ⌈2√8⌉ = 6 model registers (0-based indices;
    // paper register R[j] is model register j−1).
    let mut sys = System::new(BoundedModel::with_policy(8, policy));
    let budget = 100_000;

    // p1: the stale writer. It sees an all-⊥ array and pauses poised to
    // open phase 1, i.e. to write R[1] = ⟨(p1), 1⟩.
    let out = solo_run(&mut sys, 1, &[], budget).unwrap();
    assert_eq!(out.covered(), Some(0), "stale writer must cover R[1]");

    // p0 completes: R[1] = ⟨(p0), 1⟩, timestamp (1, 0).
    assert_eq!(
        sys.run_solo_to_completion(0, budget).unwrap(),
        Timestamp::new(1, 0)
    );
    // p2 completes: opens phase 2, R[2] = ⟨(p0, p2), 2⟩, timestamp (2, 0).
    assert_eq!(
        sys.run_solo_to_completion(2, budget).unwrap(),
        Timestamp::new(2, 0)
    );
    // p3 completes: finds R[1] valid, invalidates it (R[1] = ⟨(p3), 2⟩),
    // timestamp (2, 1).
    assert_eq!(
        sys.run_solo_to_completion(3, budget).unwrap(),
        Timestamp::new(2, 1)
    );

    // p (= p4): finds R[1] invalid, scans, and pauses poised to open
    // phase 3 with its view (last(R[1]) = p3).
    let out = solo_run(&mut sys, 4, &[0, 1], budget).unwrap();
    assert_eq!(out.covered(), Some(2), "p must cover R[3]");

    // The stale write lands: p1 overwrites R[1] = ⟨(p1), 1⟩ — an *old*
    // round-1 value.
    let wrote = sys.step(1).unwrap();
    assert!(
        matches!(wrote, StepOutcome::Wrote { reg: 0, .. }),
        "stale writer writes R[1]: {wrote:?}"
    );

    // q (= p5): scans *after* the stale write (its view has
    // last(R[1]) = p1) and pauses poised to open phase 3 too.
    let out = solo_run(&mut sys, 5, &[0, 1], budget).unwrap();
    assert_eq!(out.covered(), Some(2), "q must cover R[3]");

    // p writes first and completes with (3, 0).
    assert_eq!(
        sys.run_solo_to_completion(4, budget).unwrap(),
        Timestamp::new(3, 0)
    );

    // a (= p6) runs to completion against p's view of phase 3.
    let a_ts = sys.run_solo_to_completion(6, budget).unwrap();

    // q's stale phase-opening write lands; q completes with (3, 0).
    assert_eq!(
        sys.run_solo_to_completion(5, budget).unwrap(),
        Timestamp::new(3, 0)
    );

    // b (= p7) runs strictly after a completed.
    let b_ts = sys.run_solo_to_completion(7, budget).unwrap();

    (a_ts, b_ts, sys.check_property().is_some())
}

#[test]
fn never_overwrite_inverts_timestamps() {
    let (a_ts, b_ts, violated) = drive(OverwritePolicy::Never);
    // a's turn timestamp...
    assert_eq!(a_ts, Timestamp::new(3, 2));
    // ...comes out *larger* than b's, although a happened before b:
    assert_eq!(b_ts, Timestamp::new(3, 1));
    assert!(
        !Timestamp::compare(&a_ts, &b_ts),
        "the bug: compare({a_ts}, {b_ts}) is false though a → b"
    );
    assert!(violated, "the model checker must flag the history");
}

#[test]
fn paper_policy_survives_the_same_schedule() {
    let (a_ts, b_ts, violated) = drive(OverwritePolicy::Paper);
    assert!(
        Timestamp::compare(&a_ts, &b_ts),
        "paper policy must order a = {a_ts} before b = {b_ts}"
    );
    assert!(!violated);
}

#[test]
fn always_overwrite_survives_the_same_schedule() {
    let (a_ts, b_ts, violated) = drive(OverwritePolicy::Always);
    assert!(Timestamp::compare(&a_ts, &b_ts), "a = {a_ts}, b = {b_ts}");
    assert!(!violated);
}

/// The same hazard does not require hand-crafting under `Never` — random
/// schedules find it too, which double-checks the hand construction is
/// not an artifact of our scheduling quirks.
#[test]
fn random_search_also_finds_the_never_bug() {
    use timestamp_suite::ts_model::RandomScheduler;
    let found = (0..400u64).any(|seed| {
        RandomScheduler::new(seed)
            .run(BoundedModel::with_policy(8, OverwritePolicy::Never))
            .violation
            .is_some()
    });
    // The window is narrow; if this ever flakes, widen the seed range.
    // The deterministic tests above are the load-bearing ones.
    if !found {
        eprintln!("note: random search missed the Never bug in 400 seeds (expected occasionally)");
    }
}
