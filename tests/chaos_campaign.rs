//! Crash-stop chaos, end to end.
//!
//! The fault-campaign engine (`ts-workloads::faults`) drives seeded
//! crash/restart/partition/stall schedules *through* the workload
//! engine while real clients run the ABD protocol with deadlines and
//! backoff. These tests pin the acceptance properties of the chaos
//! work as a whole:
//!
//! - a random availability-preserving campaign over a live storm
//!   completes every op, applies every scheduled event, and leaves the
//!   cluster healed with crash/restart books balanced;
//! - crashing a replica *in the middle* of an `abd_write` (from inside
//!   the network step hook, after phase 2 has started) still lands the
//!   write on a quorum, and the healed replica resyncs to it;
//! - an explicit crash → wiped-restart schedule mid-workload rebuilds
//!   the wiped replica from the live majority (readers never regress);
//! - single-threaded campaign runs replay bit-identically per seed —
//!   op counts, the applied-event log, and every cluster counter;
//! - random `FaultSchedule`s are a pure function of `(seed, shape)`
//!   (proptest) and never take down more than `f` replicas;
//! - a worker parked while *holding* an FCFS lock ticket (the ROADMAP
//!   failure-injection scenario) blocks later tickets only until
//!   resume, after which waiters acquire in ticket order with sojourn
//!   bounded by their waiting-room position.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use timestamp_suite::ts_apps::FcfsLock;
use timestamp_suite::ts_core::{StepGate, WorkloadTarget};
use timestamp_suite::ts_replica::{
    Cluster, ClusterConfig, Message, MsgKind, ReplicatedCollectMax, RestartMode,
};
use timestamp_suite::ts_workloads::{
    run_scenario_with, Arrival, Campaign, CampaignShape, EngineOptions, FaultEvent, FaultSchedule,
    OpMix, RunConfig, Scenario, TimedFault,
};

fn closed_loop(name: &'static str) -> Scenario {
    Scenario {
        name,
        arrival: Arrival::ClosedLoop,
        mix: OpMix::uniform(),
        churn: None,
    }
}

/// Snapshot of every deterministic cluster counter, for replay
/// comparisons.
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    crashes: u64,
    restarts: u64,
    resynced: u64,
    timeouts: u64,
    backoffs: u64,
    degraded: u64,
    unavailable: u64,
}

impl Counters {
    fn of(cluster: &Cluster) -> Self {
        Self {
            crashes: cluster.replica_crashes(),
            restarts: cluster.replica_restarts(),
            resynced: cluster.resynced_registers(),
            timeouts: cluster.quorum_timeouts(),
            backoffs: cluster.quorum_backoff_steps(),
            degraded: cluster.quorum_degraded(),
            unavailable: cluster.quorum_unavailable(),
        }
    }
}

/// A random availability-preserving campaign over a three-worker storm
/// on the replicated collect-max: every op completes (nonzero
/// throughput under crashes is the headline acceptance property),
/// every event fires, and the run ends healed with books balanced.
#[test]
fn random_campaign_storm_completes_every_op_and_heals() {
    const THREADS: usize = 3;
    const OPS: u64 = 400;
    let shape = CampaignShape {
        f: 1,
        threads: THREADS,
        total_ops: THREADS as u64 * OPS,
        events: 6,
    };
    let schedule = FaultSchedule::random(0xD15EA5E, &shape);
    assert!(
        !schedule.events.is_empty(),
        "shape should yield at least one event"
    );
    let target = ReplicatedCollectMax::new(THREADS, 1, "chaos_storm");
    let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, THREADS);
    let cfg = RunConfig {
        threads: THREADS,
        ops_per_thread: OPS,
        seed: 7,
    };
    let opts = EngineOptions {
        campaign: Some(Arc::clone(&campaign)),
        watchdog: Some(Duration::from_secs(30)),
    };
    let report = run_scenario_with(&target, &closed_loop("chaos_storm"), &cfg, &opts);

    assert_eq!(report.counts.total(), THREADS as u64 * OPS);
    assert!(report.throughput_ops_per_sec > 0.0);
    assert!(campaign.fully_applied(), "events left unapplied");
    assert_eq!(campaign.applied().len(), campaign.schedule().events.len());
    let cluster = target.cluster();
    // The generator repairs everything before the run ends.
    assert!(cluster.crashed().is_empty(), "campaign left a crash");
    assert!(
        cluster.router().isolated().is_empty(),
        "campaign left a partition"
    );
    assert_eq!(cluster.replica_crashes(), cluster.replica_restarts());
    // Faults surface in the service stats the grid records.
    let stats = target
        .service_stats()
        .expect("replicated target reports stats");
    assert_eq!(stats.quorum_degraded, cluster.quorum_degraded());
    assert_eq!(stats.quorum_timeouts, cluster.quorum_timeouts());
}

/// Crash a replica from *inside* the network step hook, triggered by
/// the first phase-2 `Write` request of an `abd_write`. The client
/// widens past the dead replica, the write still reaches a full
/// quorum of live replicas, and the healed replica resyncs to the
/// written stamp — readers never observe a regression.
#[test]
fn crash_mid_abd_write_lands_on_a_quorum_and_resyncs_on_heal() {
    let cluster = Cluster::new(ClusterConfig::new(1));
    let n = cluster.replicas() as u32;
    let reg = cluster.alloc_register(0);
    let fired = Arc::new(AtomicBool::new(false));
    let hook_cluster = Arc::clone(&cluster);
    let hook_fired = Arc::clone(&fired);
    cluster
        .router()
        .set_step_hook(Some(Box::new(move |msg: &Message| {
            // First phase-2 install request: kill a replica that has NOT
            // yet seen the write, mid-protocol.
            if msg.kind == MsgKind::Write
                && msg.to < Message::CLIENT_BASE
                && !hook_fired.swap(true, Ordering::SeqCst)
            {
                hook_cluster.crash((msg.to + 1) % n);
            }
        })));

    let stamp = cluster.abd_write(reg, 42);
    cluster.router().set_step_hook(None);
    assert!(fired.load(Ordering::SeqCst), "write phase never started");

    let crashed = cluster.crashed();
    assert_eq!(crashed.len(), 1, "exactly one mid-write crash");
    let victim = crashed[0];
    // The write is durable on every live replica (need = f + 1 = 2,
    // and exactly 2 are live).
    let holders = (0..n)
        .filter(|&id| !crashed.contains(&id))
        .filter(|&id| cluster.replica(id as usize).stored(reg) == (stamp, 42))
        .count();
    assert_eq!(holders, 2, "write must be durable on the live quorum");
    // Widening past the dead replica is the degraded path.
    assert!(cluster.quorum_degraded() >= 1);

    // Reads during the outage and after heal never regress.
    let (s1, w1) = cluster.abd_read(reg);
    assert!(s1 >= stamp);
    assert_eq!(w1, 42);
    cluster.restart(victim, RestartMode::Retain);
    let (rs, rw) = cluster.replica(victim as usize).stored(reg);
    assert!(rs >= stamp, "resync must catch the healed replica up");
    assert_eq!(rw, 42);
    let (s2, w2) = cluster.abd_read(reg);
    assert!(s2 >= s1);
    assert_eq!(w2, 42);
    assert!(cluster.resynced_registers() >= 1);
}

/// Explicit crash → wiped-restart schedule driven mid-workload by the
/// campaign engine: the wiped replica rebuilds its registers from the
/// live majority and the post-run scan sees a healed, convergent
/// cluster.
#[test]
fn wiped_restart_mid_workload_rebuilds_from_the_live_majority() {
    const THREADS: usize = 2;
    const OPS: u64 = 200;
    let schedule = FaultSchedule::new(vec![
        TimedFault {
            at_op: 40,
            event: FaultEvent::Crash { replica: 2 },
        },
        TimedFault {
            at_op: 240,
            event: FaultEvent::Restart {
                replica: 2,
                wipe: true,
            },
        },
    ]);
    let target = ReplicatedCollectMax::new(THREADS, 1, "chaos_wipe");
    let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, THREADS);
    let cfg = RunConfig {
        threads: THREADS,
        ops_per_thread: OPS,
        seed: 11,
    };
    let opts = EngineOptions {
        campaign: Some(Arc::clone(&campaign)),
        watchdog: Some(Duration::from_secs(30)),
    };
    let report = run_scenario_with(&target, &closed_loop("chaos_wipe"), &cfg, &opts);

    assert_eq!(report.counts.total(), THREADS as u64 * OPS);
    assert!(campaign.fully_applied());
    let cluster = target.cluster();
    assert!(cluster.crashed().is_empty());
    assert_eq!(cluster.replica(2).wipes(), 1);
    assert!(
        cluster.resynced_registers() >= 1,
        "wiped rejoin must repair at least one register"
    );
    // At quiescence every stamp the healed replica holds came from a
    // completed (quorum-acked) write or from resync, so a protocol
    // read — whose quorum intersects every write quorum — must see at
    // least it: readers never regress behind the rejoined replica.
    for reg in 0..cluster.registers() {
        let healed = cluster.replica(2).stored(reg);
        let (rs, _) = cluster.abd_read(reg);
        assert!(
            rs >= healed.0,
            "register {reg}: read {rs:?} behind healed replica {healed:?}"
        );
    }
}

/// The determinism seam: a single-threaded campaign run is a pure
/// function of `(schedule seed, run seed)` — op counts, the
/// applied-event log (exact op thresholds), and every cluster counter
/// replay bit-identically across two fresh universes.
#[test]
fn single_threaded_campaign_runs_replay_bit_identically() {
    fn run_once() -> (u64, Vec<(usize, u64)>, Counters) {
        const OPS: u64 = 300;
        let shape = CampaignShape {
            f: 1,
            threads: 1,
            total_ops: OPS,
            events: 5,
        };
        let schedule = FaultSchedule::random(0xFACADE, &shape);
        let target = ReplicatedCollectMax::new(1, 1, "chaos_replay");
        let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, 1);
        let cfg = RunConfig {
            threads: 1,
            ops_per_thread: OPS,
            seed: 3,
        };
        let opts = EngineOptions {
            campaign: Some(Arc::clone(&campaign)),
            watchdog: Some(Duration::from_secs(30)),
        };
        let report = run_scenario_with(&target, &closed_loop("chaos_replay"), &cfg, &opts);
        let applied = campaign
            .applied()
            .into_iter()
            .map(|a| (a.index, a.at_op))
            .collect();
        (
            report.counts.total(),
            applied,
            Counters::of(target.cluster()),
        )
    }

    let (total_a, applied_a, counters_a) = run_once();
    let (total_b, applied_b, counters_b) = run_once();
    assert_eq!(total_a, total_b);
    assert_eq!(applied_a, applied_b, "applied-event logs diverged");
    assert_eq!(counters_a, counters_b, "cluster counters diverged");
}

/// The ROADMAP failure-injection scenario: a worker parked (via
/// `StepGate`) while holding an FCFS lock ticket. Later tickets block
/// behind it — FCFS means no overtaking — but once the holder resumes,
/// every waiter acquires in ticket order and each waiter's sojourn is
/// bounded by its waiting-room position (the `k`-th ticket sees
/// exactly `k` earlier handovers, never more).
#[test]
fn parked_fcfs_ticket_holder_bounds_waiter_sojourn_after_resume() {
    let lock = FcfsLock::new(3);
    let gate = StepGate::new();
    let holder_in = AtomicBool::new(false);
    let waiting = [AtomicBool::new(false), AtomicBool::new(false)];
    let handovers = AtomicUsize::new(0);
    let order: std::sync::Mutex<Vec<(usize, usize)>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|s| {
        // Slot 0: acquire, announce, park on the gate *inside* the
        // critical section (the campaign's Stall analogue).
        s.spawn(|| {
            let guard = lock.lock(0);
            holder_in.store(true, Ordering::SeqCst);
            gate.pause();
            handovers.fetch_add(1, Ordering::SeqCst);
            drop(guard);
        });
        while !holder_in.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Slots 1 then 2 enter the doorway in order; each confirms the
        // previous one holds a ticket before the next enters, fixing
        // the FCFS order deterministically.
        for pid in [1usize, 2] {
            let waiting = &waiting[pid - 1];
            let order = &order;
            let handovers = &handovers;
            let lock = &lock;
            s.spawn(move || {
                waiting.store(true, Ordering::SeqCst);
                let guard = lock.lock(pid);
                let seen = handovers.load(Ordering::SeqCst);
                order.lock().unwrap().push((pid, seen));
                handovers.fetch_add(1, Ordering::SeqCst);
                drop(guard);
            });
            while !waiting.load(Ordering::SeqCst) || lock.ticket_of(pid) == 0 {
                std::thread::yield_now();
            }
        }
        // Both waiters are ticketed behind a parked holder; neither
        // may enter while the holder is parked.
        assert!(order.lock().unwrap().is_empty(), "FCFS overtaken");
        assert_eq!(handovers.load(Ordering::SeqCst), 0);
        // Resume the holder — one credit, exactly what Resume grants.
        gate.grant(1);
    });

    // After resume: ticket order, and each waiter's sojourn bounded by
    // its position (pid 1 saw exactly the holder's handover, pid 2 saw
    // the holder's and pid 1's — no extra waiting).
    let order = order.into_inner().unwrap();
    assert_eq!(order, vec![(1, 1), (2, 2)]);
}

fn availability_bound_holds(schedule: &FaultSchedule, shape: &CampaignShape) {
    let mut crashed: Vec<u32> = Vec::new();
    let mut isolated = false;
    let mut isolated_count = 0usize;
    let mut stalled: Vec<usize> = Vec::new();
    for t in &schedule.events {
        match &t.event {
            FaultEvent::Crash { replica } => crashed.push(*replica),
            FaultEvent::Restart { replica, .. } => {
                let pos = crashed
                    .iter()
                    .position(|r| r == replica)
                    .expect("restart of a live replica");
                crashed.remove(pos);
            }
            FaultEvent::Partition { replicas } => {
                assert!(!isolated, "second partition before heal");
                isolated = true;
                isolated_count = replicas.len();
            }
            FaultEvent::Heal => {
                isolated = false;
                isolated_count = 0;
            }
            FaultEvent::Stall { slot, .. } => stalled.push(*slot),
            FaultEvent::Resume { slot } => {
                let pos = stalled
                    .iter()
                    .position(|s| s == slot)
                    .expect("resume of a running slot");
                stalled.remove(pos);
            }
        }
        assert!(
            crashed.len() + isolated_count <= shape.f,
            "availability bound broken: {} crashed + {} isolated > f = {}",
            crashed.len(),
            isolated_count,
            shape.f
        );
        assert!(stalled.len() < shape.threads.max(1), "every worker stalled");
    }
    assert!(crashed.is_empty(), "campaign ends with a crash standing");
    assert!(!isolated, "campaign ends partitioned");
    assert!(stalled.is_empty(), "campaign ends with a stall standing");
}

proptest! {
    /// Random schedules are a pure function of `(seed, shape)`, stay
    /// within the availability envelope, and always end healed.
    #[test]
    fn random_fault_schedules_replay_bit_identically_per_seed(
        seed in any::<u64>(),
        f in 1usize..3,
        threads in 1usize..5,
        events in 0usize..10,
    ) {
        // The vendored proptest caps tuple strategies at four; derive
        // the op span from the seed instead of a fifth range.
        let total_ops = 50 + seed % 1450;
        let shape = CampaignShape { f, threads, total_ops, events };
        let a = FaultSchedule::random(seed, &shape);
        let b = FaultSchedule::random(seed, &shape);
        prop_assert_eq!(&a, &b, "schedule not deterministic per seed");
        availability_bound_holds(&a, &shape);
        // Thresholds are sorted (total application order).
        for w in a.events.windows(2) {
            prop_assert!(w[0].at_op <= w[1].at_op);
        }
    }
}
