//! `any::<T>()` — canonical strategies per type.

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Canonical simplifications of `self`, most aggressive first (see
    /// [`Strategy::shrink`]); a type with no natural "simpler" order
    /// keeps the empty default.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<Self> {
                crate::strategy::shrink_toward(0, *self as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<Self> {
                // Binary descent toward zero, preserving sign (i128
                // arithmetic sidesteps `MIN.abs()` overflow).
                let v = *self as i128;
                if v == 0 {
                    return Vec::new();
                }
                let mut out: Vec<$t> = vec![0];
                let mut delta = v.abs() / 2;
                while delta > 0 {
                    let candidate = if v > 0 { v - delta } else { v + delta };
                    if candidate != 0 {
                        out.push(candidate as $t);
                    }
                    delta /= 2;
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_bool(0.5)
    }

    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = new_rng(0);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_u64_spreads_over_the_domain() {
        let mut rng = new_rng(1);
        let s = any::<u64>();
        let distinct: std::collections::HashSet<u64> =
            (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(distinct.len() > 95);
    }
}
