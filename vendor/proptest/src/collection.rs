//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{SizeRange, Strategy};
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        // Shorter first, then same length with simpler elements.
        let mut out = crate::strategy::shrink_shorter(self.size.lo, value);
        for i in 0..value.len() {
            for candidate in self.element.shrink(&value[i]) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = new_rng(0);
        for _ in 0..50 {
            assert_eq!(vec(0u64..5, 3).generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn ranged_size_stays_in_range_and_varies() {
        let mut rng = new_rng(1);
        let s = vec(0u64..5, 0..40);
        let lens: Vec<usize> = (0..100).map(|_| s.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| l < 40));
        assert!(lens.iter().collect::<std::collections::HashSet<_>>().len() > 10);
    }
}
