//! The case runner behind the `proptest!` macro: generation, failure
//! detection, and counterexample shrinking.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Cases per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Cap on test-body re-executions spent minimizing one failure.
pub const MAX_SHRINK_ITERS: u32 = 4096;

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Creates a deterministic [`TestRng`] (used by this crate's own tests).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Runs `case` over `cases()` generated inputs with deterministic
/// per-case RNGs; on the first failure, shrinks the input to a local
/// minimum and panics with the test name, case index, seed, and the
/// minimized counterexample.
///
/// The seed stream is derived from the test name so distinct properties
/// explore distinct inputs, but reruns of the same binary are identical.
///
/// Shrinking: [`Strategy::shrink`] proposes simpler inputs, most
/// aggressive first; the first proposal that still fails is adopted and
/// shrinking restarts from it, until no proposal fails (a local
/// minimum) or [`MAX_SHRINK_ITERS`] re-executions are spent.
pub fn run<S, F>(name: &str, strategy: &S, mut case: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    // FNV-1a over the name: stable across runs and platforms.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        base ^= u64::from(byte);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let total = cases();
    for index in 0..total {
        let seed = base.wrapping_add(u64::from(index));
        let mut rng = new_rng(seed);
        let value = strategy.generate(&mut rng);
        if let Err(err) = case(value.clone()) {
            let (minimal, minimal_err, shrinks, iters) =
                shrink_failure(strategy, &mut case, value, err);
            panic!(
                "property `{name}` failed at case {index}/{total} (seed {seed:#x}): {minimal_err}\n\
                 minimal failing input ({shrinks} shrinks, {iters} attempts): {minimal:?}\n\
                 rerun is deterministic; set PROPTEST_CASES to widen the search"
            );
        }
    }
}

/// Minimizes a failing `value`; returns the minimal input, its error,
/// the number of successful shrink steps, and total re-executions.
fn shrink_failure<S, F>(
    strategy: &S,
    case: &mut F,
    mut value: S::Value,
    mut err: TestCaseError,
) -> (S::Value, TestCaseError, u32, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut shrinks = 0u32;
    let mut iters = 0u32;
    'minimize: while iters < MAX_SHRINK_ITERS {
        for candidate in strategy.shrink(&value) {
            if iters >= MAX_SHRINK_ITERS {
                break 'minimize;
            }
            iters += 1;
            if let Err(candidate_err) = case(candidate.clone()) {
                value = candidate;
                err = candidate_err;
                shrinks += 1;
                continue 'minimize;
            }
        }
        break; // every proposal passed: local minimum
    }
    (value, err, shrinks, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panic_message(result: Box<dyn std::any::Any + Send>) -> String {
        result
            .downcast::<String>()
            .map(|s| *s)
            .expect("panic payload is a formatted String")
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run("always_ok", &(0u64..10,), |_v| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, cases());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        run("always_fails", &(0u64..10,), |_v| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        // Fails iff v >= 123: the minimal counterexample is exactly 123.
        let result = std::panic::catch_unwind(|| {
            run("int_shrink_demo", &(0u64..1_000_000,), |(v,)| {
                if v >= 123 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains("minimal failing input") && msg.contains("(123,)"),
            "unminimized failure report: {msg}"
        );
    }

    #[test]
    fn vec_failures_shrink_to_a_single_offending_element() {
        // Fails iff the vec contains an element >= 50; minimal is [50].
        let result = std::panic::catch_unwind(|| {
            let strategy = (crate::collection::vec(0u64..1_000, 0..30),);
            run("vec_shrink_demo", &strategy, |(v,)| {
                if v.iter().any(|&x| x >= 50) {
                    Err(TestCaseError::fail("contains a big element"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains("([50],)"),
            "vec not minimized to its offending element: {msg}"
        );
    }

    #[test]
    fn tuple_components_shrink_independently() {
        // Fails iff a >= 10 (b is irrelevant): minimal is (10, 0).
        let result = std::panic::catch_unwind(|| {
            run(
                "tuple_shrink_demo",
                &(0u64..1_000, 0u64..1_000),
                |(a, _b)| {
                    if a >= 10 {
                        Err(TestCaseError::fail("a too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains("(10, 0)"),
            "tuple not minimized componentwise: {msg}"
        );
    }

    #[test]
    fn shrinking_respects_the_range_lower_bound() {
        // Every value fails; the minimum must be the range floor, never
        // below it.
        let result = std::panic::catch_unwind(|| {
            run("floor_shrink_demo", &(7u64..5_000,), |(v,)| {
                assert!((7..5_000).contains(&v), "shrink left the range: {v}");
                Err(TestCaseError::fail("always"))
            });
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(msg.contains("(7,)"), "did not shrink to the floor: {msg}");
    }
}
