//! The case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Cases per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Creates a deterministic [`TestRng`] (used by this crate's own tests).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Runs `case` repeatedly with deterministic per-case RNGs; panics with
/// the test name, case index, and seed on the first failure.
///
/// The seed stream is derived from the test name so distinct properties
/// explore distinct inputs, but reruns of the same binary are identical.
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    // FNV-1a over the name: stable across runs and platforms.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        base ^= u64::from(byte);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let total = cases();
    for index in 0..total {
        let seed = base.wrapping_add(u64::from(index));
        let mut rng = new_rng(seed);
        if let Err(err) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {index}/{total} (seed {seed:#x}): {err}\n\
                 rerun is deterministic; set PROPTEST_CASES to widen the search"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run("always_ok", |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, cases());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        run("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }
}
