//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro, range / tuple / [`collection::vec`] /
//! [`sample::subsequence`] strategies, [`any`](arbitrary::any),
//! `prop_map`, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! - **Simpler shrinking.** Failing cases are minimized by re-running
//!   the body on progressively simpler inputs: integers binary-search
//!   toward the range floor, `vec`s/`subsequence`s drop elements and
//!   shorten toward their minimum length, tuples shrink componentwise
//!   (see [`Strategy::shrink`](strategy::Strategy::shrink) and
//!   [`test_runner::MAX_SHRINK_ITERS`]). The panic message reports the
//!   minimized counterexample plus the case number and seed; `prop_map`
//!   strategies do not shrink (the mapping is not invertible).
//! - **Fixed case count.** Each property runs
//!   [`test_runner::DEFAULT_CASES`] cases, overridable with the
//!   `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs and
/// shrinks any failing input to a minimal counterexample.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_strategy = ($(($strategy),)+);
                $crate::test_runner::run(
                    stringify!($name),
                    &__proptest_strategy,
                    |($($arg,)+)| {
                        (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    },
                );
            }
        )+
    };
}

/// Like `assert!`, but fails the current property case with a
/// [`TestCaseError`](test_runner::TestCaseError) instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Like `assert_eq!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Chooses uniformly among the given strategies (all must yield the same
/// value type). Real proptest also accepts weights; this shim does not.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(arms)
    }};
}
