//! The [`Strategy`] trait and combinators.

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe (the combinators require `Self: Sized`), so strategies of
/// different concrete types can be unified behind
/// `Box<dyn Strategy<Value = T>>` — which is how [`Union`] (the engine of
/// `prop_oneof!`) stores its arms.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; the engine of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// An inclusive-exclusive size specification, accepted wherever real
/// proptest takes `impl Into<SizeRange>` (exact sizes and `lo..hi`
/// ranges).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest admissible size.
    pub lo: usize,
    /// One past the largest admissible size.
    pub hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = new_rng(0);
        for _ in 0..1000 {
            let v = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = new_rng(1);
        let doubled = (0usize..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 20);
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = new_rng(2);
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = new_rng(3);
        let (a, b) = (0u64..4, 10usize..14).generate(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
    }
}
