//! The [`Strategy`] trait and combinators.

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe (the combinators require `Self: Sized`), so strategies of
/// different concrete types can be unified behind
/// `Box<dyn Strategy<Value = T>>` — which is how [`Union`] (the engine of
/// `prop_oneof!`) stores its arms.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler variants of a failing `value`, most aggressive
    /// first (the runner adopts the first variant that still fails and
    /// asks again, so a descending candidate ladder gives binary-search
    /// convergence). An empty vector means `value` is minimal for this
    /// strategy; the default cannot simplify anything.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Candidate ladder for shrinking an unsigned value toward `lo`:
/// `lo` itself, then `v − gap/2, v − gap/4, ..., v − 1` — adopting the
/// first still-failing candidate each round is a binary descent onto
/// the smallest failing value.
pub(crate) fn shrink_toward(lo: u64, v: u64) -> Vec<u64> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let candidate = v - delta;
        if candidate != lo {
            out.push(candidate);
        }
        delta /= 2;
    }
    out
}

/// Shared "make it shorter" ladder for sequence strategies (`vec`,
/// `subsequence`): the minimum-length prefix, a binary ladder of
/// prefixes, then dropping each single element (prefixes alone cannot
/// discard a passing head in front of the offending element).
pub(crate) fn shrink_shorter<T: Clone>(lo: usize, value: &[T]) -> Vec<Vec<T>> {
    let len = value.len();
    if len <= lo {
        return Vec::new();
    }
    let mut out = vec![value[..lo].to_vec()];
    for keep in shrink_toward(lo as u64, len as u64) {
        let keep = keep as usize;
        if keep > lo && keep < len {
            out.push(value[..keep].to_vec());
        }
    }
    for i in 0..len {
        let mut shorter = Vec::with_capacity(len - 1);
        shorter.extend_from_slice(&value[..i]);
        shorter.extend_from_slice(&value[i + 1..]);
        out.push(shorter);
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..self.end)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as u64, *value as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

// One impl per unsigned type (the whole set `rand::SampleUniform`
// covers) rather than a blanket `T: SampleUniform` impl, so `shrink`
// can do arithmetic on the values.
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; the engine of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }

    // No `shrink`: the generating arm is not recorded, and pooling every
    // arm's proposals could minimize to a value *no* arm can generate
    // (e.g. a gap between two ranges) — the runner adopts any candidate
    // the body fails on without a membership re-check, so the reported
    // "minimal counterexample" must stay within the strategy's support.
    // Real proptest shrinks through the remembered arm; this shim keeps
    // `prop_oneof!` inputs unshrunk instead.
}

/// An inclusive-exclusive size specification, accepted wherever real
/// proptest takes `impl Into<SizeRange>` (exact sizes and `lo..hi`
/// ranges).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest admissible size.
    pub lo: usize,
    /// One past the largest admissible size.
    pub hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = new_rng(0);
        for _ in 0..1000 {
            let v = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = new_rng(1);
        let doubled = (0usize..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 20);
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = new_rng(2);
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = new_rng(3);
        let (a, b) = (0u64..4, 10usize..14).generate(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
    }
}
