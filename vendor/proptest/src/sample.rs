//! Sampling strategies (`proptest::sample::subsequence`).

use rand::seq::SliceRandom;

use crate::strategy::{SizeRange, Strategy};
use crate::test_runner::TestRng;

/// The strategy returned by [`subsequence`].
pub struct Subsequence<T: Clone> {
    items: Vec<T>,
    size: SizeRange,
}

/// Generates order-preserving subsequences of `items` whose length lies
/// in `size`.
///
/// # Panics
///
/// Panics (matching real proptest) if the size range admits lengths
/// larger than `items.len()`.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    let size = size.into();
    assert!(
        size.hi <= items.len() + 1,
        "subsequence size range exceeds the number of items"
    );
    Subsequence { items, size }
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let len = self.size.sample(rng);
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        indices.shuffle(rng);
        indices.truncate(len);
        indices.sort_unstable();
        indices.into_iter().map(|i| self.items[i].clone()).collect()
    }

    fn shrink(&self, value: &Vec<T>) -> Vec<Vec<T>> {
        // Dropping elements preserves subsequence-hood (elements are
        // not shrunk — they come verbatim from `items`).
        crate::strategy::shrink_shorter(self.size.lo, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn subsequences_preserve_order_and_bounds() {
        let mut rng = new_rng(0);
        let s = subsequence((0..12usize).collect::<Vec<_>>(), 1..12);
        for _ in 0..200 {
            let sub = s.generate(&mut rng);
            assert!((1..12).contains(&sub.len()));
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "not ordered: {sub:?}");
        }
    }
}
