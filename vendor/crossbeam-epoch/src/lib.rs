//! Offline stand-in for `crossbeam-epoch`, providing the small API slice
//! the register substrate uses: [`Atomic`], [`Owned`], [`Shared`],
//! [`pin`], [`Guard::defer_destroy`] and [`flush`].
//!
//! # Reclamation scheme
//!
//! This is a real lock-free epoch scheme, mirroring the design of the
//! upstream crate (which in turn follows Fraser's epochs): there is no
//! lock anywhere on the `pin`/`defer_destroy`/unpin paths.
//!
//! - **Global epoch.** A single monotonically increasing counter
//!   `GLOBAL_EPOCH`. It only ever advances by one, via compare-exchange.
//! - **Participants.** Each thread owns a `Participant` record holding
//!   its *local epoch announcement* — a word encoding `(epoch, pinned)`.
//!   Records live in a global, prepend-only, lock-free linked list (the
//!   registry). Records are never freed; when a thread exits its record
//!   is marked inactive and may be re-claimed by a later thread, so the
//!   registry length is bounded by the peak number of live threads.
//! - **Pinning.** [`pin`] announces `(global_epoch, pinned)` in the
//!   thread's record and issues a `SeqCst` fence *before* any pointer is
//!   loaded from an [`Atomic`]. Nested pins are free (a per-thread guard
//!   count).
//! - **Garbage bags.** [`Guard::defer_destroy`] pushes the retired cell
//!   into a bag owned by the deferring thread — no shared state is
//!   touched at all. When a bag fills up it is *sealed* with the current
//!   global epoch and queued locally.
//! - **Advancing & reclaiming.** Periodically (every
//!   `PINS_BETWEEN_ADVANCE` pins, on every bag seal, and on [`flush`])
//!   a thread tries to advance the global epoch: it scans the registry
//!   and advances `G → G+1` only if every *pinned* participant has
//!   announced exactly `G`. A sealed bag with tag `e` is reclaimed —
//!   by its owning thread only — once the global epoch satisfies
//!   `G − e ≥ 2` ("two epochs behind").
//! - **Orphans.** A thread that exits with unreclaimed bags pushes them
//!   onto a global Treiber stack of orphan bags. Any thread's periodic
//!   collection detaches the whole stack with one atomic `swap`
//!   (so nodes are owned exclusively and there is no ABA hazard), frees
//!   the expired bags and re-pushes the rest.
//!
//! # Why two epochs behind is safe
//!
//! The epoch invariant: **while a participant stays pinned with
//! announcement `e`, the global epoch cannot pass `e + 1`** — advancing
//! from `e + 1` to `e + 2` requires every pinned participant to have
//! announced `e + 1`, and ours says `e`.
//!
//! Now take a bag sealed with tag `e` and a reader `R` that still holds
//! a pointer `p` from that bag. `p` was passed to `defer_destroy` only
//! after being unlinked from every `Atomic` (the caller's obligation),
//! and the seal read the global epoch *after* the unlink, so the global
//! epoch at unlink time was at most `e`. `R` can only have loaded `p`
//! *before* the unlink (for a single location, an atomic load cannot
//! return a value that was already replaced), hence while the global
//! epoch was at most `e`, hence `R`'s pin — which precedes its loads —
//! announced some epoch `≤ e`. By the invariant, the global epoch cannot
//! reach `e + 2` until `R` unpins. Contrapositive: once `G − e ≥ 2`,
//! no guard that could have observed `p` is still alive, so dropping the
//! cell is safe. Threads that pin after the unlink can only load the
//! replacement value, again by per-location coherence.
//!
//! The fences make this real-time argument sound on weak memory: the
//! `SeqCst` fence in `pin` (after the announcement, before any load)
//! pairs with the `SeqCst` fence at the start of `try_advance` (before
//! the registry scan) exactly as in upstream crossbeam-epoch — either
//! the advancer sees the announcement and refuses to advance, or the
//! pinning thread's subsequent loads see every store that preceded the
//! advancer's fence, including the unlink.
//!
//! # Deviations from real crossbeam-epoch
//!
//! - Garbage is reclaimed only by the thread that deferred it (plus the
//!   orphan path at thread exit); upstream also migrates full bags to a
//!   shared injector queue so other threads can help. Consequence: up to
//!   one unsealed bag (< `BAG_SEAL_THRESHOLD` items) per idle thread
//!   can linger until that thread pins again, exits, or calls [`flush`].
//! - `Guard::repin`, `unprotected`, `Collector`/`LocalHandle` handles,
//!   and tagged pointers are not provided — the register substrate does
//!   not use them.
//! - Epoch words are plain `usize` counters (upstream wraps at a few
//!   bits); they never wrap in practice, and the expiry test treats a
//!   bag tagged ahead of the collector's epoch snapshot — possible for
//!   orphan bags sealed concurrently by another thread — as not yet
//!   reclaimable.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};

/// Number of garbage items a thread accumulates before sealing the bag
/// (tagging it with the current global epoch) and attempting a
/// reclamation pass.
const BAG_SEAL_THRESHOLD: usize = 64;

/// How many pins a thread performs between epoch-advance attempts.
const PINS_BETWEEN_ADVANCE: usize = 64;

/// Type-erased deferred destruction of a heap cell: the cell pointer plus
/// the monomorphized drop function for its type (a plain fn pointer, so no
/// `'static` bound leaks onto `T`). The wrapper asserts `Send`, which is
/// sound because the cell is unreachable (unlinked before deferral) and is
/// dropped exactly once, by whichever thread ends up owning its bag.
struct Garbage {
    cell: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

impl Garbage {
    /// # Safety
    ///
    /// `cell` must come from `Box::into_raw::<T>` and be dropped at most
    /// once.
    unsafe fn run(self) {
        DEFERRED_OUTSTANDING.fetch_sub(1, Ordering::Relaxed);
        // SAFETY: forwarded from the constructor's contract.
        unsafe { (self.drop_fn)(self.cell) }
    }
}

/// The deferred drop routine for one concrete `T`.
///
/// # Safety
///
/// `cell` must be a live `Box<T>` allocation, dropped exactly once.
unsafe fn drop_boxed<T>(cell: *mut ()) {
    // SAFETY: forwarded from the caller's contract.
    drop(unsafe { Box::from_raw(cell.cast::<T>()) });
}

// SAFETY: the garbage only frees an unlinked, uniquely-owned allocation
// whose type the caller guaranteed may be dropped from another thread (the
// `T: Send` bounds on the register types built on top of this crate).
unsafe impl Send for Garbage {}

/// A bag of garbage sealed at a known global epoch: reclaimable once the
/// global epoch is two or more ahead of `epoch`.
struct SealedBag {
    epoch: usize,
    garbage: Vec<Garbage>,
}

impl SealedBag {
    /// Whether the bag may be reclaimed under the epoch snapshot
    /// `global`.
    ///
    /// `checked_sub`, not `wrapping_sub`: an *orphan* bag can carry a
    /// tag newer than the caller's snapshot (another thread sealed it
    /// after we loaded `GLOBAL_EPOCH`), and a wrapping subtraction would
    /// underflow and classify it expired — a premature free. A tag ahead
    /// of the snapshot is never expired. Any snapshot of the monotone
    /// epoch counter is a lower bound on the true epoch, so `true` here
    /// is always safe; the counter itself cannot realistically wrap a
    /// `usize` within a process lifetime.
    fn is_expired(&self, global: usize) -> bool {
        global.checked_sub(self.epoch).is_some_and(|gap| gap >= 2)
    }
}

/// The owner-only half of a participant record. Only the thread that
/// currently holds the record's `active` claim may touch this (plus the
/// claim handover at thread exit / re-claim, which is ordered by the
/// release/acquire pair on `active`).
struct OwnerData {
    /// Nested-pin depth of the owning thread.
    guard_count: usize,
    /// Pins since the last advance attempt (drives periodic collection).
    pins: usize,
    /// Set when the thread-local handle was dropped while guards were
    /// still alive; the last guard then releases the record.
    retired: bool,
    /// Garbage deferred since the last seal.
    current: Vec<Garbage>,
    /// Sealed bags, oldest first (seal tags are non-decreasing).
    sealed: VecDeque<SealedBag>,
}

/// One registry entry. `state`, `active` and `next` are shared; `owner`
/// belongs to the claiming thread.
struct Participant {
    /// Local epoch announcement: `(epoch << 1) | pinned`.
    state: AtomicUsize,
    /// Whether a live thread currently owns this record.
    active: AtomicBool,
    /// Next record in the prepend-only registry list.
    next: AtomicPtr<Participant>,
    owner: UnsafeCell<OwnerData>,
}

// SAFETY: the shared fields are atomics; `owner` is only accessed by the
// thread holding the `active` claim, with handover ordered by the
// release store / acquire CAS on `active`.
unsafe impl Sync for Participant {}
// SAFETY: records are only ever moved into the registry once, at
// creation, before being shared.
unsafe impl Send for Participant {}

impl Participant {
    fn new() -> Self {
        Self {
            state: AtomicUsize::new(0),
            // Created pre-claimed by the allocating thread.
            active: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
            owner: UnsafeCell::new(OwnerData {
                guard_count: 0,
                pins: 0,
                retired: false,
                current: Vec::new(),
                sealed: VecDeque::new(),
            }),
        }
    }
}

/// One orphaned bag from an exited thread, a node of the Treiber stack.
struct OrphanNode {
    bag: SealedBag,
    next: *mut OrphanNode,
}

/// The global epoch counter.
static GLOBAL_EPOCH: AtomicUsize = AtomicUsize::new(0);

/// Gauge of deferred-but-not-yet-reclaimed cells across all threads
/// (unsealed bags + sealed bags + orphans). Incremented by
/// [`Guard::defer_destroy`], decremented as garbage is actually freed.
static DEFERRED_OUTSTANDING: AtomicUsize = AtomicUsize::new(0);

/// Number of cells currently deferred but not yet reclaimed, across all
/// threads (unsealed bags, sealed bags and orphaned bags together).
///
/// This is a diagnostics gauge for leak/churn tests: a workload that
/// churns threads while writing must not drive it up monotonically —
/// orphaned garbage is adopted and freed by surviving threads (or by
/// [`flush`]). The value is a momentary snapshot and can be stale the
/// instant it is read; compare against generous bounds only.
pub fn deferred_outstanding() -> usize {
    DEFERRED_OUTSTANDING.load(Ordering::Relaxed)
}

/// Head of the prepend-only participant registry.
static REGISTRY: AtomicPtr<Participant> = AtomicPtr::new(ptr::null_mut());

/// Head of the orphan-bag stack (bags from exited threads).
static ORPHANS: AtomicPtr<OrphanNode> = AtomicPtr::new(ptr::null_mut());

/// Claims a participant record for the calling thread: re-uses an
/// inactive record if one exists, otherwise allocates and registers a
/// fresh one. Lock-free.
fn acquire_participant() -> *const Participant {
    let mut cur = REGISTRY.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: registry nodes are never freed.
        let p = unsafe { &*cur };
        if !p.active.load(Ordering::Relaxed)
            && p.active
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            // SAFETY: the acquire CAS on `active` made us the exclusive
            // owner; the previous owner's release store ordered its final
            // owner-data writes before our reads.
            let owner = unsafe { &mut *p.owner.get() };
            owner.retired = false;
            debug_assert_eq!(owner.guard_count, 0);
            return cur;
        }
        cur = p.next.load(Ordering::Acquire);
    }
    let node = Box::into_raw(Box::new(Participant::new()));
    loop {
        let head = REGISTRY.load(Ordering::Relaxed);
        // SAFETY: `node` is not yet shared.
        unsafe { (*node).next.store(head, Ordering::Relaxed) };
        if REGISTRY
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return node;
        }
    }
}

/// Releases the calling thread's claim on `p`: seals and orphans all
/// remaining garbage, then marks the record inactive for re-use.
///
/// # Safety
///
/// Must be called by the owning thread, with no live guards on `p`.
unsafe fn release_participant(p: *const Participant) {
    // SAFETY: registry nodes are never freed; we are the owner.
    let part = unsafe { &*p };
    {
        // SAFETY: owner access by the owning thread.
        let owner = unsafe { &mut *part.owner.get() };
        debug_assert_eq!(owner.guard_count, 0);
        seal_current(owner);
        while let Some(bag) = owner.sealed.pop_front() {
            push_orphan(bag);
        }
        owner.pins = 0;
        owner.retired = false;
    }
    part.state.store(0, Ordering::Relaxed);
    part.active.store(false, Ordering::Release);
}

/// Seals the unsealed bag, tagging it with the current global epoch.
/// The tag is read *after* every unlink whose garbage the bag contains,
/// so it is an upper bound on the epoch at which any of those cells was
/// still reachable.
fn seal_current(owner: &mut OwnerData) {
    if owner.current.is_empty() {
        return;
    }
    // Matches upstream `Global::push_bag`: a full fence before reading
    // the epoch tag, so the tag cannot be ordered before the unlinks.
    fence(Ordering::SeqCst);
    let epoch = GLOBAL_EPOCH.load(Ordering::Relaxed);
    let garbage = mem::take(&mut owner.current);
    owner.sealed.push_back(SealedBag { epoch, garbage });
}

/// Tries to advance the global epoch by one; returns the current global
/// epoch afterwards. The advance succeeds only if every pinned
/// participant has announced exactly the current epoch.
fn try_advance() -> usize {
    let global = GLOBAL_EPOCH.load(Ordering::Relaxed);
    // Pairs with the fence in `pin`: if a pin's announcement is not
    // visible to the scan below, the pinning thread's subsequent loads
    // are guaranteed to see every store that preceded this fence.
    fence(Ordering::SeqCst);
    let mut cur = REGISTRY.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: registry nodes are never freed.
        let p = unsafe { &*cur };
        let state = p.state.load(Ordering::Relaxed);
        if state & 1 == 1 && state >> 1 != global {
            // Someone is pinned in a different (older) epoch.
            return global;
        }
        cur = p.next.load(Ordering::Acquire);
    }
    fence(Ordering::Acquire);
    match GLOBAL_EPOCH.compare_exchange(
        global,
        global.wrapping_add(1),
        Ordering::Release,
        Ordering::Relaxed,
    ) {
        Ok(_) => global.wrapping_add(1),
        Err(now) => now,
    }
}

/// Pushes one sealed bag onto the global orphan stack. Lock-free.
fn push_orphan(bag: SealedBag) {
    let node = Box::into_raw(Box::new(OrphanNode {
        bag,
        next: ptr::null_mut(),
    }));
    loop {
        let head = ORPHANS.load(Ordering::Relaxed);
        // SAFETY: `node` is not yet shared.
        unsafe { (*node).next = head };
        if ORPHANS
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
    }
}

/// Detaches the whole orphan stack with one `swap` (exclusive ownership,
/// no ABA), frees the expired bags and re-pushes the rest.
fn collect_orphans(global: usize) {
    if ORPHANS.load(Ordering::Relaxed).is_null() {
        return;
    }
    let mut cur = ORPHANS.swap(ptr::null_mut(), Ordering::AcqRel);
    let mut expired = Vec::new();
    while !cur.is_null() {
        // SAFETY: the swap gave us exclusive ownership of the chain.
        let node = unsafe { Box::from_raw(cur) };
        cur = node.next;
        if node.bag.is_expired(global) {
            expired.push(node.bag);
        } else {
            push_orphan(node.bag);
        }
    }
    for bag in expired {
        for garbage in bag.garbage {
            // SAFETY: each item was pushed exactly once by
            // `defer_destroy`; exclusive ownership of the detached chain
            // means it runs exactly once.
            unsafe { garbage.run() };
        }
    }
}

/// One reclamation pass by the owner of `p`: advance if possible, then
/// free the owner's expired bags plus any expired orphans.
///
/// # Safety
///
/// Must be called by the thread owning `p`, with no outstanding `&mut`
/// borrow of `p`'s owner data (destructors run here may re-enter
/// `pin`/`defer_destroy` on the same participant).
unsafe fn advance_and_collect(p: *const Participant) {
    let global = try_advance();
    let expired: Vec<SealedBag> = {
        // SAFETY: owner access by the owning thread; the borrow ends
        // before any destructor runs.
        let owner = unsafe { &mut *(*p).owner.get() };
        let mut out = Vec::new();
        while owner.sealed.front().is_some_and(|b| b.is_expired(global)) {
            out.push(owner.sealed.pop_front().expect("front checked above"));
        }
        out
    };
    for bag in expired {
        for garbage in bag.garbage {
            // SAFETY: pushed exactly once, popped exactly once.
            unsafe { garbage.run() };
        }
    }
    collect_orphans(global);
}

std::thread_local! {
    /// The calling thread's claim on a participant record.
    static HANDLE: Handle = Handle {
        participant: acquire_participant(),
    };
}

struct Handle {
    participant: *const Participant,
}

impl Drop for Handle {
    fn drop(&mut self) {
        // SAFETY: we own the record; nodes are never freed.
        let part = unsafe { &*self.participant };
        // SAFETY: owner access by the owning thread.
        let owner = unsafe { &mut *part.owner.get() };
        if owner.guard_count > 0 {
            // A guard outlives the thread-local handle (possible during
            // thread teardown): the last guard releases the record.
            owner.retired = true;
        } else {
            // SAFETY: owning thread, no live guards.
            unsafe { release_participant(self.participant) };
        }
    }
}

/// A guard keeping the current thread pinned: any pointer loaded from an
/// [`Atomic`] while the guard is alive stays valid until the guard (and
/// every older guard on this thread) is dropped.
pub struct Guard {
    participant: *const Participant,
    /// Participant claimed for this guard alone (thread-local storage was
    /// already destroyed); released when the guard drops.
    ephemeral: bool,
    // Guards are tied to the thread that created them; keep the type
    // !Send, as in real crossbeam-epoch.
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread, returning a [`Guard`] that protects any
/// pointer loaded from an [`Atomic`] while it is alive.
///
/// Lock-free: announces the global epoch in this thread's participant
/// record and issues one fence. Nested pins only bump a local counter.
pub fn pin() -> Guard {
    let (participant, ephemeral) = match HANDLE.try_with(|h| h.participant) {
        Ok(p) => (p, false),
        // Thread-local storage already destroyed (a register is being
        // dropped inside another TLS destructor): claim a record for the
        // lifetime of this guard only.
        Err(_) => (acquire_participant(), true),
    };
    // SAFETY: `participant` is owned by this thread (via the TLS handle
    // or the ephemeral claim above).
    unsafe { pin_participant(participant) };
    Guard {
        participant,
        ephemeral,
        _not_send: PhantomData,
    }
}

/// # Safety
///
/// `p` must be owned by the calling thread.
unsafe fn pin_participant(p: *const Participant) {
    let part = unsafe { &*p };
    let should_collect = {
        // SAFETY: owner access by the owning thread; borrow ends before
        // `advance_and_collect` (which may run re-entrant destructors).
        let owner = unsafe { &mut *part.owner.get() };
        owner.guard_count += 1;
        if owner.guard_count == 1 {
            // Announce (global_epoch, pinned). The SeqCst fence orders
            // the announcement before every subsequent `Atomic` load:
            // an epoch advancer either sees the announcement (and keeps
            // the epoch back) or its fence precedes ours (and our loads
            // see everything up to its scan, including any unlinks whose
            // garbage it may free).
            let epoch = GLOBAL_EPOCH.load(Ordering::Relaxed);
            part.state.store((epoch << 1) | 1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            owner.pins = owner.pins.wrapping_add(1);
            owner.pins % PINS_BETWEEN_ADVANCE == 0
        } else {
            false
        }
    };
    if should_collect {
        // SAFETY: owning thread, no outstanding owner borrow.
        unsafe { advance_and_collect(p) };
    }
}

impl Guard {
    /// Defers destruction of the cell behind `shared` until no guard that
    /// may have observed it is alive.
    ///
    /// Lock-free: pushes into a bag owned by this thread; every
    /// `BAG_SEAL_THRESHOLD` items the bag is sealed with the current
    /// global epoch and a reclamation pass runs.
    ///
    /// # Safety
    ///
    /// As in crossbeam-epoch: `shared` must have been unlinked from every
    /// `Atomic` (no new reader can acquire it), must not be deferred
    /// twice, and its pointee must be safe to drop on another thread.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        if shared.ptr.is_null() {
            return;
        }
        let garbage = Garbage {
            cell: shared.ptr.cast(),
            drop_fn: drop_boxed::<T>,
        };
        DEFERRED_OUTSTANDING.fetch_add(1, Ordering::Relaxed);
        // SAFETY: guards are !Send, so `self.participant` is owned by
        // the calling thread.
        let part = unsafe { &*self.participant };
        let should_collect = {
            // SAFETY: owner access by the owning thread; borrow ends
            // before `advance_and_collect`.
            let owner = unsafe { &mut *part.owner.get() };
            owner.current.push(garbage);
            if owner.current.len() >= BAG_SEAL_THRESHOLD {
                seal_current(owner);
                true
            } else {
                false
            }
        };
        if should_collect {
            // SAFETY: owning thread, no outstanding owner borrow.
            unsafe { advance_and_collect(self.participant) };
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // SAFETY: guards are !Send; the participant is ours.
        let part = unsafe { &*self.participant };
        let release = {
            // SAFETY: owner access by the owning thread.
            let owner = unsafe { &mut *part.owner.get() };
            owner.guard_count -= 1;
            if owner.guard_count == 0 {
                // Un-announce. Release ordering keeps this thread's
                // loads/stores from being ordered after the unpin, as in
                // upstream crossbeam-epoch.
                part.state.store(0, Ordering::Release);
                self.ephemeral || owner.retired
            } else {
                false
            }
        };
        if release {
            // SAFETY: owning thread, guard count is zero.
            unsafe { release_participant(self.participant) };
        }
    }
}

/// Seals the calling thread's garbage bag, attempts to advance the global
/// epoch, and reclaims everything that is already two epochs behind
/// (this thread's bags plus orphans from exited threads).
///
/// Reclamation is otherwise amortized (every `PINS_BETWEEN_ADVANCE`
/// pins / `BAG_SEAL_THRESHOLD` deferrals), so a quiescent thread can
/// hold a small amount of garbage indefinitely; `flush` is the
/// deterministic drain, used by drop-leak tests. One call advances the
/// epoch by at most one, so draining everything takes up to three calls
/// (seal at `G`, advance to `G+1`, then `G+2` where the bag expires) —
/// more if other threads hold pins.
pub fn flush() {
    match HANDLE.try_with(|h| h.participant) {
        Ok(p) => {
            {
                // SAFETY: owner access by the owning thread; borrow ends
                // before `advance_and_collect`.
                let owner = unsafe { &mut *(*p).owner.get() };
                seal_current(owner);
            }
            // SAFETY: owning thread, no outstanding owner borrow.
            unsafe { advance_and_collect(p) };
        }
        Err(_) => {
            let global = try_advance();
            collect_orphans(global);
        }
    }
}

/// An owned heap cell, ready to be installed into an [`Atomic`].
pub struct Owned<T> {
    boxed: Box<T>,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    pub fn new(value: T) -> Self {
        Self {
            boxed: Box::new(value),
        }
    }
}

/// A pointer to a cell protected by the guard lifetime `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this pointer is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer for the guard's lifetime.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and still protected: it was loaded
    /// from an [`Atomic`] under the guard `'g` borrows from.
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: forwarded from the caller's contract.
        unsafe { &*self.ptr }
    }
}

/// Conversion of ownership into a raw pointer, for [`Atomic::swap`].
pub trait Pointer<T> {
    /// Consumes the handle, yielding the raw cell pointer.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.boxed)
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
}

/// An atomic pointer to a heap cell, the building block of the register
/// substrate.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> Atomic<T> {
    /// Allocates a cell holding `value` and points at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Swaps in `new`, returning the previous pointer under `guard`.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }
}

// Like real crossbeam-epoch: dropping an `Atomic` does not free the cell
// it points at (the owner is expected to have swapped it out and deferred
// it). The register types in this workspace do exactly that in `Drop`.

// SAFETY: `Atomic` is a shared handle to a `T` that concurrent threads
// read (`&T` via `Shared::deref`) and replace; this mirrors the bounds of
// `crossbeam_epoch::Atomic`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Payload that counts its drops.
    struct CountsDrops(Arc<AtomicUsize>);
    impl Drop for CountsDrops {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flushes until `drops` reaches `expected` (other tests in this
    /// binary may hold transient pins, stalling the epoch).
    fn flush_until(drops: &AtomicUsize, expected: usize) {
        for _ in 0..10_000 {
            flush();
            if drops.load(Ordering::Relaxed) >= expected {
                return;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn load_sees_initial_value() {
        let cell = Atomic::new(41u64);
        let guard = pin();
        let shared = cell.load(Ordering::Acquire, &guard);
        assert_eq!(unsafe { *shared.deref() }, 41);
        // Clean up: unlink and defer so the test does not leak.
        let old = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(old) };
    }

    #[test]
    fn swap_returns_previous_cell() {
        let cell = Atomic::new(1u64);
        let guard = pin();
        let old = cell.swap(Owned::new(2), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *old.deref() }, 1);
        unsafe { guard.defer_destroy(old) };
        let now = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *now.deref() }, 2);
        unsafe { guard.defer_destroy(now) };
    }

    #[test]
    fn deferred_value_drops_after_unpin_and_flush() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Atomic::new(CountsDrops(Arc::clone(&drops)));
        {
            let guard = pin();
            let old = cell.swap(
                Owned::new(CountsDrops(Arc::clone(&drops))),
                Ordering::AcqRel,
                &guard,
            );
            unsafe { guard.defer_destroy(old) };
            // Still pinned in the deferral epoch: the epoch cannot pass
            // announce+1, so the two-epoch rule keeps the cell alive.
            assert_eq!(drops.load(Ordering::Relaxed), 0);
        }
        flush_until(&drops, 1);
        assert_eq!(drops.load(Ordering::Relaxed), 1);

        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
        drop(guard);
        flush_until(&drops, 2);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn nested_pins_share_one_announcement() {
        let outer = pin();
        let cell = Atomic::new(7u64);
        let shared = cell.load(Ordering::Acquire, &outer);
        {
            // An inner pin only bumps the guard count; dropping it must
            // not un-announce while `outer` is alive.
            let _inner = pin();
        }
        assert_eq!(unsafe { *shared.deref() }, 7);
        let old = cell.swap(Shared::null(), Ordering::AcqRel, &outer);
        unsafe { outer.defer_destroy(old) };
    }

    #[test]
    fn bag_ahead_of_epoch_snapshot_is_not_expired() {
        // Regression: an orphan bag sealed at a newer epoch than the
        // collector's stale snapshot must NOT be classified expired (a
        // wrapping subtraction would underflow and free it prematurely).
        let bag = SealedBag {
            epoch: 10,
            garbage: Vec::new(),
        };
        assert!(!bag.is_expired(8), "tag ahead of snapshot freed");
        assert!(!bag.is_expired(9), "tag ahead of snapshot freed");
        assert!(!bag.is_expired(10), "same epoch freed");
        assert!(!bag.is_expired(11), "one epoch behind freed");
        assert!(bag.is_expired(12), "two epochs behind must expire");
        assert!(bag.is_expired(13));
    }

    #[test]
    fn epoch_advances_when_no_one_is_pinned() {
        let before = GLOBAL_EPOCH.load(Ordering::Relaxed);
        // Each flush advances at most once; other tests' pins may block
        // some attempts, so try a few times.
        for _ in 0..64 {
            flush();
        }
        let after = GLOBAL_EPOCH.load(Ordering::Relaxed);
        assert!(
            after.wrapping_sub(before) >= 1,
            "epoch never advanced: {before} -> {after}"
        );
    }

    #[test]
    fn a_pinned_thread_blocks_the_epoch_at_most_one_ahead() {
        let guard = pin();
        // SAFETY (test): read our own announcement back.
        let announced = {
            let p = HANDLE.with(|h| h.participant);
            unsafe { (*p).state.load(Ordering::Relaxed) >> 1 }
        };
        for _ in 0..64 {
            flush();
        }
        let global = GLOBAL_EPOCH.load(Ordering::Relaxed);
        assert!(
            global.wrapping_sub(announced) <= 1,
            "epoch ran away from a pinned participant: announced {announced}, global {global}"
        );
        drop(guard);
    }

    #[test]
    fn exited_threads_garbage_is_adopted() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(Atomic::new(CountsDrops(Arc::clone(&drops))));
        let n = 4;
        let per_thread = 100;
        std::thread::scope(|s| {
            for _ in 0..n {
                let cell = Arc::clone(&cell);
                let drops = Arc::clone(&drops);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        let guard = pin();
                        let old = cell.swap(
                            Owned::new(CountsDrops(Arc::clone(&drops))),
                            Ordering::AcqRel,
                            &guard,
                        );
                        unsafe { guard.defer_destroy(old) };
                    }
                });
            }
        });
        // Writers have exited; their unreclaimed bags were orphaned.
        // Everything except the final resident value must drop.
        let retired = n * per_thread;
        flush_until(&drops, retired);
        assert_eq!(drops.load(Ordering::Relaxed), retired);

        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
        drop(guard);
        flush_until(&drops, retired + 1);
        assert_eq!(drops.load(Ordering::Relaxed), retired + 1);
    }

    #[test]
    fn deferred_gauge_counts_and_drains() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Atomic::new(CountsDrops(Arc::clone(&drops)));
        let total = 256;
        {
            let guard = pin();
            for _ in 0..total {
                let old = cell.swap(
                    Owned::new(CountsDrops(Arc::clone(&drops))),
                    Ordering::AcqRel,
                    &guard,
                );
                unsafe { guard.defer_destroy(old) };
            }
            // While we are pinned none of our cells can be freed (sealed
            // tags are >= our announcement), so all of them are counted.
            assert!(
                deferred_outstanding() >= total,
                "gauge {} below our {total} outstanding cells",
                deferred_outstanding()
            );
        }
        flush_until(&drops, total);
        // Our cells drained (drops == total above); the gauge must come
        // back down too. Other tests run concurrently and may hold their
        // own garbage, so poll with flushes instead of asserting once.
        let mut drained = false;
        for _ in 0..10_000 {
            if deferred_outstanding() < total {
                drained = true;
                break;
            }
            flush();
            std::thread::yield_now();
        }
        assert!(drained, "gauge failed to drain: {}", deferred_outstanding());
        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
    }

    #[test]
    fn concurrent_swap_and_read_smoke() {
        let cell = Arc::new(Atomic::new(0u64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..1000 {
                        let guard = pin();
                        let old = cell.swap(Owned::new(t * 1000 + i), Ordering::AcqRel, &guard);
                        unsafe { guard.defer_destroy(old) };
                        let seen = cell.load(Ordering::Acquire, &guard);
                        let _ = unsafe { *seen.deref() };
                    }
                });
            }
        });
        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
    }

    #[test]
    fn participant_records_are_reused_across_threads() {
        // Spawn many short-lived threads; the registry must not grow
        // unboundedly because exited records are re-claimed.
        let count_registry = || {
            let mut n = 0usize;
            let mut cur = REGISTRY.load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = unsafe { (*cur).next.load(Ordering::Acquire) };
            }
            n
        };
        for _ in 0..8 {
            std::thread::spawn(|| {
                let _guard = pin();
            })
            .join()
            .unwrap();
        }
        let mid = count_registry();
        for _ in 0..32 {
            std::thread::spawn(|| {
                let _guard = pin();
            })
            .join()
            .unwrap();
        }
        let after = count_registry();
        // Sequential spawn/join: all 32 later threads can re-use records
        // (other concurrently running test threads may add a few).
        assert!(
            after <= mid + 8,
            "registry grew from {mid} to {after} despite sequential reuse"
        );
    }
}
