//! Offline stand-in for `crossbeam-epoch`, providing the small API slice
//! the register substrate uses: [`Atomic`], [`Owned`], [`Shared`],
//! [`pin`] and [`Guard::defer_destroy`].
//!
//! # Reclamation scheme
//!
//! Real crossbeam-epoch tracks a global epoch with per-thread local
//! epochs and reclaims garbage two epochs behind. This shim uses a much
//! simpler scheme that is still sound: a global mutex guards a pin count
//! and a deferred-destruction list, and the list is drained by whichever
//! [`Guard`] drops the pin count to zero.
//!
//! Soundness argument: a pointer is passed to
//! [`Guard::defer_destroy`] only after it has been unlinked from every
//! [`Atomic`] (that is the caller's safety obligation, as in real
//! crossbeam-epoch). A reader can therefore only hold the pointer if it
//! loaded it *before* the unlink, which requires a guard that is still
//! alive — so the global pin count cannot be zero while any reader holds
//! the pointer. Draining happens atomically with the `pins == 0` check
//! (both under the mutex), and threads that pin afterwards can only load
//! the new value: the unlink (an `AcqRel` swap) happens-before the
//! deferral, which happens-before the drain, which happens-before the
//! later pin — all chained through the mutex.
//!
//! The cost is that every `pin`/`defer` takes a global lock, which is
//! fine for a test substrate and keeps the unsafe surface tiny.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

/// Type-erased deferred destruction of a heap cell: the cell pointer plus
/// the monomorphized drop function for its type (a plain fn pointer, so no
/// `'static` bound leaks onto `T`). The wrapper asserts `Send`, which is
/// sound because the cell is unreachable (unlinked before deferral) and is
/// dropped exactly once, by whichever thread drains the list.
struct Garbage {
    cell: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

impl Garbage {
    /// # Safety
    ///
    /// `cell` must come from `Box::into_raw::<T>` and be dropped at most
    /// once.
    unsafe fn run(self) {
        // SAFETY: forwarded from the constructor's contract.
        unsafe { (self.drop_fn)(self.cell) }
    }
}

/// The deferred drop routine for one concrete `T`.
///
/// # Safety
///
/// `cell` must be a live `Box<T>` allocation, dropped exactly once.
unsafe fn drop_boxed<T>(cell: *mut ()) {
    // SAFETY: forwarded from the caller's contract.
    drop(unsafe { Box::from_raw(cell.cast::<T>()) });
}

// SAFETY: see the struct docs — the closure only frees an unlinked,
// uniquely-owned allocation whose type the caller guaranteed may be
// dropped from another thread (the `T: Send` bounds on the register types
// built on top of this shim).
unsafe impl Send for Garbage {}

struct EpochState {
    pins: usize,
    garbage: Vec<Garbage>,
}

static EPOCH: Mutex<EpochState> = Mutex::new(EpochState {
    pins: 0,
    garbage: Vec::new(),
});

/// A guard that keeps deferred destructions from running while it (or any
/// other guard, anywhere in the process) is alive.
pub struct Guard {
    // Guards are tied to the thread that created them in real
    // crossbeam-epoch; keep the type !Send to match.
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread, returning a [`Guard`] that protects any
/// pointer loaded from an [`Atomic`] while it is alive.
pub fn pin() -> Guard {
    EPOCH.lock().expect("epoch state poisoned").pins += 1;
    Guard {
        _not_send: PhantomData,
    }
}

impl Guard {
    /// Defers destruction of the cell behind `shared` until no guard is
    /// alive anywhere in the process.
    ///
    /// # Safety
    ///
    /// As in crossbeam-epoch: `shared` must have been unlinked from every
    /// `Atomic` (no new reader can acquire it), must not be deferred
    /// twice, and its pointee must be safe to drop on another thread.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        if shared.ptr.is_null() {
            return;
        }
        let garbage = Garbage {
            cell: shared.ptr.cast(),
            drop_fn: drop_boxed::<T>,
        };
        EPOCH
            .lock()
            .expect("epoch state poisoned")
            .garbage
            .push(garbage);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let drained = {
            let mut state = EPOCH.lock().expect("epoch state poisoned");
            state.pins -= 1;
            if state.pins == 0 {
                std::mem::take(&mut state.garbage)
            } else {
                Vec::new()
            }
        };
        // Run destructors outside the lock: a destructor may itself pin
        // (e.g. dropping a value that contains another register).
        for garbage in drained {
            // SAFETY: each entry was pushed exactly once by
            // `defer_destroy` from a `Box::into_raw` allocation, and the
            // drain removed it from the list, so it runs exactly once.
            unsafe { garbage.run() };
        }
    }
}

/// An owned heap cell, ready to be installed into an [`Atomic`].
pub struct Owned<T> {
    boxed: Box<T>,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    pub fn new(value: T) -> Self {
        Self {
            boxed: Box::new(value),
        }
    }
}

/// A pointer to a cell protected by the guard lifetime `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this pointer is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer for the guard's lifetime.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and still protected: it was loaded
    /// from an [`Atomic`] under the guard `'g` borrows from.
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: forwarded from the caller's contract.
        unsafe { &*self.ptr }
    }
}

/// Conversion of ownership into a raw pointer, for [`Atomic::swap`].
pub trait Pointer<T> {
    /// Consumes the handle, yielding the raw cell pointer.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.boxed)
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
}

/// An atomic pointer to a heap cell, the building block of the register
/// substrate.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> Atomic<T> {
    /// Allocates a cell holding `value` and points at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Swaps in `new`, returning the previous pointer under `guard`.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }
}

// Like real crossbeam-epoch: dropping an `Atomic` does not free the cell
// it points at (the owner is expected to have swapped it out and deferred
// it). The register types in this workspace do exactly that in `Drop`.

// SAFETY: `Atomic` is a shared handle to a `T` that concurrent threads
// read (`&T` via `Shared::deref`) and replace; this mirrors the bounds of
// `crossbeam_epoch::Atomic`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn load_sees_initial_value() {
        let cell = Atomic::new(41u64);
        let guard = pin();
        let shared = cell.load(Ordering::Acquire, &guard);
        assert_eq!(unsafe { *shared.deref() }, 41);
        // Clean up: unlink and defer so the test does not leak.
        let old = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(old) };
    }

    #[test]
    fn swap_returns_previous_cell() {
        let cell = Atomic::new(1u64);
        let guard = pin();
        let old = cell.swap(Owned::new(2), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *old.deref() }, 1);
        unsafe { guard.defer_destroy(old) };
        let now = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *now.deref() }, 2);
        unsafe { guard.defer_destroy(now) };
    }

    #[test]
    fn deferred_values_drop_after_last_guard() {
        struct CountsDrops(Arc<AtomicUsize>);
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Atomic::new(CountsDrops(Arc::clone(&drops)));
        {
            let outer = pin();
            {
                let guard = pin();
                let old = cell.swap(
                    Owned::new(CountsDrops(Arc::clone(&drops))),
                    Ordering::AcqRel,
                    &guard,
                );
                unsafe { guard.defer_destroy(old) };
            }
            // `outer` still pinned: nothing may be dropped yet.
            assert_eq!(drops.load(Ordering::Relaxed), 0);
        }
        // Last guard gone: the deferred cell is reclaimed.
        assert_eq!(drops.load(Ordering::Relaxed), 1);

        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
    }

    #[test]
    fn concurrent_swap_and_read_smoke() {
        let cell = Arc::new(Atomic::new(0u64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..1000 {
                        let guard = pin();
                        let old = cell.swap(Owned::new(t * 1000 + i), Ordering::AcqRel, &guard);
                        unsafe { guard.defer_destroy(old) };
                        let seen = cell.load(Ordering::Acquire, &guard);
                        let _ = unsafe { *seen.deref() };
                    }
                });
            }
        });
        let guard = pin();
        let last = cell.swap(Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
    }
}
