//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`Value`] tree as compact JSON and parses JSON text back into it.
//!
//! Output is compact (no whitespace) with object fields in declaration
//! order, matching real `serde_json::to_string` on derived structs.

#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::Value;

/// An error from serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/inf; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed by the table
                            // harness; reject rather than mis-decode.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                Error::new(format!("unsupported \\u escape at byte {}", self.pos))
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_compactly() {
        let value = Value::Object(vec![
            ("rnd".into(), Value::UInt(3)),
            ("turn".into(), Value::UInt(1)),
        ]);
        let mut out = String::new();
        write_value(&mut out, &value);
        assert_eq!(out, r#"{"rnd":3,"turn":1}"#);
    }

    #[test]
    fn parse_round_trips_nested_values() {
        let text = r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny"}}"#;
        let value: Value = {
            let mut parser = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            parser.parse_value().unwrap()
        };
        let mut out = String::new();
        write_value(&mut out, &value);
        assert_eq!(out, text);
    }

    #[test]
    fn typed_from_str_works() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let b: bool = from_str(" true ").unwrap();
        assert!(b);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u64>("12,").is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ done";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
