//! Offline stand-in for `criterion`.
//!
//! Provides the API surface of the workspace's benches —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with throughput/sample configuration, and
//! [`Bencher::iter`] / [`Bencher::iter_batched`] — but with a drastically
//! simplified measurement loop: each benchmark runs a fixed warm-up and a
//! fixed number of timed samples, then prints the mean time per
//! iteration (and throughput when configured). There is no statistical
//! analysis, no HTML report, and no saved baselines.
//!
//! The point of the shim is that `cargo bench` runs every benchmark end
//! to end and produces comparable wall-clock numbers in seconds, so
//! regressions are still visible, and the bench code itself keeps
//! compiling against the real criterion API for the day the workspace
//! can take the dependency from crates.io.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration input handling for [`Bencher::iter_batched`].
///
/// The shim re-creates the setup value for every routine call regardless
/// of variant, so the variants differ only in name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: criterion batches many per allocation.
    SmallInput,
    /// Large input: criterion uses one per allocation.
    LargeInput,
    /// Input per iteration.
    PerIteration,
}

/// Throughput basis for reporting rates alongside times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement state handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets how many timed samples to take (the shim also uses it as the
    /// iteration count per sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase
    /// beyond one untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's measurement time is
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput basis used when reporting the next benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input); // warm-up, untimed by the report
        bencher.iters = self.sample_size.max(1);
        routine(&mut bencher, input);
        self.criterion
            .report(&full, bencher.iters, bencher.elapsed, self.throughput);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, &()| routine(b))
    }

    /// Ends the group (report output is already flushed per bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!`'s expansion;
    /// the shim reads no command-line arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        bencher.iters = 10;
        routine(&mut bencher);
        self.report(&name, bencher.iters, bencher.elapsed, None);
        self
    }

    fn report(
        &mut self,
        name: &str,
        iters: u64,
        elapsed: Duration,
        throughput: Option<Throughput>,
    ) {
        let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (per_iter / 1e9);
                println!("bench {name:<50} {per_iter:>14.1} ns/iter {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (per_iter / 1e9);
                println!("bench {name:<50} {per_iter:>14.1} ns/iter {rate:>14.0} B/s");
            }
            None => println!("bench {name:<50} {per_iter:>14.1} ns/iter"),
        }
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benches() {
        let mut criterion = Criterion::default();
        let mut ran = 0u64;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(5).throughput(Throughput::Elements(2));
            group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            group.finish();
        }
        // one warm-up iteration + five timed samples
        assert_eq!(ran, 6);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut criterion = Criterion::default();
        let mut setups = 0u64;
        let mut group = criterion.benchmark_group("g");
        group.sample_size(4);
        group.bench_with_input(BenchmarkId::new("b", 0), &(), |b, &()| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
