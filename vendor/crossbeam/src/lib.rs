//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! few `crossbeam` APIs the test-suites use are reimplemented here on top
//! of [`std::thread::scope`] (available since Rust 1.63). Only the scoped
//! thread API is provided:
//!
//! - [`scope`] / [`thread::scope`] — spawn threads that may borrow from
//!   the enclosing stack frame,
//! - [`thread::Scope::spawn`] — whose closure receives `&Scope`, matching
//!   crossbeam's signature (the real crossbeam passes the scope so spawned
//!   threads can spawn siblings; that works here too),
//! - [`thread::ScopedJoinHandle::join`].
//!
//! Semantic difference from real crossbeam: if a spawned thread panics and
//! its handle is never joined, real crossbeam returns the panic payloads as
//! the `Err` of `scope`, while this shim propagates the first such panic
//! when the scope closes (via `std::thread::scope`). Every caller in this
//! workspace immediately `unwrap()`s the scope result, so both behaviors
//! abort the test identically.

#![warn(missing_docs)]

pub mod thread;

pub use crate::thread::{scope, Scope, ScopedJoinHandle};
