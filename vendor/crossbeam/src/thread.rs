//! Scoped threads, mirroring `crossbeam::thread`.

use std::any::Any;

/// A scope for spawning threads that may borrow non-`'static` data.
///
/// Created by [`scope`]; mirrors `crossbeam::thread::Scope` but wraps
/// [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// A handle to a scoped thread, returned by [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish and returns its result; `Err` holds
    /// the panic payload if the thread panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself so it can spawn further sibling threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Creates a scope in which threads borrowing local data can be spawned;
/// all unjoined threads are joined before `scope` returns.
///
/// # Example
///
/// ```
/// let data = vec![1u64, 2, 3];
/// let sum: u64 = crossbeam::scope(|s| {
///     let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
///     handles.into_iter().map(|h| h.join().unwrap()).sum()
/// })
/// .unwrap();
/// assert_eq!(sum, 12);
/// ```
///
/// # Panics
///
/// Propagates a panic from the closure, or from any spawned thread whose
/// handle was not explicitly joined (real crossbeam reports the latter
/// through the returned `Result` instead; see the crate docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                let c = &counter;
                s.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_thread_result() {
        let out: Vec<u64> = super::scope(|s| {
            let handles: Vec<_> = (0..4u64).map(|x| s.spawn(move |_| x * x)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn nested_spawn_through_the_passed_scope() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            let c = &counter;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn joined_panic_is_reported_via_err() {
        super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
