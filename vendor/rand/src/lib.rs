//! Offline stand-in for the `rand` crate (0.9 API names).
//!
//! Provides exactly the slice of `rand` the schedulers and tests use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] methods `random_range` / `random_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but fast, well-distributed, and fully deterministic
//! per seed, which is all the randomized schedulers need (failures are
//! replayed from the seed).

#![warn(missing_docs)]

use std::ops::Range;

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `random_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `lo..hi` (exclusive). `lo < hi` is the
    /// caller's responsibility; violating it panics.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Multiply-shift mapping of 64 random bits onto the span;
                // bias is ≤ span/2^64, irrelevant for a test substrate.
                let r = rng.next_u64() as u128;
                (lo as u128 + (r * span >> 64)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush and
            // recovers from any seed, including 0, within one step.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1_000_000),
                b.random_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn all_values_in_small_range_occur() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }
}
