//! Offline stand-in for `serde`.
//!
//! Real serde abstracts over data formats with visitor-based
//! `Serializer`/`Deserializer` traits. This shim — built for a container
//! with no crates.io access — collapses that design to a single
//! intermediate [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] rebuilds from one, and the companion `serde_json`
//! crate converts `Value` to and from JSON text. The derive macros
//! (re-exported from `serde_derive`, so `#[derive(serde::Serialize)]`
//! works unchanged) cover structs with named fields and fieldless enums,
//! which is every type this workspace serializes.
//!
//! Field order is preserved, so derived structs serialize to JSON with
//! fields in declaration order, exactly as real serde does.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's one wire model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a string (mirrors
    /// `serde_json::Value::as_str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// `Value` deserializes from itself (identity), so callers can parse
/// schemaless JSON with `serde_json::from_str::<Value>` exactly as with
/// real serde_json.
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// An error produced while rebuilding a typed value from a [`Value`].
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The canonical missing-object-field error.
    pub fn missing_field(field: &str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value of `Self`, erroring on shape mismatches.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn object_get_finds_keys_in_order() {
        let obj = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::UInt(2)),
        ]);
        assert_eq!(obj.get("b"), Some(&Value::UInt(2)));
        assert_eq!(obj.get("c"), None);
    }
}
