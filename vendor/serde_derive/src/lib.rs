//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this container, so the derive input
//! is parsed by hand from the raw [`TokenStream`] and the generated impl
//! is assembled as source text (token streams implement `FromStr`).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! - structs with named fields (field order preserved),
//! - enums whose variants all carry no data (serialized as the variant
//!   name string).
//!
//! Anything else (tuple structs, generics, data-carrying variants,
//! `#[serde(...)]` attributes) produces a `compile_error!` naming the
//! unsupported construct, rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Parsed {
    name: String,
    body: Body,
}

enum Body {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Consumes a `#[...]` attribute if the iterator is positioned on `#`.
fn skip_attributes(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the [...] group
    }
}

/// Consumes `pub` / `pub(...)` if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("unexpected token `{other}` in struct fields")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{name}` (tuple structs are unsupported)"
                ))
            }
        }
        fields.push(name);
        // Consume the type up to a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(other) => {
                return Err(format!(
                    "variant `{name}` carries data (`{other}`); only fieldless enums are supported"
                ))
            }
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected a type name, got {other:?}")),
    };
    let body_group = match iter.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "`{name}` is generic; the offline serde derive does not support generics"
            ))
        }
        other => {
            return Err(format!(
                "expected a braced body for `{name}`, got {other:?}"
            ))
        }
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream())?),
        "enum" => Body::Enum(parse_unit_variants(body_group.stream())?),
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Parsed { name, body })
}

/// Derives the shim's `serde::Serialize` (render to a `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(message) => return compile_error(&message),
    };
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))")
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the shim's `serde::Deserialize` (rebuild from a `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(message) => return compile_error(&message),
    };
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(match value.get({f:?}) {{\n\
                             Some(v) => v,\n\
                             None => return ::std::result::Result::Err(::serde::Error::missing_field({f:?})),\n\
                         }})?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok(Self::{v})"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms},\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"expected a {name} variant string, got {{other:?}}\"))),\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
