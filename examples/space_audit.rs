//! Live space audit: watch each algorithm's register consumption as
//! calls arrive, against the paper's bounds.
//!
//! ```sh
//! cargo run --example space_audit
//! ```

use timestamp_suite::ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, GrowableTimestamp, LongLivedTimestamp, OneShotTimestamp,
    SimpleOneShot,
};
use timestamp_suite::ts_lowerbound::bounds::{
    bounded_upper_bound, longlived_lower_bound, oneshot_lower_bound,
};

fn main() {
    let n = 64;

    println!("--- simple one-shot (Section 5), n = {n} ---");
    let simple = SimpleOneShot::new(n);
    for p in 0..n {
        simple.get_ts(p).unwrap();
        if (p + 1) % 16 == 0 {
            println!(
                "  after {:>3} calls: {:>3} registers written (alloc {})",
                p + 1,
                simple.meter().snapshot().registers_written(),
                simple.registers()
            );
        }
    }

    println!("--- Algorithm 4 one-shot (Section 6), n = {n} ---");
    let alg4 = BoundedTimestamp::one_shot(n);
    for p in 0..n {
        alg4.get_ts(p).unwrap();
        if (p + 1) % 16 == 0 {
            let stats = alg4.phase_stats();
            println!(
                "  after {:>3} calls: {:>3} written / alloc {} (phases {}, inval writes {})",
                p + 1,
                stats.registers_written,
                stats.m,
                stats.phases,
                stats.invalidation_writes
            );
        }
    }
    println!(
        "  lower bound for any one-shot object: {:.1} registers",
        oneshot_lower_bound(n)
    );

    println!("--- collect-max long-lived, n = {n} ---");
    let ll = CollectMax::new(n);
    for round in 0..3 {
        for p in 0..n {
            ll.get_ts(p).unwrap();
        }
        println!(
            "  after round {}: {} registers written (lower bound for any long-lived object: {:.1})",
            round + 1,
            ll.meter().snapshot().registers_written(),
            longlived_lower_bound(n)
        );
    }

    println!("--- growable (Section 7), unbounded M ---");
    let grow = GrowableTimestamp::new();
    for target in [64u32, 256, 1024] {
        while grow.calls() < target as u64 {
            grow.get_ts_with_id(GetTsId::new(0, grow.calls() as u32));
        }
        println!(
            "  after {:>4} calls: {:>3} registers touched (fixed-M would allocate {})",
            target,
            grow.registers_touched(),
            bounded_upper_bound(target as usize)
        );
    }
}
