//! Ordering log records across threads with a budgeted timestamp object.
//!
//! The intro's motivating scenario: asynchronous workers emit events and
//! we later need a total order consistent with real time wherever one
//! event finished before another began. Algorithm 4 with a budget `M`
//! provides that with only `⌈2√M⌉` shared registers.
//!
//! ```sh
//! cargo run --example event_ordering
//! ```

use std::sync::{Arc, Mutex};

use timestamp_suite::ts_core::{BoundedTimestamp, GetTsId, Timestamp};

#[derive(Debug, Clone)]
struct LogRecord {
    worker: u32,
    message: String,
    stamp: Timestamp,
}

fn main() {
    let workers = 4u32;
    let events_per_worker = 8u32;
    let budget = (workers * events_per_worker) as usize;
    let ts = Arc::new(BoundedTimestamp::with_budget(budget));
    let log = Arc::new(Mutex::new(Vec::<LogRecord>::new()));

    println!(
        "{} events budgeted over {} registers",
        budget,
        ts.registers()
    );

    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let ts = Arc::clone(&ts);
            let log = Arc::clone(&log);
            s.spawn(move |_| {
                for k in 0..events_per_worker {
                    let stamp = ts
                        .get_ts_with_id(GetTsId::new(w, k))
                        .expect("within budget");
                    log.lock().unwrap().push(LogRecord {
                        worker: w,
                        message: format!("worker {w} event {k}"),
                        stamp,
                    });
                }
            });
        }
    })
    .unwrap();

    // Sort by timestamp (compare is a total order on (rnd, turn) pairs).
    let mut records = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    records.sort_by(|a, b| {
        if Timestamp::compare(&a.stamp, &b.stamp) {
            std::cmp::Ordering::Less
        } else if Timestamp::compare(&b.stamp, &a.stamp) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });

    println!("--- merged log (timestamp order) ---");
    for r in &records {
        println!("{} {:>18}", r.stamp, r.message);
    }

    // Per-worker sanity: each worker's own events were sequential, so
    // their timestamps must be strictly increasing.
    for w in 0..workers {
        let own: Vec<&LogRecord> = records.iter().filter(|r| r.worker == w).collect();
        let sorted = own.windows(2).all(|p| {
            // Records are already globally sorted; per-worker order must
            // match emission order k = 0, 1, 2, ...
            p[0].message < p[1].message
        });
        assert!(sorted, "worker {w}'s events out of order");
    }
    println!("per-worker emission order preserved ✓");
}
