//! Drive the lower-bound adversary against real algorithms and watch the
//! covering grids grow (Figures 1 and 2, live).
//!
//! ```sh
//! cargo run --example adversary_covering
//! ```

use timestamp_suite::ts_core::model::{BoundedModel, CollectMaxModel, SimpleModel};
use timestamp_suite::ts_lowerbound::longlived::LongLivedConstruction;
use timestamp_suite::ts_lowerbound::oneshot::OneShotConstruction;

fn main() {
    println!("==================================================");
    println!(" One-shot construction vs Algorithm 4 (n = 32)");
    println!("==================================================");
    let report = OneShotConstruction::run(BoundedModel::new(32));
    print!("{report}");

    println!("==================================================");
    println!(" One-shot construction vs the simple algorithm (n = 24)");
    println!("==================================================");
    let report = OneShotConstruction::run(SimpleModel::new(24));
    print!("{report}");

    println!("==================================================");
    println!(" Long-lived construction vs collect-max (n = 24)");
    println!("==================================================");
    let report = LongLivedConstruction::run(CollectMaxModel::new(24));
    println!(
        "reached a (3, {})-configuration covering {} registers (theorem bound: {})",
        report.reached_k, report.covered, report.lower_bound
    );
    for ins in report.insertions.iter().take(5) {
        println!(
            "  insert p{} → covers r{} (k = {})",
            ins.pid, ins.covers, ins.k
        );
    }
    println!("  ... ({} insertions total)", report.insertions.len());
}
