//! The timestamping lineage in one sitting: Lamport clocks, vector
//! clocks and matrix clocks on a simulated message-passing history,
//! next to the paper's shared-memory timestamp objects.
//!
//! ```sh
//! cargo run --example clock_lineage
//! ```

use timestamp_suite::ts_clocks::simulation::{check_laws, run, Action};
use timestamp_suite::ts_clocks::MatrixClock;
use timestamp_suite::ts_core::{BoundedTimestamp, HistoryRecorder, OneShotTimestamp};

fn main() {
    // A three-process message-passing history: a pipeline with a
    // concurrent bystander.
    let script = [
        Action::Local(0),
        Action::Send(0, 1),
        Action::Local(2), // concurrent with everything on p0/p1 so far
        Action::Receive(1),
        Action::Send(1, 2),
        Action::Receive(2),
        Action::Local(2),
    ];
    let events = run(3, &script);
    println!("--- simulated history (Lamport + vector stamps) ---");
    for e in &events {
        println!(
            "event {} on p{}: lamport {}, vector {}",
            e.index, e.pid, e.lamport, e.vector
        );
    }
    match check_laws(&events) {
        None => println!("clock laws hold: Lamport (⇒) and vector (⇔) ✓"),
        Some(err) => panic!("clock law broken: {err}"),
    }

    // The classic asymmetry: Lamport can order concurrent events,
    // vectors never do.
    let bystander = &events[2];
    let pipeline_end = &events[6];
    println!(
        "\nbystander event {} vs pipeline end {}: vector-concurrent = {}",
        bystander.index,
        pipeline_end.index,
        bystander.vector.concurrent(&pipeline_end.vector)
    );

    // Matrix clocks: gossip until everyone knows everyone saw p0's event.
    let mut clocks: Vec<MatrixClock> = (0..3).map(|p| MatrixClock::new(p, 3)).collect();
    clocks[0].tick();
    for from in 0..3 {
        for to in 0..3 {
            if from != to {
                let snapshot = clocks[from].clone();
                clocks[to].receive(&snapshot);
            }
        }
    }
    println!(
        "\nmatrix-clock discard floor for p0's events after one gossip round: {}",
        clocks[2].discard_floor(0)
    );

    // And the shared-memory descendant: the paper's one-shot object,
    // with a recorded history checked for the timestamp property.
    println!("\n--- shared-memory descendant (Algorithm 4) ---");
    let ts = BoundedTimestamp::one_shot(4);
    let recorder = HistoryRecorder::new();
    for p in 0..4 {
        let t = recorder.record(p, || ts.get_ts(p)).unwrap();
        println!("p{p} obtained {t}");
    }
    assert!(recorder.violations().is_empty());
    println!(
        "recorded history clean; {} registers served 4 processes",
        OneShotTimestamp::registers(&ts)
    );
}
