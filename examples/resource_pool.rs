//! The application layer end-to-end: renaming for compact worker ids,
//! a k-exclusion pool for bounded resources, and an FCFS lock for a
//! shared journal — every primitive running on the paper's timestamp
//! objects.
//!
//! ```sh
//! cargo run --example resource_pool
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use timestamp_suite::ts_apps::{FcfsLock, KExclusion, OrderPreservingRenaming};

fn main() {
    let workers = 8;
    let slots = 3;

    // Step 1: workers arrive with sparse ids and acquire compact,
    // order-preserving names (one-shot renaming over Algorithm 4).
    let renaming = Arc::new(OrderPreservingRenaming::new(workers));
    // Step 2: a k-exclusion pool guards `slots` scarce resources.
    let pool = Arc::new(KExclusion::new(workers, slots));
    // Step 3: an FCFS lock orders journal appends fairly.
    let journal_lock = Arc::new(FcfsLock::new(workers));
    let journal = Arc::new(Mutex::new(Vec::<String>::new()));
    let peak = Arc::new(AtomicUsize::new(0));
    let inside = Arc::new(AtomicUsize::new(0));

    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let renaming = Arc::clone(&renaming);
            let pool = Arc::clone(&pool);
            let journal_lock = Arc::clone(&journal_lock);
            let journal = Arc::clone(&journal);
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            s.spawn(move |_| {
                let name = renaming.acquire(w).expect("one name per worker");
                for round in 0..3 {
                    let slot = pool.acquire(w);
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    // ... use the scarce resource ...
                    inside.fetch_sub(1, Ordering::SeqCst);
                    drop(slot);

                    let guard = journal_lock.lock(w);
                    journal
                        .lock()
                        .unwrap()
                        .push(format!("worker(name={name:>3}) finished round {round}"));
                    drop(guard);
                }
            });
        }
    })
    .unwrap();

    let journal = journal.lock().unwrap();
    println!("--- journal ({} entries) ---", journal.len());
    for line in journal.iter().take(10) {
        println!("{line}");
    }
    println!("...");
    println!(
        "peak concurrent slot holders: {} (k = {slots})",
        peak.load(Ordering::SeqCst)
    );
    assert!(peak.load(Ordering::SeqCst) <= slots);
    assert_eq!(journal.len(), workers * 3);
    println!("bounded concurrency and fair journaling held ✓");
}
