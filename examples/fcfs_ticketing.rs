//! First-come-first-served admission with the simple one-shot object.
//!
//! The paper's introduction motivates timestamps with FCFS fairness in
//! mutual-exclusion-style algorithms: a process that finished acquiring
//! its ticket before another started must be served first. Here n
//! clients arrive in waves; tickets are Section 5's simple one-shot
//! timestamps (⌈n/2⌉ registers), and the service order provably respects
//! arrival waves.
//!
//! ```sh
//! cargo run --example fcfs_ticketing
//! ```

use std::sync::Arc;

use timestamp_suite::ts_core::{OneShotTimestamp, SimpleOneShot, Timestamp};

#[derive(Debug)]
struct Client {
    pid: usize,
    wave: usize,
    ticket: Timestamp,
}

fn main() {
    let waves = 4;
    let per_wave = 6;
    let n = waves * per_wave;
    let desk = Arc::new(SimpleOneShot::new(n));
    println!(
        "ticket desk for {n} clients over {} registers (⌈n/2⌉)",
        desk.registers()
    );

    let mut clients: Vec<Client> = Vec::new();
    for wave in 0..waves {
        // Each wave arrives concurrently; waves are separated in time.
        let tickets: Vec<(usize, Timestamp)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..per_wave)
                .map(|i| {
                    let desk = Arc::clone(&desk);
                    let pid = wave * per_wave + i;
                    s.spawn(move |_| (pid, desk.get_ts(pid).expect("one ticket each")))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for (pid, ticket) in tickets {
            clients.push(Client { pid, wave, ticket });
        }
    }

    // Serve in ticket order (break compare-ties by pid — concurrent
    // arrivals may share a ticket value, which FCFS permits).
    clients.sort_by(|a, b| {
        if Timestamp::compare(&a.ticket, &b.ticket) {
            std::cmp::Ordering::Less
        } else if Timestamp::compare(&b.ticket, &a.ticket) {
            std::cmp::Ordering::Greater
        } else {
            a.pid.cmp(&b.pid)
        }
    });

    println!("--- service order ---");
    for c in &clients {
        println!(
            "ticket {:>8}  wave {}  client {}",
            c.ticket.rnd, c.wave, c.pid
        );
    }

    // FCFS check: waves must be served in order.
    let wave_order: Vec<usize> = clients.iter().map(|c| c.wave).collect();
    let mut sorted = wave_order.clone();
    sorted.sort_unstable();
    assert_eq!(
        wave_order, sorted,
        "a later wave was served before an earlier one"
    );
    println!("first-come-first-served across waves ✓");
}
