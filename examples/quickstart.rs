//! Quickstart: take one-shot timestamps from many threads and order
//! events with `compare`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use timestamp_suite::ts_core::{BoundedTimestamp, OneShotTimestamp, Timestamp};

fn main() {
    let n = 16;
    // Theorem 1.3: a one-shot timestamp object for n processes needs
    // only ⌈2√n⌉ registers (8 for n = 16), not Θ(n).
    let ts = Arc::new(BoundedTimestamp::one_shot(n));
    println!(
        "one-shot object for {n} processes using {} registers",
        OneShotTimestamp::registers(&*ts)
    );

    // Round 1: half the threads take timestamps concurrently.
    let round1 = take_round(&ts, 0..n / 2);
    // Round 2 (strictly after round 1): the rest.
    let round2 = take_round(&ts, n / 2..n);

    println!("round 1 timestamps: {round1:?}");
    println!("round 2 timestamps: {round2:?}");

    // compare (Algorithm 3) must order every round-1 timestamp before
    // every round-2 timestamp: round 1 happened before round 2.
    for a in &round1 {
        for b in &round2 {
            assert!(Timestamp::compare(a, b), "{a} should precede {b}");
            assert!(!Timestamp::compare(b, a));
        }
    }
    println!("every round-1 timestamp compares before every round-2 timestamp ✓");
}

fn take_round(ts: &Arc<BoundedTimestamp>, pids: std::ops::Range<usize>) -> Vec<Timestamp> {
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = pids
            .map(|p| {
                let ts = Arc::clone(ts);
                s.spawn(move |_| ts.get_ts(p).expect("one timestamp per process"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap()
}
