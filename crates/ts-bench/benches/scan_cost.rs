//! E8 — cost of the double-collect scan (Algorithm 4 line 13) vs array
//! size, quiescent and under a concurrent writer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ts_register::RegisterArray;
use ts_snapshot::double_collect_scan;

fn bench_quiescent(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan/quiescent");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for m in [8usize, 32, 128, 512] {
        let array: RegisterArray<u64> = RegisterArray::new(m, 0);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(double_collect_scan(&array)))
        });
    }
    group.finish();
}

fn bench_under_writer(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan/one_writer");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for m in [8usize, 32, 128] {
        let array = Arc::new(RegisterArray::new(m, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let array = Arc::clone(&array);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    array.write((k as usize) % m, k).unwrap();
                    k += 1;
                    std::thread::yield_now();
                }
            })
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(double_collect_scan(&array)))
        });
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_quiescent, bench_under_writer);
criterion_main!(benches);
