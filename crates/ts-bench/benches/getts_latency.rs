//! E8 — `getTS` latency of each algorithm (sequential, per call).
//!
//! Wait-freedom is a progress property, not a speed claim, but the
//! paper's algorithms trade space for steps: the simple object does
//! Θ(n) register accesses per call, Algorithm 4 does O(√M) plus a scan.
//! This bench makes the trade visible.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, GrowableTimestamp, LongLivedTimestamp, OneShotTimestamp,
    SimpleOneShot,
};

fn bench_simple(c: &mut Criterion) {
    let mut group = c.benchmark_group("getts_sequential/simple");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || SimpleOneShot::new(n),
                |ts| {
                    for p in 0..n {
                        std::hint::black_box(ts.get_ts(p).unwrap());
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("getts_sequential/alg4");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || BoundedTimestamp::one_shot(n),
                |ts| {
                    for p in 0..n {
                        std::hint::black_box(ts.get_ts(p).unwrap());
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_collect_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("getts_sequential/collect_max");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 64, 256] {
        let ts = CollectMax::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(ts.get_ts(0).unwrap()))
        });
    }
    group.finish();
}

fn bench_growable(c: &mut Criterion) {
    let mut group = c.benchmark_group("getts_sequential/growable");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("calls=256", |b| {
        b.iter_batched(
            GrowableTimestamp::new,
            |ts| {
                for k in 0..256u32 {
                    std::hint::black_box(ts.get_ts_with_id(GetTsId::new(0, k)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simple,
    bench_bounded,
    bench_collect_max,
    bench_growable
);
criterion_main!(benches);
