//! E8 — throughput of budgeted Algorithm 4 and collect-max under thread
//! contention.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use ts_core::{BoundedTimestamp, CollectMax, GetTsId, LongLivedTimestamp};

const CALLS_PER_THREAD: usize = 64;

fn bench_bounded_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention/alg4");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * CALLS_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter_batched(
                || BoundedTimestamp::with_budget(t * CALLS_PER_THREAD),
                |ts| {
                    crossbeam::scope(|s| {
                        for tid in 0..t {
                            let ts = &ts;
                            s.spawn(move |_| {
                                for k in 0..CALLS_PER_THREAD {
                                    let _ = std::hint::black_box(
                                        ts.get_ts_with_id(GetTsId::new(tid as u32, k as u32)),
                                    );
                                }
                            });
                        }
                    })
                    .unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_collect_max_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention/collect_max");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * CALLS_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter_batched(
                || CollectMax::new(t.max(2)),
                |ts| {
                    crossbeam::scope(|s| {
                        for tid in 0..t {
                            let ts = &ts;
                            s.spawn(move |_| {
                                for _ in 0..CALLS_PER_THREAD {
                                    let _ = std::hint::black_box(ts.get_ts(tid).unwrap());
                                }
                            });
                        }
                    })
                    .unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bounded_contention,
    bench_collect_max_contention
);
criterion_main!(benches);
