//! E9 — timing side of the overwrite-policy ablation: does the paper's
//! conditional overwrite (vs. always-overwrite) pay off in time as well
//! as space?

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use ts_core::{BoundedTimestamp, GetTsId, OverwritePolicy};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/overwrite_policy");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let budget = 512usize;
    for policy in [
        OverwritePolicy::Paper,
        OverwritePolicy::Always,
        OverwritePolicy::Never,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || BoundedTimestamp::with_budget_and_policy(budget, policy),
                    |ts| {
                        for k in 0..budget {
                            let _ =
                                std::hint::black_box(ts.get_ts_with_id(GetTsId::new(0, k as u32)));
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
