//! Benchmark harness: workload generators and table machinery for
//! regenerating every table and figure of the paper.
//!
//! Each experiment of DESIGN.md §4 has a binary in `src/bin/` that prints
//! a markdown table (and optionally JSON) to stdout:
//!
//! | Binary | Experiment | Paper artifact |
//! |---|---|---|
//! | `table_oneshot_space` | E1 | Theorems 1.2/1.3 + Section 5 space table |
//! | `table_longlived_gap` | E2 | Theorem 1.1 + the one-shot/long-lived gap |
//! | `fig1_initial_covering` | E3 | Figure 1 |
//! | `fig2_inductive_step` | E4 | Figure 2 |
//! | `table_phase_accounting` | E5 | Lemma 6.5 / Claims 6.10, 6.13 |
//! | `table_3k_configurations` | E6 | Lemma 3.2 |
//! | `table_growable` | E7 | Section 7 extension |
//! | `table_ablation` | E9 | overwrite-policy ablation |
//! | `bench_contention` | substrate scaling | epoch vs packed backends, 1..=N threads; writes `BENCH_baseline.json` |
//! | `bench_workloads` | scenario grid | `ts-workloads` engine: object × backend × scenario × threads with latency percentiles; writes `BENCH_workloads.json` |
//!
//! The `benches/` directory holds the criterion benches (E8): `getTS`
//! latency, scan cost, thread contention and the ablation timing.
//!
//! Output contract: every table binary prints markdown normally and
//! *only* JSON lines (prose suppressed) when `TS_BENCH_JSON` is set —
//! one object per table for the table binaries ([`Table::emit`]), one
//! object per result row for `bench_workloads`; see [`note`].

#![warn(missing_docs)]

use std::fmt::Write as _;

use crossbeam::thread;
use serde::Serialize;

use ts_core::{
    BoundedTimestamp, CollectMax, GetTsId, LongLivedTimestamp, OneShotTimestamp, OverwritePolicy,
    PhaseStats, SimpleOneShot, Timestamp,
};

/// A printable experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (experiment id + artifact).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table: markdown for humans, or one JSON line in
    /// [`json_mode`].
    ///
    /// Every table binary goes through this method (and routes its
    /// prose through [`note`]), so under `TS_BENCH_JSON` stdout is
    /// *only* JSON lines — one object per table — with no markdown or
    /// commentary interleaved for downstream tooling to skip.
    pub fn emit(&self) {
        if json_mode() {
            println!("{}", serde_json::to_string(self).expect("tables serialize"));
        } else {
            println!("{}", self.to_markdown());
        }
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Whether the `TS_BENCH_JSON` environment variable selects
/// machine-readable output.
pub fn json_mode() -> bool {
    std::env::var_os("TS_BENCH_JSON").is_some()
}

/// Prints human-facing commentary (shape checks, captions) — suppressed
/// in [`json_mode`] so table binaries emit pure JSON lines there.
pub fn note(text: impl std::fmt::Display) {
    if !json_mode() {
        println!("{text}");
    }
}

/// Result of running a one-shot object with `n` concurrent threads.
#[derive(Debug, Clone, Serialize)]
pub struct OneShotRun {
    /// Processes / calls.
    pub n: usize,
    /// Registers the object allocated.
    pub allocated: usize,
    /// Registers actually written.
    pub written: usize,
    /// Whether all happens-before pairs compared correctly across two
    /// barrier-separated halves.
    pub ordered_ok: bool,
}

fn run_concurrent_oneshot<T: OneShotTimestamp>(
    ts: &T,
    n: usize,
) -> (Vec<Timestamp>, Vec<Timestamp>) {
    // Two barrier-separated rounds establish real happens-before edges.
    let half = n / 2;
    let round = |lo: usize, hi: usize| -> Vec<Timestamp> {
        thread::scope(|s| {
            let handles: Vec<_> = (lo..hi)
                .map(|p| s.spawn(move |_| ts.get_ts(p).expect("one-shot get_ts")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap()
    };
    let first = round(0, half);
    let second = round(half, n);
    (first, second)
}

fn rounds_ordered(first: &[Timestamp], second: &[Timestamp]) -> bool {
    first.iter().all(|a| {
        second
            .iter()
            .all(|b| Timestamp::compare(a, b) && !Timestamp::compare(b, a))
    })
}

/// E1 workload: the simple `⌈n/2⌉`-register object under `n` threads.
pub fn run_simple_oneshot(n: usize) -> OneShotRun {
    let ts = SimpleOneShot::new(n);
    let (first, second) = run_concurrent_oneshot(&ts, n);
    OneShotRun {
        n,
        allocated: ts.registers(),
        written: ts.meter().snapshot().registers_written(),
        ordered_ok: rounds_ordered(&first, &second),
    }
}

/// E1 workload: Algorithm 4 one-shot (`⌈2√n⌉` registers) under `n`
/// threads. Also returns the phase statistics.
pub fn run_bounded_oneshot(n: usize) -> (OneShotRun, PhaseStats) {
    run_bounded_oneshot_with_policy(n, OverwritePolicy::Paper)
}

/// E9 workload: Algorithm 4 with an explicit overwrite policy.
pub fn run_bounded_oneshot_with_policy(
    n: usize,
    policy: OverwritePolicy,
) -> (OneShotRun, PhaseStats) {
    let ts = BoundedTimestamp::one_shot_with_policy(n, policy);
    let (first, second) = run_concurrent_oneshot(&ts, n);
    let stats = ts.phase_stats();
    (
        OneShotRun {
            n,
            allocated: OneShotTimestamp::registers(&ts),
            written: stats.registers_written,
            ordered_ok: rounds_ordered(&first, &second),
        },
        stats,
    )
}

/// E2 workload: long-lived collect-max, `n` threads × `ops` calls each.
pub fn run_collect_max(n: usize, ops: usize) -> OneShotRun {
    let ts = CollectMax::new(n);
    let mut prev_max: Option<Timestamp> = None;
    let mut ordered_ok = true;
    for _round in 0..ops {
        let outs: Vec<Timestamp> = thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let ts = &ts;
                    s.spawn(move |_| ts.get_ts(p).expect("collect-max get_ts"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let min = *outs.iter().min().unwrap();
        let max = *outs.iter().max().unwrap();
        if let Some(pm) = prev_max {
            ordered_ok &= Timestamp::compare(&pm, &min);
        }
        prev_max = Some(max);
    }
    OneShotRun {
        n,
        allocated: LongLivedTimestamp::registers(&ts),
        written: ts.meter().snapshot().registers_written(),
        ordered_ok,
    }
}

/// E5 workload: a budgeted Algorithm 4 object driven by `threads`
/// threads until the budget `m_calls` is consumed; returns the phase
/// statistics.
pub fn run_phase_accounting(m_calls: usize, threads: usize) -> PhaseStats {
    let ts = BoundedTimestamp::with_budget(m_calls);
    thread::scope(|s| {
        for t in 0..threads {
            let ts = &ts;
            s.spawn(move |_| {
                let mut k = 0u32;
                while ts.get_ts_with_id(GetTsId::new(t as u32, k)).is_ok() {
                    k += 1;
                }
            });
        }
    })
    .unwrap();
    ts.phase_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## demo"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn simple_oneshot_workload_is_ordered_and_compact() {
        let run = run_simple_oneshot(8);
        assert!(run.ordered_ok);
        assert_eq!(run.allocated, 4);
        assert!(run.written <= 4);
    }

    #[test]
    fn bounded_oneshot_workload_meets_bounds() {
        let (run, stats) = run_bounded_oneshot(16);
        assert!(run.ordered_ok);
        assert!(stats.space_bound_holds());
        assert!(stats.invalidation_bound_holds());
    }

    #[test]
    fn collect_max_workload_is_ordered() {
        let run = run_collect_max(4, 3);
        assert!(run.ordered_ok);
        assert_eq!(run.written, 4);
    }

    #[test]
    fn phase_accounting_consumes_budget() {
        let stats = run_phase_accounting(64, 4);
        assert_eq!(stats.calls, 64); // admitted calls are capped at the budget
        assert!(stats.phase_bound_holds());
        assert!(stats.invalidation_bound_holds());
        assert!(stats.space_bound_holds());
    }

    #[test]
    fn timestamps_round_trip_through_serde() {
        let t = Timestamp::new(3, 1);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"{"rnd":3,"turn":1}"#);
        let back: Timestamp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let id = GetTsId::new(2, 5);
        let back: GetTsId = serde_json::from_str(&serde_json::to_string(&id).unwrap()).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn phase_stats_serialize_for_the_harness() {
        let ts = BoundedTimestamp::with_budget(4);
        for k in 0..4u32 {
            ts.get_ts_with_id(GetTsId::new(0, k)).unwrap();
        }
        let json = serde_json::to_string(&ts.phase_stats()).unwrap();
        assert!(json.contains("\"phases\""));
        assert!(json.contains("\"invalidation_writes\""));
    }
}
