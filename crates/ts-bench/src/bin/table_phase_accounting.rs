//! E5 — phase accounting (Lemma 6.5, Claims 6.10/6.13).
//!
//! For each budget `M` and thread count: drive Algorithm 4 to budget
//! exhaustion and report phases Φ, invalidation writes, total writes and
//! registers written against the paper's bounds Φ < 2√M, invalidation
//! writes ≤ 2M, registers ≤ ⌈2√M⌉.

use ts_bench::{run_phase_accounting, Table};

fn main() {
    let mut table = Table::new(
        "E5 — Algorithm 4 phase accounting vs paper bounds",
        &[
            "M",
            "threads",
            "phases Φ",
            "bound 2√M",
            "inval writes",
            "bound 2M",
            "total writes",
            "registers written",
            "alloc ⌈2√M⌉",
            "all bounds hold",
        ],
    );
    for &m_calls in &[16usize, 64, 256, 1024, 4096, 16384] {
        for &threads in &[1usize, 4, 16] {
            let stats = run_phase_accounting(m_calls, threads);
            let ok = stats.phase_bound_holds()
                && stats.invalidation_bound_holds()
                && stats.space_bound_holds();
            assert!(ok, "bound violated: {stats:?}");
            table.push_row(vec![
                m_calls.to_string(),
                threads.to_string(),
                stats.phases.to_string(),
                format!("{:.1}", 2.0 * (m_calls as f64).sqrt()),
                stats.invalidation_writes.to_string(),
                (2 * m_calls).to_string(),
                stats.total_writes.to_string(),
                stats.registers_written.to_string(),
                stats.m.to_string(),
                ok.to_string(),
            ]);
        }
    }
    table.emit();
    ts_bench::note(
        "shape check: sequential phases grow ~√(2M) (each phase k serves k calls),\n\
         well under the 2√M worst-case bound; concurrency pushes Φ toward the bound.",
    );
}
