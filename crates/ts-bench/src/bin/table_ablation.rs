//! E9 — ablation: the invalidation-overwrite policy of lines 10–11.
//!
//! Compares Algorithm 4's three overwrite policies under the concurrent
//! one-shot workload:
//!
//! - `Paper` — overwrite only when `R[j].rnd < myrnd`;
//! - `Always` — the "simple repair" the paper mentions and rejects for
//!   space: every invalid register is rewritten;
//! - `Never` — the latent bug of Section 6.1 (an old phase-opening write
//!   can re-validate registers). The concurrent workload rarely hits the
//!   failure window, which is exactly why the paper needs the argument —
//!   the model-checking integration test constructs the failing schedule
//!   deterministically.

use ts_bench::{run_bounded_oneshot_with_policy, Table};
use ts_core::OverwritePolicy;

fn main() {
    let mut table = Table::new(
        "E9 — overwrite-policy ablation (Algorithm 4, n threads, one-shot)",
        &[
            "n",
            "policy",
            "total writes",
            "inval writes",
            "phases",
            "registers written",
            "ordered ok",
        ],
    );
    for &n in &[64usize, 256, 1024] {
        for policy in [
            OverwritePolicy::Paper,
            OverwritePolicy::Always,
            OverwritePolicy::Never,
        ] {
            let (run, stats) = run_bounded_oneshot_with_policy(n, policy);
            table.push_row(vec![
                n.to_string(),
                format!("{policy:?}"),
                stats.total_writes.to_string(),
                stats.invalidation_writes.to_string(),
                stats.phases.to_string(),
                stats.registers_written.to_string(),
                run.ordered_ok.to_string(),
            ]);
        }
    }
    table.emit();
    ts_bench::note(
        "shape check: Always spends strictly more writes than Paper for the\n\
         same phases; Never writes least but is incorrect (see the\n\
         never_overwrite_bug integration test for the deterministic failure).",
    );
}
