//! E7 — the Section 7 growable object: unbounded `M`, O(√M) space.
//!
//! Drives the growable object through increasing call counts and reports
//! registers touched against `⌈2√M⌉` — the fixed-`M` allocation it
//! avoids paying up front.

use ts_bench::Table;
use ts_core::{GetTsId, GrowableTimestamp, Timestamp};
use ts_lowerbound::bounds::bounded_upper_bound;

fn main() {
    let mut table = Table::new(
        "E7 — growable (Section 7): registers touched vs calls served",
        &[
            "calls M",
            "registers touched",
            "fixed-M alloc ⌈2√M⌉",
            "touched ≤ alloc",
        ],
    );
    let ts = GrowableTimestamp::new();
    let mut last: Option<Timestamp> = None;
    let mut calls = 0u32;
    for &target in &[16usize, 64, 256, 1024, 4096] {
        while (calls as usize) < target {
            let t = ts.get_ts_with_id(GetTsId::new(0, calls));
            if let Some(prev) = last {
                assert!(
                    Timestamp::compare(&prev, &t),
                    "monotonicity broke at {calls}"
                );
            }
            last = Some(t);
            calls += 1;
        }
        let touched = ts.registers_touched();
        let alloc = bounded_upper_bound(target);
        table.push_row(vec![
            target.to_string(),
            touched.to_string(),
            alloc.to_string(),
            (touched <= alloc).to_string(),
        ]);
    }
    table.emit();
    ts_bench::note(
        "shape check: space keeps tracking √M as M grows without any\n\
         preconfigured bound; progress is non-blocking (paper, Section 7).",
    );
}
