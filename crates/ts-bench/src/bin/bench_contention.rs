//! `bench_contention` — substrate scaling benchmark and the repo's
//! recorded perf baseline.
//!
//! Hammers the register substrate from 1..=N threads across three
//! workloads, on both register backends:
//!
//! - **register read/write** — a 90/10 read/write mix against one shared
//!   register (`AtomicRegister<u64>` vs `PackedRegister<u64>`); this is
//!   the raw cost of the epoch machinery vs a hardware atomic.
//! - **scan** — `double_collect_scan` over an 8-register array while
//!   `threads − 1` writers interfere, epoch vs packed arrays. Arrays are
//!   cache-line padded by default; the `scan_unpadded` rows rerun the
//!   same workload on the compact layout, so the baseline records the
//!   false-sharing cost the padding removes.
//! - **getTS** — `SimpleOneShot` (fresh objects, every thread takes its
//!   one-shot timestamp on each) and `CollectMax` (one long-lived
//!   object), packed default vs `EpochBackend` variants.
//!
//! Output: a markdown table (or pure JSON lines under `TS_BENCH_JSON`,
//! like every table binary), plus a machine-readable baseline written to
//! `BENCH_baseline.json` (override with `--out PATH`) so future changes
//! have a perf trajectory to compare against.
//!
//! Flags: `--threads N` caps the thread ladder (default 8), `--smoke`
//! shrinks op counts ~20x for CI smoke runs **and measures each cell
//! three times, keeping the best** (short cells are scheduler-noise
//! magnets; a code regression survives repeats, a noisy neighbour does
//! not — this is what makes the CI `perf-smoke` 0.5x gate reliable),
//! `--out PATH` relocates the baseline file (`--out -` skips writing
//! it).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use serde::Serialize;

use ts_bench::Table;
use ts_core::{
    CollectMax, EpochBackend, LongLivedTimestamp, OneShotTimestamp, PackedBackend, RegisterBackend,
    SimpleOneShot,
};
use ts_register::{ArrayLayout, AtomicRegister, PackedRegister, RegisterArray};
use ts_snapshot::double_collect_scan;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    bench: String,
    backend: String,
    threads: usize,
    total_ops: u64,
    ops_per_sec: f64,
}

/// The file schema of `BENCH_baseline.json`.
#[derive(Debug, Serialize)]
struct Baseline {
    schema: String,
    host_threads: usize,
    smoke: bool,
    results: Vec<BenchRow>,
}

struct Config {
    max_threads: usize,
    smoke: bool,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        max_threads: 8,
        smoke: false,
        out: Some("BENCH_baseline.json".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads takes a value");
                cfg.max_threads = v.parse().expect("--threads takes a number");
                assert!(cfg.max_threads >= 1, "--threads must be >= 1");
            }
            "--smoke" => cfg.smoke = true,
            "--out" => {
                let v = args.next().expect("--out takes a path");
                cfg.out = if v == "-" { None } else { Some(v) };
            }
            other => panic!("unknown flag {other} (expected --threads N | --smoke | --out PATH)"),
        }
    }
    cfg
}

fn thread_ladder(max: usize) -> Vec<usize> {
    let mut ladder = vec![];
    let mut t = 1;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max);
    ladder
}

fn row(bench: &str, backend: &str, threads: usize, total_ops: u64, secs: f64) -> BenchRow {
    BenchRow {
        bench: bench.to_string(),
        backend: backend.to_string(),
        threads,
        total_ops,
        ops_per_sec: total_ops as f64 / secs,
    }
}

/// 90/10 read/write mix against one shared register. `total_ops` split
/// across `threads`.
fn bench_register_rw<R>(reg: &R, threads: usize, total_ops: u64) -> f64
where
    R: ts_register::Register<u64>,
{
    let per_thread = total_ops / threads as u64;
    let start = Instant::now();
    crossbeam::scope(|s| {
        for t in 0..threads {
            let reg = &reg;
            s.spawn(move |_| {
                let mut acc = 0u64;
                for i in 0..per_thread {
                    if i % 10 == 9 {
                        reg.write(t as u64 + i);
                    } else {
                        acc = acc.wrapping_add(reg.read());
                    }
                }
                std::hint::black_box(acc);
            });
        }
    })
    .unwrap();
    start.elapsed().as_secs_f64()
}

/// One scanner performing `scans` double collects while `threads - 1`
/// writers hammer the array.
fn bench_scan<B: RegisterBackend<u64>>(threads: usize, scans: u64, layout: ArrayLayout) -> f64 {
    let array: RegisterArray<u64, B> = RegisterArray::with_layout(8, 0, layout);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    crossbeam::scope(|s| {
        for w in 0..threads.saturating_sub(1) {
            let array = &array;
            let stop = &stop;
            s.spawn(move |_| {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    array.write(w % 8, i % 1000).expect("index in range");
                    i += 1;
                }
            });
        }
        let array = &array;
        let stop = &stop;
        s.spawn(move |_| {
            for _ in 0..scans {
                std::hint::black_box(double_collect_scan(array));
            }
            stop.store(true, Ordering::Relaxed);
        });
    })
    .unwrap();
    start.elapsed().as_secs_f64()
}

/// Every thread takes its one-shot timestamp on each of `objects`
/// pre-created `SimpleOneShot(threads)` objects.
fn bench_simple_oneshot<B: RegisterBackend<u64>>(threads: usize, objects: usize) -> (u64, f64) {
    let pool: Vec<SimpleOneShot<B>> = (0..objects)
        .map(|_| SimpleOneShot::<B>::with_backend(threads.max(2)))
        .collect();
    let start = Instant::now();
    crossbeam::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            s.spawn(move |_| {
                for obj in pool {
                    std::hint::black_box(obj.get_ts(t).expect("one-shot get_ts"));
                }
            });
        }
    })
    .unwrap();
    ((objects * threads) as u64, start.elapsed().as_secs_f64())
}

/// Long-lived `CollectMax`: each thread performs `ops_per_thread` calls.
fn bench_collect_max<B: RegisterBackend<u64>>(threads: usize, ops_per_thread: u64) -> (u64, f64) {
    let ts = CollectMax::<B>::with_backend(threads.max(2));
    let start = Instant::now();
    crossbeam::scope(|s| {
        for t in 0..threads {
            let ts = &ts;
            s.spawn(move |_| {
                for _ in 0..ops_per_thread {
                    std::hint::black_box(ts.get_ts(t).expect("collect-max get_ts"));
                }
            });
        }
    })
    .unwrap();
    (
        threads as u64 * ops_per_thread,
        start.elapsed().as_secs_f64(),
    )
}

fn main() {
    let cfg = parse_args();
    let scale = |n: u64| if cfg.smoke { (n / 20).max(100) } else { n };
    let rw_ops = scale(400_000);
    let scans = scale(400_000);
    let oneshot_objects = scale(10_000) as usize;
    let collect_ops = scale(40_000);

    // Smoke cells are tiny (a scheduler hiccup is a 2x swing), so smoke
    // mode measures each cell three times and keeps the best: real
    // regressions survive repeats, noisy neighbours do not.
    let reps = if cfg.smoke { 3 } else { 1 };
    let best = |mut measure: Box<dyn FnMut() -> BenchRow + '_>| -> BenchRow {
        let mut best = measure();
        for _ in 1..reps {
            let again = measure();
            if again.ops_per_sec > best.ops_per_sec {
                best = again;
            }
        }
        best
    };

    let mut results: Vec<BenchRow> = Vec::new();
    for &t in &thread_ladder(cfg.max_threads) {
        results.push(best(Box::new(|| {
            let reg = AtomicRegister::new(0u64);
            let secs = bench_register_rw(&reg, t, rw_ops);
            row("register_rw", "epoch", t, rw_ops, secs)
        })));
        results.push(best(Box::new(|| {
            let reg: PackedRegister<u64> = PackedRegister::new(0);
            let secs = bench_register_rw(&reg, t, rw_ops);
            row("register_rw", "packed", t, rw_ops, secs)
        })));
        results.push(best(Box::new(|| {
            let secs = bench_scan::<EpochBackend>(t, scans, ArrayLayout::Padded);
            row("scan", "epoch", t, scans, secs)
        })));
        results.push(best(Box::new(|| {
            let secs = bench_scan::<PackedBackend>(t, scans, ArrayLayout::Padded);
            row("scan", "packed", t, scans, secs)
        })));
        results.push(best(Box::new(|| {
            let secs = bench_scan::<EpochBackend>(t, scans, ArrayLayout::Compact);
            row("scan_unpadded", "epoch", t, scans, secs)
        })));
        results.push(best(Box::new(|| {
            let secs = bench_scan::<PackedBackend>(t, scans, ArrayLayout::Compact);
            row("scan_unpadded", "packed", t, scans, secs)
        })));
        results.push(best(Box::new(|| {
            let (ops, secs) = bench_simple_oneshot::<EpochBackend>(t, oneshot_objects);
            row("get_ts/simple_oneshot", "epoch", t, ops, secs)
        })));
        results.push(best(Box::new(|| {
            let (ops, secs) = bench_simple_oneshot::<PackedBackend>(t, oneshot_objects);
            row("get_ts/simple_oneshot", "packed", t, ops, secs)
        })));
        results.push(best(Box::new(|| {
            let (ops, secs) = bench_collect_max::<EpochBackend>(t, collect_ops);
            row("get_ts/collect_max", "epoch", t, ops, secs)
        })));
        results.push(best(Box::new(|| {
            let (ops, secs) = bench_collect_max::<PackedBackend>(t, collect_ops);
            row("get_ts/collect_max", "packed", t, ops, secs)
        })));
    }

    let mut table = Table::new(
        "bench_contention — substrate throughput, 1..=N threads, epoch vs packed backends",
        &["bench", "backend", "threads", "total ops", "ops/sec"],
    );
    for r in &results {
        table.push_row(vec![
            r.bench.clone(),
            r.backend.clone(),
            r.threads.to_string(),
            r.total_ops.to_string(),
            format!("{:.0}", r.ops_per_sec),
        ]);
    }
    table.emit();
    ts_bench::note(
        "expectations: packed >> epoch on every workload; epoch register reads must\n\
         scale (not collapse) with threads now that pin/defer are lock-free; scan >=\n\
         scan_unpadded under writers (padding + the summary short-circuit); collect_max\n\
         getTS rides the cached-max fast path (diff against an old baseline with\n\
         bench_compare).",
    );

    if let Some(path) = &cfg.out {
        let baseline = Baseline {
            schema: "ts-bench/bench_contention/v1".to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            smoke: cfg.smoke,
            results,
        };
        let json = serde_json::to_string(&baseline).expect("baseline serializes");
        std::fs::write(path, json + "\n").expect("write baseline file");
        ts_bench::note(format!("baseline written to {path}"));
    }
}
