//! E2 — long-lived vs one-shot space gap (Theorem 1.1 vs Theorem 1.3).
//!
//! For each `n`: the long-lived collect-max object (Θ(n) registers, all
//! written) against the one-shot Algorithm 4 (Θ(√n)), with the `n/6 − 1`
//! long-lived lower bound in between.
//!
//! Paper shape: long-lived usage is linear and must be — the lower bound
//! `n/6 − 1` forbids sublinear long-lived objects — while the one-shot
//! column grows only as √n. The crossover is immediate and the gap
//! widens with n.

use ts_bench::{run_bounded_oneshot, run_collect_max, Table};
use ts_lowerbound::bounds::{
    bounded_upper_bound, efr_longlived_upper_bound, longlived_lower_bound,
};

fn main() {
    let mut table = Table::new(
        "E2 — long-lived Θ(n) vs one-shot Θ(√n) (paper's headline gap)",
        &[
            "n",
            "long-lived LB n/6−1",
            "collect-max written (ours, n)",
            "EFR upper (cited, n−1)",
            "alg4 one-shot written",
            "alg4 alloc ⌈2√n⌉",
            "gap (longlived/oneshot)",
            "ordered ok",
        ],
    );
    for n in [8usize, 16, 32, 64, 128, 256, 512] {
        let ll = run_collect_max(n, 2);
        let (os, _) = run_bounded_oneshot(n);
        let gap = ll.written as f64 / os.allocated as f64;
        table.push_row(vec![
            n.to_string(),
            format!("{:.2}", longlived_lower_bound(n)),
            ll.written.to_string(),
            efr_longlived_upper_bound(n).to_string(),
            os.written.to_string(),
            bounded_upper_bound(n).to_string(),
            format!("{gap:.2}"),
            (ll.ordered_ok && os.ordered_ok).to_string(),
        ]);
    }
    table.emit();
}
