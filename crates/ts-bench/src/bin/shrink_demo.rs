//! Counterexample workflow demo: explore → shrink → trace.
//!
//! Finds a timestamp-property violation in a broken algorithm with the
//! exhaustive explorer, shrinks the schedule to 1-minimal, and renders
//! a readable trace — the tooling used to debug the Section 6.1
//! scenario, shown end-to-end on the toy counter (which is correct for
//! n ≤ 3 and breaks at n = 4).

use ts_model::toy::CounterAlgorithm;
use ts_model::{reproduces, shrink, trace, Explorer};

fn main() {
    let alg = CounterAlgorithm::new(4);
    println!("exploring the toy counter at n = 4 ...");
    let report = Explorer::new(alg.clone(), 1).run();
    println!(
        "states = {}, pruned = {}, executions = {}",
        report.states, report.pruned, report.executions
    );
    let violation = report
        .violation
        .expect("the n=4 counter is broken by design");
    println!(
        "raw counterexample: {} steps\n  {:?}",
        violation.schedule.len(),
        violation.schedule
    );

    let minimal = shrink(&alg, &violation.schedule);
    assert!(reproduces(&alg, &minimal));
    println!("shrunk to {} steps:\n  {:?}\n", minimal.len(), minimal);
    println!("trace of the minimal schedule:");
    print!("{}", trace::render(&alg, &minimal));
}
