//! E3 — Figure 1: the initial covering configuration.
//!
//! Runs the Section 4 construction's opening phase against the one-shot
//! model algorithms and prints the grid at the moment some column `j`
//! first reaches the stepped diagonal — i.e. `j` registers are each
//! covered by `m − j` processes, the configuration the paper's Figure 1
//! depicts.

use ts_core::model::{BoundedModel, SimpleModel};
use ts_lowerbound::oneshot::OneShotConstruction;

fn main() {
    for n in [16usize, 32, 64] {
        println!("=== Figure 1 against Algorithm 4's model, n = {n} ===");
        let report = OneShotConstruction::run(BoundedModel::new(n));
        let fig1 = &report.steps[0];
        println!("{}", fig1.label);
        println!("{}", fig1.grid);
        println!(
            "m = {}, j = {}, ordered signature = {:?}\n",
            report.grid_width,
            fig1.j,
            fig1.ordered.entries()
        );
    }
    println!("=== Figure 1 against the simple algorithm's model, n = 32 ===");
    let report = OneShotConstruction::run(SimpleModel::new(32));
    let fig1 = &report.steps[0];
    println!("{}", fig1.label);
    println!("{}", fig1.grid);
    println!(
        "note: the simple algorithm's registers take ≤ 2 writers, so its\n\
         columns plateau at height 2 and the diagonal is reached far right."
    );
}
