//! E4 — Figure 2: the inductive step of the one-shot construction.
//!
//! Prints consecutive grids of the construction's inductive rounds with
//! their Case 1 / Case 2 classification: Case 1 keeps the `ℓ` diagonal,
//! Case 2 (two block-writes, single new column) lowers it by one — the
//! paper bounds Case 2 occurrences by `log n`.

use ts_core::model::BoundedModel;
use ts_lowerbound::grid::{render_pair, Grid};
use ts_lowerbound::oneshot::OneShotConstruction;

fn main() {
    for n in [32usize, 64, 128] {
        println!("=== Figure 2 against Algorithm 4's model, n = {n} ===");
        let report = OneShotConstruction::run(BoundedModel::new(n));
        let inductive: Vec<_> = report.steps.iter().filter(|s| s.case.is_some()).collect();
        if inductive.is_empty() {
            println!("(no inductive steps — construction ended at Figure 1)\n");
            continue;
        }
        for pair in report.steps.windows(2) {
            let (before, after) = (&pair[0], &pair[1]);
            if after.case.is_none() {
                continue;
            }
            let left = Grid::new(before.ordered.clone(), before.l);
            let right = Grid::new(after.ordered.clone(), after.l);
            println!(
                "{}",
                render_pair(
                    &left,
                    &format!("before (l={}, j={})", before.l, before.j),
                    &right,
                    &format!(
                        "after: {:?} (l={}, j={})",
                        after.case.unwrap(),
                        after.l,
                        after.j
                    ),
                )
            );
        }
        println!(
            "case-2 count: {} (paper bound: log2 n = {:.1})\n",
            report.case2_count,
            (n as f64).log2()
        );
    }
}
