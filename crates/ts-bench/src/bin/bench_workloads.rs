//! `bench_workloads` — the workload scenario grid, with latency
//! histograms.
//!
//! Sweeps the `ts-workloads` engine over
//! (object × backend × scenario × thread-count): every timestamp
//! object (`simple_oneshot`, `bounded_oneshot`, `collect_max`,
//! `growable`) plus the `ts-apps` lock consumers (`fcfs_lock`,
//! `k_exclusion`), on both register backends where the object is
//! generic, under every scenario in the `ts-workloads` catalog
//! (closed loop, Zipf-skewed mixes, bursty open loop, thread churn).
//! `collect_max` additionally runs on the compact register layout
//! (backend label `packed_unpadded`), so every scenario doubles as a
//! padded-vs-unpadded A/B cell.
//!
//! The `ts-service` layer joins the grid as `sharded_s{S}_{mode}` cells
//! (`S ∈ {1,4,16}` shard domains × `{single, batch16, combining}`
//! issue modes) under the pure-issue scenarios (`closed_getts`,
//! `open_bursty`). Service rows carry extra columns from the unified
//! [`ServiceStats`] snapshot — `stamps_per_sec` (the per-stamp
//! throughput; batch cells issue 16 stamps per op so `ops/sec` alone
//! would hide the amortization), fast-hit ratio, batch/combine fill,
//! shard imbalance and lease waits; the columns are `null` on rows
//! whose target has no stats hook.
//!
//! The scan ladder joins under the `writer_storm` scenario as
//! `classic_scan` / `adaptive_scan` / `helping_scan` cells: slot 0
//! scans a 1024-register array while every other slot writes into
//! block 0, paced to scanner progress so the storm covers the whole
//! run — the grid measures exactly the O(n)-recollect vs
//! O(dirty)-recollect vs adopt-a-helped-view ladder at each thread
//! count. The contrast needs real parallelism: with 4+ hardware
//! threads the paced stores hold `classic_scan` in full-sweep retries
//! while the adaptive ladder keeps validating; on a timeshared
//! single-CPU host stores land between scanner quanta and the cells
//! converge (the CI ratio gate arms on `host_threads` accordingly).
//! Storm rows reuse the service columns for the ladder's own counters
//! (`helped_scans`, `dirty_recollects` feed the row's stats hook).
//!
//! The `ts-replica` layer joins under the closed-loop issue scenarios
//! as `replicated_f{0,1,2}` cells (collect-max over quorum-replicated
//! registers, fault-free) plus seeded faulty-network profiles
//! (`replicated_f1_lossy`, `replicated_f1_jitter`); their rows carry
//! `quorum_rounds_per_call` and `quorum_repair_ratio` from the
//! cluster's counters.
//!
//! Each cell reports throughput and log-bucketed latency percentiles
//! (p50/p90/p99/p999/max). Output: a markdown table normally, one JSON
//! object **per cell** under `TS_BENCH_JSON` (pure JSON lines, like
//! every table binary), and a machine-readable file written to
//! `BENCH_workloads.json` (override with `--out PATH`, `--out -`
//! skips) so the perf trajectory has per-scenario history.
//!
//! Besides the traffic-shape grid, the sweep runs the **replay**
//! scenario family: every `ts_workloads::replay` corpus case
//! (regenerated from the model checker at run time) is replayed
//! against its real object, with per-released-step latency reported in
//! the same row shape (`scenario = "replay_{case}"`, thread count =
//! trace processes).
//!
//! It also runs the **chaos** scenario family (`crash_minority`,
//! `crash_majority_heal`, `stalled_writer_scan`): fault campaigns
//! applied at deterministic op thresholds while the closed loop runs,
//! under a liveness watchdog. Those rows populate the robustness
//! columns — `quorum_timeouts` / `quorum_degraded` /
//! `quorum_unavailable`, the router's `net_*` injected-fault counters
//! (also filled on the faulty-network profile cells), and
//! `recovery_ms`, the wall time the run spent in restart resync sweeps
//! and heals.
//!
//! Flags: `--threads N` caps the thread ladder (default 4; the ladder
//! is 2,4,...,N), `--smoke` shrinks op counts ~20x for CI, `--out
//! PATH` relocates the results file.

use serde::Serialize;

use ts_apps::{FcfsLock, KExclusion};
use ts_bench::Table;
use ts_core::workload::WorkloadTarget;
use ts_core::{
    ArrayLayout, BoundedTimestamp, CollectMax, EpochBackend, GrowableWorkload, HelpingScanWorkload,
    OneShotPool, PackedBackend, ScanMode, ServiceStats, SimpleOneShot,
};
use ts_replica::{ClusterConfig, FaultPlan, ReplicatedCollectMax, ReplicatedTryRegisters};
use ts_service::{IssueMode, ServiceConfig};
use ts_snapshot::ScanPolicy;
use ts_workloads::replay::{case_target, corpus_cases, corpus_traces, replay_trace, ReplayReport};
use ts_workloads::{
    catalog, run_scenario, run_scenario_with, Arrival, Campaign, EngineOptions, FaultEvent,
    FaultSchedule, OpMix, RunConfig, Scenario, ScenarioReport, ServiceTarget, TimedFault,
};

/// One measured (object × backend × scenario × threads) cell.
#[derive(Debug, Clone, Serialize)]
struct WorkloadRow {
    object: String,
    backend: String,
    scenario: String,
    threads: usize,
    lives: u64,
    ops: u64,
    get_ts_ops: u64,
    scan_ops: u64,
    compare_ops: u64,
    elapsed_secs: f64,
    throughput_ops_per_sec: f64,
    mean_ns: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    // Service-layer columns, `null` for targets without `ServiceStats`.
    // `stamps_per_sec` is the per-stamp throughput: for batch cells one
    // GetTs op issues the whole batch, so `ops/sec` counts issue calls
    // while this column counts stamps — the figure comparable across
    // issue modes and with the single-issue paper objects.
    stamps_per_sec: Option<f64>,
    fast_hit_ratio: Option<f64>,
    avg_batch_fill: Option<f64>,
    avg_combine_fill: Option<f64>,
    shard_imbalance: Option<f64>,
    lease_waits: Option<u64>,
    // Replicated-backend columns, `null` unless the cell's registers
    // ran the quorum protocol: average quorum round trips per object
    // call and the fraction of rounds that were read-repair
    // write-backs.
    quorum_rounds_per_call: Option<f64>,
    quorum_repair_ratio: Option<f64>,
    // Robustness columns, `null` unless the cell ran the quorum
    // protocol: deterministic-deadline outcomes (timeouts, degraded
    // completions, exhausted ops) and the router's injected-fault
    // counters, so a faulty-network or chaos row shows *how much* fault
    // pressure produced its latency tail.
    quorum_timeouts: Option<u64>,
    quorum_degraded: Option<u64>,
    quorum_unavailable: Option<u64>,
    net_dropped: Option<u64>,
    net_duplicated: Option<u64>,
    net_delayed: Option<u64>,
    net_reordered: Option<u64>,
    // Campaign recovery cost (wall time spent in restart resync sweeps
    // and heals), `null` outside the chaos cell family.
    recovery_ms: Option<f64>,
}

impl WorkloadRow {
    /// A replay case as a grid row: ops are trace steps, latency is the
    /// controller's per-released-step gate latency, `threads` is the
    /// number of replayed trace processes, `lives` the completed ops.
    fn from_replay(scenario: String, processes: usize, r: &ReplayReport) -> Self {
        let steps = r.steps_replayed as u64;
        Self {
            object: r.object.to_string(),
            backend: r.backend.to_string(),
            scenario,
            threads: processes,
            lives: r.completed.len() as u64,
            ops: steps,
            get_ts_ops: r.completed.len() as u64,
            scan_ops: 0,
            compare_ops: 0,
            elapsed_secs: r.elapsed_secs,
            throughput_ops_per_sec: steps as f64 / r.elapsed_secs.max(f64::MIN_POSITIVE),
            mean_ns: r.step_latency.mean_ns(),
            p50_ns: r.step_latency.percentile(50.0),
            p90_ns: r.step_latency.percentile(90.0),
            p99_ns: r.step_latency.percentile(99.0),
            p999_ns: r.step_latency.percentile(99.9),
            max_ns: r.step_latency.max_ns(),
            stamps_per_sec: None,
            fast_hit_ratio: None,
            avg_batch_fill: None,
            avg_combine_fill: None,
            shard_imbalance: None,
            lease_waits: None,
            quorum_rounds_per_call: None,
            quorum_repair_ratio: None,
            quorum_timeouts: None,
            quorum_degraded: None,
            quorum_unavailable: None,
            net_dropped: None,
            net_duplicated: None,
            net_delayed: None,
            net_reordered: None,
            recovery_ms: None,
        }
    }

    fn from_report(r: &ScenarioReport, stats: Option<&ServiceStats>) -> Self {
        // Robustness counters only mean something on cells whose
        // registers ran the quorum protocol; elsewhere they stay null
        // rather than printing misleading zeros.
        let quorum = |f: fn(&ServiceStats) -> u64| -> Option<u64> {
            stats.and_then(|s| (s.quorum_rounds > 0).then(|| f(s)))
        };
        Self {
            object: r.object.to_string(),
            backend: r.backend.to_string(),
            scenario: r.scenario.to_string(),
            threads: r.threads,
            lives: r.lives,
            ops: r.counts.total(),
            get_ts_ops: r.counts.get_ts,
            scan_ops: r.counts.scan,
            compare_ops: r.counts.compare,
            elapsed_secs: r.elapsed_secs,
            throughput_ops_per_sec: r.throughput_ops_per_sec,
            mean_ns: r.latency.mean_ns(),
            p50_ns: r.latency.percentile(50.0),
            p90_ns: r.latency.percentile(90.0),
            p99_ns: r.latency.percentile(99.0),
            p999_ns: r.latency.percentile(99.9),
            max_ns: r.latency.max_ns(),
            stamps_per_sec: stats.and_then(|s| {
                (s.stamps > 0).then(|| s.stamps as f64 / r.elapsed_secs.max(f64::MIN_POSITIVE))
            }),
            fast_hit_ratio: stats.and_then(ServiceStats::fast_hit_ratio),
            avg_batch_fill: stats.and_then(ServiceStats::avg_batch_fill),
            avg_combine_fill: stats.and_then(ServiceStats::avg_combine_fill),
            shard_imbalance: stats.and_then(ServiceStats::shard_imbalance),
            lease_waits: stats.map(|s| s.lease_waits),
            quorum_rounds_per_call: stats.and_then(ServiceStats::rounds_per_call),
            quorum_repair_ratio: stats.and_then(ServiceStats::repair_ratio),
            quorum_timeouts: quorum(|s| s.quorum_timeouts),
            quorum_degraded: quorum(|s| s.quorum_degraded),
            quorum_unavailable: quorum(|s| s.quorum_unavailable),
            net_dropped: quorum(|s| s.net_dropped),
            net_duplicated: quorum(|s| s.net_duplicated),
            net_delayed: quorum(|s| s.net_delayed),
            net_reordered: quorum(|s| s.net_reordered),
            recovery_ms: None,
        }
    }
}

/// The file schema of `BENCH_workloads.json`.
#[derive(Debug, Serialize)]
struct WorkloadsFile {
    schema: String,
    host_threads: usize,
    smoke: bool,
    results: Vec<WorkloadRow>,
}

struct Config {
    max_threads: usize,
    smoke: bool,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        max_threads: 4,
        smoke: false,
        out: Some("BENCH_workloads.json".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads takes a value");
                cfg.max_threads = v.parse().expect("--threads takes a number");
                assert!(cfg.max_threads >= 2, "--threads must be >= 2");
            }
            "--smoke" => cfg.smoke = true,
            "--out" => {
                let v = args.next().expect("--out takes a path");
                cfg.out = if v == "-" { None } else { Some(v) };
            }
            other => panic!("unknown flag {other} (expected --threads N | --smoke | --out PATH)"),
        }
    }
    cfg
}

/// Thread ladder 2, 4, 8, ..., max (workload cells need ≥ 2 threads to
/// mean anything).
fn thread_ladder(max: usize) -> Vec<usize> {
    let mut ladder = vec![];
    let mut t = 2;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max);
    ladder
}

/// Builds every target for a given thread count. Objects generic over
/// the register backend appear twice; `bounded_oneshot` and `growable`
/// store unbounded sequences and exist only on the epoch backend.
fn targets(threads: usize, pool_size: usize) -> Vec<Box<dyn WorkloadTarget>> {
    vec![
        Box::new(
            OneShotPool::new(
                "simple_oneshot",
                "packed",
                threads,
                pool_size,
                Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(threads)),
            )
            .with_scan(Box::new(|o| {
                std::hint::black_box(o.observed_sum());
            })),
        ),
        Box::new(
            OneShotPool::new(
                "simple_oneshot",
                "epoch",
                threads,
                pool_size,
                Box::new(move || SimpleOneShot::<EpochBackend>::with_backend(threads)),
            )
            .with_scan(Box::new(|o| {
                std::hint::black_box(o.observed_sum());
            })),
        ),
        Box::new(OneShotPool::new(
            "bounded_oneshot",
            "epoch",
            threads,
            pool_size,
            Box::new(move || BoundedTimestamp::one_shot(threads)),
        )),
        Box::new(CollectMax::<PackedBackend>::with_backend(threads)),
        Box::new(CollectMax::<EpochBackend>::with_backend(threads)),
        // The same object on the compact (unpadded) register layout:
        // its cells report backend "packed_unpadded", making the
        // padded-vs-unpadded contention gap a first-class grid row.
        Box::new(CollectMax::<PackedBackend>::with_layout(
            threads,
            ArrayLayout::Compact,
        )),
        Box::new(GrowableWorkload::new()),
        Box::new(FcfsLock::<PackedBackend>::with_backend(threads)),
        Box::new(FcfsLock::<EpochBackend>::with_backend(threads)),
        Box::new(KExclusion::<PackedBackend>::with_backend(
            threads,
            threads / 2 + 1,
        )),
        Box::new(KExclusion::<EpochBackend>::with_backend(
            threads,
            threads / 2 + 1,
        )),
    ]
}

/// The service grid: `sharded{S}` × issue mode, all on the packed
/// backend. Labels are the report's object column; slot budget per
/// shard is derived from the thread count at run time
/// (`ceil(threads / shards)`, so total slots ≈ threads regardless of
/// `S` and the A/B compares sharding, not register count).
const SERVICE_CELLS: &[(usize, IssueMode, &str)] = &[
    (1, IssueMode::Single, "sharded_s1_single"),
    (1, IssueMode::Batch(16), "sharded_s1_batch16"),
    (1, IssueMode::Combining, "sharded_s1_combining"),
    (4, IssueMode::Single, "sharded_s4_single"),
    (4, IssueMode::Batch(16), "sharded_s4_batch16"),
    (4, IssueMode::Combining, "sharded_s4_combining"),
    (16, IssueMode::Single, "sharded_s16_single"),
    (16, IssueMode::Batch(16), "sharded_s16_batch16"),
    (16, IssueMode::Combining, "sharded_s16_combining"),
];

/// Service cells run only under the pure-issue scenarios: the service's
/// `Scan`/`Compare` semantics differ from the paper objects', so mixed
/// cells would not be like-for-like rows.
const SERVICE_SCENARIOS: &[&str] = &["closed_getts", "open_bursty"];

/// Replicated cells run only under the closed-loop issue scenarios:
/// every register access is a quorum protocol run (orders of magnitude
/// slower than an atomic load), so the open-loop and churn cells would
/// measure backpressure, not the replication cost being compared.
const REPLICATED_SCENARIOS: &[&str] = &["closed_getts", "closed_getts_heavy"];

/// The writer-storm scenario runs *only* the scan-ladder targets (and
/// they run only under it): slot 0 scans while every other slot writes
/// flat out, so the grid carries a like-for-like classic vs adaptive vs
/// helping comparison at each thread count without dragging the paper
/// objects through a scenario whose op mix they would reinterpret.
const STORM_SCENARIOS: &[&str] = &["writer_storm"];

/// The scan-ladder grid: one role-sliced storm target per scan mode,
/// `threads - 1` writers clustered in the low registers of a
/// 1024-register array (every store dirties block 0 — the worst case
/// for a retrying scanner, and the configuration where the dirty
/// bitmap's O(dirty) retries beat the classic full-sweep recollect).
fn storm_targets(threads: usize) -> Vec<Box<dyn WorkloadTarget>> {
    let policy = ScanPolicy {
        starvation_bound: 4,
    };
    [ScanMode::Classic, ScanMode::Adaptive, ScanMode::Helping]
        .into_iter()
        .map(|mode| {
            Box::new(HelpingScanWorkload::new(threads - 1, 1024, mode, policy))
                as Box<dyn WorkloadTarget>
        })
        .collect()
}

/// The replicated grid: `CollectMax` over quorum-replicated registers,
/// one cell per fault tolerance level (fault-free f ∈ {0, 1, 2} —
/// 1, 3, 5 replicas) plus two faulty-network profiles at f = 1
/// (seeded, so every run measures the same fault schedule). Rows carry
/// `quorum_rounds_per_call` / `quorum_repair_ratio` from the cluster's
/// counters.
fn replicated_targets(threads: usize) -> Vec<Box<dyn WorkloadTarget>> {
    let lossy = FaultPlan {
        seed: 0x5EED,
        drop_permille: 50,
        dup_permille: 20,
        delay_max: 3,
        ..FaultPlan::default()
    };
    let jitter = FaultPlan {
        seed: 0x5EED,
        delay_max: 8,
        reorder: true,
        ..FaultPlan::default()
    };
    vec![
        Box::new(ReplicatedCollectMax::new(threads, 0, "replicated_f0")),
        Box::new(ReplicatedCollectMax::new(threads, 1, "replicated_f1")),
        Box::new(ReplicatedCollectMax::new(threads, 2, "replicated_f2")),
        Box::new(ReplicatedCollectMax::with_plan(
            threads,
            1,
            "replicated_f1_lossy",
            lossy,
        )),
        Box::new(ReplicatedCollectMax::with_plan(
            threads,
            1,
            "replicated_f1_jitter",
            jitter,
        )),
    ]
}

fn service_targets(threads: usize) -> Vec<Box<dyn WorkloadTarget>> {
    SERVICE_CELLS
        .iter()
        .map(|&(shards, mode, label)| {
            let slots_per_shard = threads.div_ceil(shards).max(1);
            Box::new(ServiceTarget::new(
                label,
                ServiceConfig::new(shards, slots_per_shard),
                mode,
            )) as Box<dyn WorkloadTarget>
        })
        .collect()
}

/// The chaos cell family: one row per named fault campaign, run at the
/// top thread count. Each cell binds a hand-written [`FaultSchedule`]
/// (thresholds scaled to the run's total op count) to its cluster and
/// drives the closed loop through [`run_scenario_with`] under a
/// liveness watchdog — a hang under faults fails the bench with a
/// diagnosis instead of wedging CI.
///
/// | scenario | target | campaign | what the row shows |
/// |---|---|---|---|
/// | `crash_minority` | `replicated_f1` (infallible) | crash replica 2 at 25%, wipe-restart at 70% | throughput/tail degrade but never zero; no op exhausts its deadline |
/// | `crash_majority_heal` | `replicated_try_f1` (fallible, short deadline) | crash 2 of 3, then retain- and wipe-restart | ops fail fast (`quorum_unavailable`), bounded by the step deadline; service recovers after heal |
/// | `stalled_writer_scan` | `replicated_f1`, scan-heavy mix | stall slot 0 for a quarter of the run at 30% | scans ride through a stalled writer; stall shows in the tail, not in liveness |
fn chaos_cells(threads: usize, ops_per_thread: u64) -> Vec<WorkloadRow> {
    let total = threads as u64 * ops_per_thread;
    let run_cfg = RunConfig {
        threads,
        ops_per_thread,
        seed: 0x5EED,
    };
    let watchdog = Some(std::time::Duration::from_secs(30));
    let mut rows = Vec::new();

    // crash_minority: one replica of three crash-stops mid-run and
    // later rejoins from an empty disk (wipe + resync). The infallible
    // collect-max client rides through on the surviving quorum.
    {
        let target = ReplicatedCollectMax::new(threads, 1, "replicated_f1");
        let scenario = Scenario {
            name: "crash_minority",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::get_ts_only(),
            churn: None,
        };
        let schedule = FaultSchedule::new(vec![
            TimedFault {
                at_op: total / 4,
                event: FaultEvent::Crash { replica: 2 },
            },
            TimedFault {
                at_op: total * 7 / 10,
                event: FaultEvent::Restart {
                    replica: 2,
                    wipe: true,
                },
            },
        ]);
        let campaign = Campaign::new(std::sync::Arc::clone(target.cluster()), schedule, threads);
        let opts = EngineOptions {
            campaign: Some(std::sync::Arc::clone(&campaign)),
            watchdog,
        };
        let report = run_scenario_with(&target, &scenario, &run_cfg, &opts);
        let stats = target.service_stats().expect("replicated stats");
        assert!(campaign.fully_applied(), "crash_minority events all fired");
        assert_eq!(
            stats.quorum_unavailable, 0,
            "a minority crash must never exhaust a deadline"
        );
        assert!(
            target.cluster().resynced_registers() > 0,
            "the wiped replica resynced on rejoin"
        );
        let mut row = WorkloadRow::from_report(&report, Some(&stats));
        row.recovery_ms = Some(campaign.repair_time().as_secs_f64() * 1e3);
        rows.push(row);
    }

    // crash_majority_heal: two replicas of three go down, so for a
    // window no quorum exists. The fallible register client keeps
    // issuing; each outage op fails within its (shortened) step
    // deadline instead of hanging, and throughput recovers after the
    // restarts.
    {
        let target = ReplicatedTryRegisters::with_config(
            threads,
            ClusterConfig::new(1).with_deadline(2_048),
            "replicated_try_f1",
        );
        let scenario = Scenario {
            name: "crash_majority_heal",
            arrival: Arrival::ClosedLoop,
            mix: OpMix { weights: [4, 1, 0] },
            churn: None,
        };
        let schedule = FaultSchedule::new(vec![
            TimedFault {
                at_op: total * 3 / 10,
                event: FaultEvent::Crash { replica: 0 },
            },
            TimedFault {
                at_op: total * 45 / 100,
                event: FaultEvent::Crash { replica: 2 },
            },
            TimedFault {
                at_op: total * 65 / 100,
                event: FaultEvent::Restart {
                    replica: 0,
                    wipe: false,
                },
            },
            TimedFault {
                at_op: total * 3 / 4,
                event: FaultEvent::Restart {
                    replica: 2,
                    wipe: true,
                },
            },
        ]);
        let campaign = Campaign::new(std::sync::Arc::clone(target.cluster()), schedule, threads);
        let opts = EngineOptions {
            campaign: Some(std::sync::Arc::clone(&campaign)),
            watchdog,
        };
        let report = run_scenario_with(&target, &scenario, &run_cfg, &opts);
        let stats = target.service_stats().expect("replicated stats");
        assert!(
            campaign.fully_applied(),
            "crash_majority_heal events all fired"
        );
        assert!(
            stats.quorum_unavailable > 0,
            "the majority outage surfaced Unavailable"
        );
        assert!(
            target.cluster().resynced_registers() > 0,
            "the wiped replica resynced on rejoin"
        );
        let mut row = WorkloadRow::from_report(&report, Some(&stats));
        row.recovery_ms = Some(campaign.repair_time().as_secs_f64() * 1e3);
        rows.push(row);
    }

    // stalled_writer_scan: no replica faults — worker slot 0 parks at
    // an op boundary for a quarter of the run while the remaining
    // slots keep scanning. Measures that a stalled client costs tail
    // latency, never liveness.
    {
        let target = ReplicatedCollectMax::new(threads, 1, "replicated_f1");
        let scenario = Scenario {
            name: "stalled_writer_scan",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::zipf(
                [
                    ts_core::WorkloadOp::Scan,
                    ts_core::WorkloadOp::GetTs,
                    ts_core::WorkloadOp::Compare,
                ],
                1.2,
            ),
            churn: None,
        };
        let schedule = FaultSchedule::new(vec![TimedFault {
            at_op: total * 3 / 10,
            event: FaultEvent::Stall {
                slot: 0,
                for_ops: total / 4,
            },
        }]);
        let campaign = Campaign::new(std::sync::Arc::clone(target.cluster()), schedule, threads);
        let opts = EngineOptions {
            campaign: Some(std::sync::Arc::clone(&campaign)),
            watchdog,
        };
        let report = run_scenario_with(&target, &scenario, &run_cfg, &opts);
        let stats = target.service_stats().expect("replicated stats");
        assert!(
            campaign.fully_applied(),
            "stalled_writer_scan events all fired"
        );
        let mut row = WorkloadRow::from_report(&report, Some(&stats));
        row.recovery_ms = Some(campaign.repair_time().as_secs_f64() * 1e3);
        rows.push(row);
    }

    rows
}

fn main() {
    let cfg = parse_args();
    // Per-cell budgets; smoke cuts ~20x for CI.
    let ops_per_thread: u64 = if cfg.smoke { 200 } else { 4_000 };
    let open_rate_hz: u64 = if cfg.smoke { 20_000 } else { 40_000 };
    let ops_per_life: u64 = if cfg.smoke { 50 } else { 500 };
    let pool_size: usize = if cfg.smoke { 64 } else { 512 };
    let scenarios: Vec<Scenario> = catalog(open_rate_hz, ops_per_life);

    let mut rows: Vec<WorkloadRow> = Vec::new();
    for &threads in &thread_ladder(cfg.max_threads) {
        let run_cfg = RunConfig {
            threads,
            ops_per_thread,
            seed: 0x5EED,
        };
        for scenario in &scenarios {
            // Fresh targets per scenario so cells don't contaminate each
            // other (register contents, pool generations, vpids). The
            // storm scenario swaps the whole family for the scan-ladder
            // targets.
            let mut cell_targets = if STORM_SCENARIOS.contains(&scenario.name) {
                storm_targets(threads)
            } else {
                targets(threads, pool_size)
            };
            if SERVICE_SCENARIOS.contains(&scenario.name) {
                cell_targets.extend(service_targets(threads));
            }
            if REPLICATED_SCENARIOS.contains(&scenario.name) {
                cell_targets.extend(replicated_targets(threads));
            }
            for target in cell_targets {
                let report = run_scenario(target.as_ref(), scenario, &run_cfg);
                let row = WorkloadRow::from_report(&report, target.service_stats().as_ref());
                if ts_bench::json_mode() {
                    println!("{}", serde_json::to_string(&row).expect("rows serialize"));
                }
                rows.push(row);
            }
            // Keep epoch garbage from one cell out of the next cell's
            // latency tail.
            ts_register::reclaim::flush();
        }
    }

    // The replay scenario family: corpus counterexamples and
    // adversarial schedules driven against the real objects.
    let traces = corpus_traces();
    for case in corpus_cases() {
        let entry = traces
            .iter()
            .find(|e| e.name == case.trace_name)
            .expect("case names a corpus trace");
        let target = case_target(&case, &entry.trace);
        let report = replay_trace(target.as_ref(), &entry.trace);
        assert_eq!(
            report.violation.is_some(),
            case.expect_violation,
            "replay case {} diverged from its expectation",
            case.name
        );
        let row = WorkloadRow::from_replay(
            format!("replay_{}", case.name),
            entry.trace.processes,
            &report,
        );
        if ts_bench::json_mode() {
            println!("{}", serde_json::to_string(&row).expect("rows serialize"));
        }
        rows.push(row);
    }

    // The chaos scenario family: crash/stall campaigns applied at
    // deterministic op thresholds while the grid's closed loop runs,
    // at the top thread count only (the cells measure fault response,
    // not scaling). Rows carry the usual latency percentiles — the
    // tail under faults is the figure of merit — plus the robustness
    // columns and `recovery_ms` (wall time spent in restart resync
    // sweeps and heals).
    for row in chaos_cells(cfg.max_threads, if cfg.smoke { 200 } else { 2_000 }) {
        if ts_bench::json_mode() {
            println!("{}", serde_json::to_string(&row).expect("rows serialize"));
        }
        rows.push(row);
    }

    if !ts_bench::json_mode() {
        let mut table = Table::new(
            "bench_workloads — scenario grid: throughput + latency percentiles",
            &[
                "object",
                "backend",
                "scenario",
                "threads",
                "ops",
                "ops/sec",
                "stamps/sec",
                "p50 ns",
                "p99 ns",
                "p999 ns",
                "max ns",
            ],
        );
        for r in &rows {
            table.push_row(vec![
                r.object.clone(),
                r.backend.clone(),
                r.scenario.clone(),
                r.threads.to_string(),
                r.ops.to_string(),
                format!("{:.0}", r.throughput_ops_per_sec),
                r.stamps_per_sec
                    .map_or_else(|| "-".to_string(), |s| format!("{s:.0}")),
                r.p50_ns.to_string(),
                r.p99_ns.to_string(),
                r.p999_ns.to_string(),
                r.max_ns.to_string(),
            ]);
        }
        table.emit();
    }
    ts_bench::note(
        "expectations: packed beats epoch on closed-loop getTS; open-loop sojourn\n\
         p99 tracks burst size; churn cells match closed_getts within noise (the\n\
         orphan handoff is off the hot path); sharded/batched service cells beat\n\
         unsharded collect_max on stamps/sec (batch cells amortize one CAS over\n\
         16 stamps, so compare stamps/sec, not ops/sec).",
    );

    if let Some(path) = &cfg.out {
        let file = WorkloadsFile {
            schema: "ts-bench/bench_workloads/v1".to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            smoke: cfg.smoke,
            results: rows,
        };
        let json = serde_json::to_string(&file).expect("results serialize");
        std::fs::write(path, json + "\n").expect("write results file");
        ts_bench::note(format!("workload grid written to {path}"));
    }
}
