//! E1 — one-shot space table (Theorems 1.2/1.3 + Section 5).
//!
//! For each `n`: run the simple `⌈n/2⌉`-register object and Algorithm 4
//! (`⌈2√n⌉` registers) with `n` threads, and print registers allocated /
//! written against the `√(2n) − log n − 2` lower bound.
//!
//! Paper shape to reproduce: both algorithms are correct; the simple one
//! is linear in `n` while Algorithm 4 is Θ(√n); the lower bound stays
//! below Algorithm 4's usage; the √n advantage widens with `n`.

use ts_bench::{run_bounded_oneshot, run_simple_oneshot, Table};
use ts_lowerbound::bounds::{bounded_upper_bound, oneshot_lower_bound, simple_upper_bound};

fn main() {
    let mut table = Table::new(
        "E1 — one-shot space: registers vs n (paper: Θ(√n) suffices one-shot)",
        &[
            "n",
            "lower bound √(2n)−log n−2",
            "simple ⌈n/2⌉ (alloc)",
            "simple written",
            "alg4 ⌈2√n⌉ (alloc)",
            "alg4 written",
            "ordered ok",
        ],
    );
    for n in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let simple = run_simple_oneshot(n);
        let (bounded, stats) = run_bounded_oneshot(n);
        assert_eq!(simple.allocated, simple_upper_bound(n));
        assert_eq!(bounded.allocated, bounded_upper_bound(n).max(2));
        assert!(stats.space_bound_holds(), "n={n}: {stats:?}");
        table.push_row(vec![
            n.to_string(),
            format!("{:.2}", oneshot_lower_bound(n)),
            simple.allocated.to_string(),
            simple.written.to_string(),
            bounded.allocated.to_string(),
            bounded.written.to_string(),
            (simple.ordered_ok && bounded.ordered_ok).to_string(),
        ]);
    }
    table.emit();
    ts_bench::note(format!(
        "shape check: alg4 allocation / simple allocation at n=1024: {:.2}x smaller",
        simple_upper_bound(1024) as f64 / bounded_upper_bound(1024) as f64
    ));
}
