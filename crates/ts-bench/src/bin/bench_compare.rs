//! `bench_compare` — diff two bench-JSON files row by row.
//!
//! Both `bench_contention` (`BENCH_baseline.json`) and `bench_workloads`
//! (`BENCH_workloads.json`) write a `{schema, results: [...]}` file; this
//! binary joins two such files on their row keys and reports per-row
//! throughput ratios (and p99 deltas where the schema records latency),
//! so a perf change lands in review as a delta table instead of two blobs
//! of JSON.
//!
//! ```sh
//! cargo run --release -p ts-bench --bin bench_compare -- OLD.json NEW.json
//! cargo run ... -- BENCH_baseline.json new.json --threshold 0.5x
//! ```
//!
//! Row keys: `(bench, backend, threads)` for the contention schema,
//! `(object, backend, scenario, threads)` for the workloads schema. Rows
//! present in only one file are counted and skipped (a new bench family
//! is not a regression). The two files must carry the same schema.
//!
//! Output: a markdown table (one JSON line per row under
//! `TS_BENCH_JSON`) with old/new throughput, the `new/old` ratio, and —
//! for workloads files — old/new p99 ns, a `p999 delta` column (the
//! `new/old` extreme-tail ratio, where robustness changes show up
//! before p99 moves), plus a `stamps ratio` column for rows where both
//! files record the service layer's `stamps_per_sec` (both
//! informational; the gate stays on ops/sec). The
//! summary line counts improved (≥ 1.05x), unchanged, and regressed
//! (≤ 0.95x) rows.
//!
//! `--threshold R` (e.g. `0.5x` or `0.5`) turns the diff into a gate:
//! if any joined row's throughput ratio falls below `R`, the process
//! exits 1 listing the offenders. CI's `perf-smoke` job runs the smoke
//! grid against `BENCH_smoke.json` — the checked-in baseline recorded
//! with the same smoke configuration, so the join is like-for-like —
//! with `--threshold 0.5x`: a catastrophic regression (half the
//! recorded throughput, far outside smoke-run noise) fails the build
//! while ordinary jitter passes. The gate arms only when both files
//! record the same `host_threads` — absolute throughput is not
//! comparable across host parallelism classes (a single-CPU recording
//! timeshares its interfering threads; a multi-core run really
//! contends) — otherwise it reports the diff and exits 0, telling the
//! operator to regenerate the baseline on the gating host class.

use serde::Serialize;
use serde_json::Value;

use ts_bench::Table;

/// One joined row of the comparison.
#[derive(Debug, Clone, Serialize)]
struct CompareRow {
    key: String,
    old_ops_per_sec: f64,
    new_ops_per_sec: f64,
    ratio: f64,
    old_p99_ns: Option<u64>,
    new_p99_ns: Option<u64>,
    /// `new/old` p999 ratio, when both files record `p999_ns` for the
    /// row — the tail delta. Robustness changes (retry/backoff, fault
    /// campaigns) often move the extreme tail while p50/p99 sit still,
    /// so the tail gets its own column; informational, the gate stays
    /// on ops/sec (smoke-run p999 is one bucketed sample, too noisy to
    /// gate).
    p999_ratio: Option<f64>,
    /// `new/old` per-stamp throughput ratio, when both files record
    /// `stamps_per_sec` for the row (service-layer grid cells). Not
    /// part of the threshold gate — `ratio` (ops/sec) gates; this
    /// column shows whether batching amortization moved.
    stamps_ratio: Option<f64>,
}

struct Config {
    old_path: String,
    new_path: String,
    threshold: Option<f64>,
}

fn parse_threshold(raw: &str) -> f64 {
    let trimmed = raw.strip_suffix('x').unwrap_or(raw);
    let value: f64 = trimmed
        .parse()
        .unwrap_or_else(|_| panic!("--threshold takes a ratio like 0.5x, got {raw:?}"));
    assert!(value > 0.0, "--threshold must be positive");
    value
}

fn parse_args() -> Config {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().expect("--threshold takes a value");
                threshold = Some(parse_threshold(&v));
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other} (expected OLD.json NEW.json [--threshold R])")
            }
            other => positional.push(other.to_string()),
        }
    }
    assert_eq!(
        positional.len(),
        2,
        "usage: bench_compare OLD.json NEW.json [--threshold R]"
    );
    Config {
        old_path: positional.remove(0),
        new_path: positional.remove(0),
        threshold,
    }
}

/// A parsed bench file: schema tag plus keyed rows.
struct BenchFile {
    schema: String,
    /// Parallelism of the recording host (`host_threads`), when the
    /// file records it — the threshold gate only arms when both files
    /// were recorded at the same parallelism.
    host_threads: Option<u64>,
    /// key -> (throughput, p99_ns?, p999_ns?, stamps_per_sec?)
    rows: Vec<(String, f64, Option<u64>, Option<u64>, Option<f64>)>,
}

fn load(path: &str) -> BenchFile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench file {path:?}: {e}"));
    let value: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench file {path:?} is not valid JSON: {e:?}"));
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("bench file {path:?} has no schema tag"))
        .to_string();
    let host_threads = value.get("host_threads").and_then(Value::as_u64);
    let results = value
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("bench file {path:?} has no results array"));
    let rows = results
        .iter()
        .map(|row| {
            let (key, throughput_field) = if row.get("scenario").is_some() {
                // bench_workloads schema.
                (
                    format!(
                        "{}/{}/{}/t{}",
                        field_str(row, "object", path),
                        field_str(row, "backend", path),
                        field_str(row, "scenario", path),
                        field_u64(row, "threads", path),
                    ),
                    "throughput_ops_per_sec",
                )
            } else {
                // bench_contention schema.
                (
                    format!(
                        "{}/{}/t{}",
                        field_str(row, "bench", path),
                        field_str(row, "backend", path),
                        field_u64(row, "threads", path),
                    ),
                    "ops_per_sec",
                )
            };
            let throughput = row
                .get(throughput_field)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("row {key} in {path:?} lacks {throughput_field}"));
            let p99 = row.get("p99_ns").and_then(Value::as_u64);
            let p999 = row.get("p999_ns").and_then(Value::as_u64);
            let stamps = row.get("stamps_per_sec").and_then(Value::as_f64);
            (key, throughput, p99, p999, stamps)
        })
        .collect();
    BenchFile {
        schema,
        host_threads,
        rows,
    }
}

fn field_str(row: &Value, name: &str, path: &str) -> String {
    row.get(name)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("row in {path:?} lacks string field {name:?}"))
        .to_string()
}

fn field_u64(row: &Value, name: &str, path: &str) -> u64 {
    row.get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("row in {path:?} lacks integer field {name:?}"))
}

fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn main() {
    let cfg = parse_args();
    let old = load(&cfg.old_path);
    let new = load(&cfg.new_path);
    assert_eq!(
        old.schema, new.schema,
        "schema mismatch: {} vs {} — compare like with like",
        old.schema, new.schema
    );

    type OldRow = (f64, Option<u64>, Option<u64>, Option<f64>);
    let old_keyed: std::collections::HashMap<&str, OldRow> = old
        .rows
        .iter()
        .map(|(k, t, p, p3, s)| (k.as_str(), (*t, *p, *p3, *s)))
        .collect();
    let mut joined: Vec<CompareRow> = Vec::new();
    let mut only_new = 0usize;
    for (key, new_tp, new_p99, new_p999, new_stamps) in &new.rows {
        match old_keyed.get(key.as_str()) {
            Some(&(old_tp, old_p99, old_p999, old_stamps)) => joined.push(CompareRow {
                key: key.clone(),
                old_ops_per_sec: old_tp,
                new_ops_per_sec: *new_tp,
                ratio: new_tp / old_tp.max(f64::MIN_POSITIVE),
                old_p99_ns: old_p99,
                new_p99_ns: *new_p99,
                p999_ratio: old_p999
                    .zip(*new_p999)
                    .map(|(o, n)| n as f64 / (o as f64).max(f64::MIN_POSITIVE)),
                stamps_ratio: old_stamps
                    .zip(*new_stamps)
                    .map(|(o, n)| n / o.max(f64::MIN_POSITIVE)),
            }),
            None => only_new += 1,
        }
    }
    let only_old = old.rows.len() - joined.len();

    let mut table = Table::new(
        format!(
            "bench_compare — {} -> {} ({})",
            cfg.old_path, cfg.new_path, new.schema
        ),
        &[
            "row",
            "old ops/s",
            "new ops/s",
            "ratio",
            "stamps ratio",
            "old p99",
            "new p99",
            "p999 delta",
        ],
    );
    for row in &joined {
        table.push_row(vec![
            row.key.clone(),
            fmt_ops(row.old_ops_per_sec),
            fmt_ops(row.new_ops_per_sec),
            format!("{:.2}x", row.ratio),
            row.stamps_ratio.map_or("-".into(), |r| format!("{r:.2}x")),
            row.old_p99_ns.map_or("-".into(), |p| format!("{p}ns")),
            row.new_p99_ns.map_or("-".into(), |p| format!("{p}ns")),
            row.p999_ratio.map_or("-".into(), |r| format!("{r:.2}x")),
        ]);
    }
    if ts_bench::json_mode() {
        for row in &joined {
            println!("{}", serde_json::to_string(row).expect("rows serialize"));
        }
    } else {
        table.emit();
    }

    let improved = joined.iter().filter(|r| r.ratio >= 1.05).count();
    let regressed = joined.iter().filter(|r| r.ratio <= 0.95).count();
    let unchanged = joined.len() - improved - regressed;
    ts_bench::note(format!(
        "{} rows joined ({improved} improved >=1.05x, {unchanged} unchanged, {regressed} \
         regressed <=0.95x); {only_old} only in old, {only_new} only in new",
        joined.len()
    ));

    if let Some(threshold) = cfg.threshold {
        // Absolute throughput is only comparable between runs recorded
        // at the same host parallelism: a single-CPU recording (where
        // interfering threads timeshare) and a multi-core run (where
        // they really contend) differ by integer factors with no code
        // change. When the files disagree, report but do not fail.
        if old.host_threads != new.host_threads {
            eprintln!(
                "bench_compare: threshold gate DISARMED: host_threads differ ({:?} vs {:?}) — \
                 regenerate the baseline on this host class to arm it",
                old.host_threads, new.host_threads
            );
            return;
        }
        let offenders: Vec<&CompareRow> = joined.iter().filter(|r| r.ratio < threshold).collect();
        if !offenders.is_empty() {
            eprintln!(
                "bench_compare: {} row(s) below the {threshold}x threshold:",
                offenders.len()
            );
            for row in &offenders {
                eprintln!(
                    "  {}: {} -> {} ({:.2}x)",
                    row.key,
                    fmt_ops(row.old_ops_per_sec),
                    fmt_ops(row.new_ops_per_sec),
                    row.ratio
                );
            }
            std::process::exit(1);
        }
        ts_bench::note(format!(
            "all {} joined rows at or above the {threshold}x threshold",
            joined.len()
        ));
    }
}
