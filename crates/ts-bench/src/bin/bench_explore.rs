//! `bench_explore` — model-checker throughput baseline.
//!
//! Runs the `ts-model` explorer over every model twin in three modes
//! and records the explored-state counts, so the DPOR reduction is a
//! measured number, not an anecdote:
//!
//! - **full** — plain enumeration with the exact state cache (the
//!   pre-DPOR explorer);
//! - **dpor** — persistent + sleep sets with the fingerprint cache (the
//!   default);
//! - **parallel** — the same reduction in partitioned mode on two
//!   worker threads (structure check: its verdicts must match; its
//!   counts are per-item and therefore not comparable to the
//!   single-tree modes).
//!
//! Output: a markdown table (JSON lines under `TS_BENCH_JSON`), plus a
//! machine-readable baseline written to `BENCH_explore.json` (override
//! with `--out PATH`, `--out -` to skip). The CI `model-check` job
//! regenerates the baseline with `--smoke` and gates on two invariants:
//! at least one model keeps a ≥ 5x full-vs-DPOR explored-state
//! reduction, and per-model DPOR state counts do not regress versus the
//! checked-in baseline (the counts are deterministic, so any drift is a
//! real change to the search, not noise).
//!
//! Flags: `--smoke` drops the largest (slowest) configurations so the
//! CI job stays in budget; `--threads N` sets the parallel mode's
//! worker count (default 2); `--out PATH` relocates the baseline file.

use std::time::Instant;

use serde::Serialize;

use ts_bench::Table;
use ts_core::model::{BrokenCounterModel, CollectMaxFastModel, CollectMaxModel, SimpleModel};
use ts_model::toy::CounterAlgorithm;
use ts_model::{Algorithm, CacheMode, Explorer, Machine};

/// One (model, mode) exploration measurement.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    model: String,
    mode: String,
    states: u64,
    transitions: u64,
    executions: u64,
    pruned: u64,
    sleep_skipped: u64,
    violation: bool,
    wall_ms: f64,
}

/// The file schema of `BENCH_explore.json`.
#[derive(Debug, Serialize)]
struct Baseline {
    schema: String,
    smoke: bool,
    results: Vec<BenchRow>,
}

struct Config {
    smoke: bool,
    threads: usize,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        threads: 2,
        out: Some("BENCH_explore.json".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--threads" => {
                let v = args.next().expect("--threads takes a value");
                cfg.threads = v.parse().expect("--threads takes a number");
                assert!(cfg.threads >= 1, "--threads must be >= 1");
            }
            "--out" => {
                let v = args.next().expect("--out takes a path");
                cfg.out = if v == "-" { None } else { Some(v) };
            }
            other => panic!("unknown flag {other} (expected --smoke | --threads N | --out PATH)"),
        }
    }
    cfg
}

fn measure<A>(results: &mut Vec<BenchRow>, model: &str, algorithm: A, ops: usize, threads: usize)
where
    A: Algorithm + Clone + Send + Sync,
    A::Machine: Send + Sync,
    <A::Machine as Machine>::Value: Send + Sync,
    <A::Machine as Machine>::Output: Send + Sync,
{
    let mut run = |mode: &str, explorer: Explorer<A>| {
        let start = Instant::now();
        let report = explorer.run();
        results.push(BenchRow {
            model: model.to_string(),
            mode: mode.to_string(),
            states: report.states,
            transitions: report.transitions,
            executions: report.executions,
            pruned: report.pruned,
            sleep_skipped: report.sleep_skipped,
            violation: report.violation.is_some(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
    };
    run(
        "full",
        Explorer::new(algorithm.clone(), ops)
            .with_reduction(false)
            .with_cache(CacheMode::Exact),
    );
    run("dpor", Explorer::new(algorithm.clone(), ops));
    run(
        "parallel",
        Explorer::new(algorithm, ops).with_threads(threads),
    );
}

fn main() {
    let cfg = parse_args();
    let mut results: Vec<BenchRow> = Vec::new();

    measure(
        &mut results,
        "counter_n4",
        CounterAlgorithm::new(4),
        1,
        cfg.threads,
    );
    measure(
        &mut results,
        "broken_counter_n4",
        BrokenCounterModel::new(4),
        1,
        cfg.threads,
    );
    measure(
        &mut results,
        "simple_n4",
        SimpleModel::new(4),
        1,
        cfg.threads,
    );
    measure(
        &mut results,
        "collect_max_n3",
        CollectMaxModel::new(3),
        1,
        cfg.threads,
    );
    measure(
        &mut results,
        "collect_max_n2x2",
        CollectMaxModel::new(2),
        2,
        cfg.threads,
    );
    measure(
        &mut results,
        "collect_max_fast_n3",
        CollectMaxFastModel::new(3),
        1,
        cfg.threads,
    );
    if !cfg.smoke {
        measure(
            &mut results,
            "collect_max_fast_n2x2",
            CollectMaxFastModel::new(2),
            2,
            cfg.threads,
        );
    }

    let mut table = Table::new(
        "bench_explore — explorer state counts: full enumeration vs DPOR vs partitioned",
        &[
            "model",
            "mode",
            "states",
            "transitions",
            "executions",
            "pruned",
            "sleep skipped",
            "violation",
            "wall ms",
        ],
    );
    for r in &results {
        table.push_row(vec![
            r.model.clone(),
            r.mode.clone(),
            r.states.to_string(),
            r.transitions.to_string(),
            r.executions.to_string(),
            r.pruned.to_string(),
            r.sleep_skipped.to_string(),
            r.violation.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    table.emit();
    ts_bench::note(
        "expectations: dpor states <= full states on every model, >= 5x fewer on at\n\
         least one; verdicts identical across all three modes per model; counts are\n\
         deterministic (diff against the checked-in BENCH_explore.json is exact).",
    );

    if let Some(path) = &cfg.out {
        let baseline = Baseline {
            schema: "ts-bench/bench_explore/v1".to_string(),
            smoke: cfg.smoke,
            results,
        };
        let json = serde_json::to_string(&baseline).expect("baseline serializes");
        std::fs::write(path, json + "\n").expect("write baseline file");
        ts_bench::note(format!("baseline written to {path}"));
    }
}
