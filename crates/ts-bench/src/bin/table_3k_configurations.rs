//! E6 — (3,k)-configurations (Lemma 3.2 / Theorem 1.1).
//!
//! Runs the long-lived covering construction against the collect-max
//! model: for each `n`, report the `k` reached (target `⌊n/2⌋`), the
//! registers covered, and the `⌊n/6⌋` bound they certify.

use ts_bench::Table;
use ts_core::model::{BoundedModel, CollectMaxModel};
use ts_lowerbound::longlived::{signature_recurrence, LongLivedConstruction};

fn main() {
    let mut table = Table::new(
        "E6 — (3,k)-configurations forced on the long-lived baseline",
        &[
            "n",
            "target k = ⌊n/2⌋",
            "reached k",
            "registers covered",
            "certified bound ⌊n/6⌋",
            "covered ≥ bound",
        ],
    );
    for n in [6usize, 12, 24, 48, 96, 192] {
        let report = LongLivedConstruction::run(CollectMaxModel::new(n));
        table.push_row(vec![
            n.to_string(),
            (n / 2).to_string(),
            report.reached_k.to_string(),
            report.covered.to_string(),
            report.lower_bound.to_string(),
            (report.covered >= report.lower_bound).to_string(),
        ]);
    }
    table.emit();

    // The same insertion loop against Algorithm 4's MWMR registers: the
    // ≤3 cap genuinely binds (collect-max registers are single-writer).
    let mut mwmr = Table::new(
        "E6b — (3,k) insertions against Algorithm 4 (MWMR registers)",
        &[
            "n",
            "reached k",
            "registers covered",
            "max per-register cover",
        ],
    );
    for n in [8usize, 16, 32, 64] {
        let report = LongLivedConstruction::run_any(BoundedModel::new(n));
        let max_cover = report
            .insertions
            .last()
            .map(|i| i.signature.iter().copied().max().unwrap_or(0))
            .unwrap_or(0);
        mwmr.push_row(vec![
            n.to_string(),
            report.reached_k.to_string(),
            report.covered.to_string(),
            max_cover.to_string(),
        ]);
    }
    mwmr.emit();

    // Lemma 3.1's pigeonhole: signatures recur along long executions.
    let (first, second, sig) = signature_recurrence(CollectMaxModel::new(6), 3, 16);
    ts_bench::note(format!(
        "Lemma 3.1 recurrence demo: covering cycles {first} and {second} share signature {sig:?}"
    ));
}
