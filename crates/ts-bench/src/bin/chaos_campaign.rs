//! `chaos_campaign` — the crash-stop chaos acceptance harness.
//!
//! Runs the robustness acceptance properties as one reproducible
//! campaign grid and records the evidence in `CAMPAIGN_chaos.json`:
//!
//! | cell | target | campaign | acceptance property |
//! |---|---|---|---|
//! | `random_minority` | `replicated_f1` (infallible) | [`FaultSchedule::random`] — seeded, availability-preserving | with at most `f` replicas down, throughput stays nonzero and **no** op exhausts its deadline |
//! | `majority_outage` | `replicated_try_f1` (fallible, short deadline) | hand-written: crash 2 of 3, then heal | ops through the outage return `Unavailable` **within the step deadline** (probed directly), never hang; service recovers after heal |
//! | `heal_resync` | `replicated_f1` | crash one replica, wipe-restart it | the rejoin resync rebuilds the wiped replica and the armed per-replica monotonic-stamp assert stays quiet — no timestamp regression across recovery |
//! | `determinism` | `replicated_f1`, single-threaded | the same seeded random schedule, twice | both runs apply every event at the **same op count** and finish with identical op/round counters |
//!
//! Every cell runs under the engine's liveness watchdog, so a hang is
//! a diagnosed failure, not a wedged process. Cells assert their
//! property in-process — a violated property fails the binary — and
//! the JSON file carries the measured numbers for review.
//!
//! Flags: `--threads N` (default 4), `--seed S` (default `0x5EED`),
//! `--smoke` shrinks op budgets ~10x for CI, `--out PATH` relocates
//! the results file (`-` skips).

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use ts_bench::Table;
use ts_core::workload::WorkloadTarget;
use ts_replica::{ClusterConfig, ReplicatedCollectMax, ReplicatedTryRegisters};
use ts_workloads::{
    run_scenario_with, Arrival, Campaign, CampaignShape, EngineOptions, FaultEvent, FaultSchedule,
    OpMix, RunConfig, Scenario, ScenarioReport, TimedFault,
};

/// One campaign cell's recorded evidence.
#[derive(Debug, Clone, Serialize)]
struct ChaosCell {
    name: &'static str,
    object: String,
    threads: usize,
    ops: u64,
    throughput_ops_per_sec: f64,
    p999_ns: u64,
    quorum_timeouts: u64,
    quorum_degraded: u64,
    quorum_unavailable: u64,
    resynced_registers: u64,
    wipes: u64,
    /// Wall time spent in restart resync sweeps and heals.
    recovery_ms: f64,
    events_applied: usize,
    /// Majority-outage cell only: client-local steps one doomed op
    /// burned before returning `Unavailable` (must be <= the deadline).
    outage_probe_steps: Option<u64>,
    /// Determinism cell only: both seeded runs matched event-for-event.
    deterministic: Option<bool>,
}

/// The file schema of `CAMPAIGN_chaos.json`.
#[derive(Debug, Serialize)]
struct CampaignFile {
    schema: String,
    seed: u64,
    smoke: bool,
    host_threads: usize,
    cells: Vec<ChaosCell>,
}

struct Config {
    threads: usize,
    seed: u64,
    smoke: bool,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        threads: 4,
        seed: 0x5EED,
        smoke: false,
        out: Some("CAMPAIGN_chaos.json".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads takes a value");
                cfg.threads = v.parse().expect("--threads takes a number");
                assert!(cfg.threads >= 2, "--threads must be >= 2");
            }
            "--seed" => {
                let v = args.next().expect("--seed takes a value");
                cfg.seed = v.parse().expect("--seed takes a number");
            }
            "--smoke" => cfg.smoke = true,
            "--out" => {
                let v = args.next().expect("--out takes a path");
                cfg.out = if v == "-" { None } else { Some(v) };
            }
            other => panic!(
                "unknown flag {other} (expected --threads N | --seed S | --smoke | --out PATH)"
            ),
        }
    }
    cfg
}

fn closed_getts(name: &'static str) -> Scenario {
    Scenario {
        name,
        arrival: Arrival::ClosedLoop,
        mix: OpMix::get_ts_only(),
        churn: None,
    }
}

fn run(
    target: &dyn WorkloadTarget,
    scenario: &Scenario,
    run_cfg: &RunConfig,
    campaign: &Arc<Campaign>,
) -> ScenarioReport {
    let opts = EngineOptions {
        campaign: Some(Arc::clone(campaign)),
        watchdog: Some(Duration::from_secs(30)),
    };
    run_scenario_with(target, scenario, run_cfg, &opts)
}

fn cell(
    name: &'static str,
    report: &ScenarioReport,
    campaign: &Campaign,
    stats: &ts_core::ServiceStats,
) -> ChaosCell {
    let cluster = campaign.cluster();
    let wipes = (0..cluster.replicas())
        .map(|i| cluster.replica(i).wipes())
        .sum();
    ChaosCell {
        name,
        object: report.object.to_string(),
        threads: report.threads,
        ops: report.counts.total(),
        throughput_ops_per_sec: report.throughput_ops_per_sec,
        p999_ns: report.latency.percentile(99.9),
        quorum_timeouts: stats.quorum_timeouts,
        quorum_degraded: stats.quorum_degraded,
        quorum_unavailable: stats.quorum_unavailable,
        resynced_registers: cluster.resynced_registers(),
        wipes,
        recovery_ms: campaign.repair_time().as_secs_f64() * 1e3,
        events_applied: campaign.applied().len(),
        outage_probe_steps: None,
        deterministic: None,
    }
}

fn main() {
    let cfg = parse_args();
    let ops_per_thread: u64 = if cfg.smoke { 200 } else { 2_000 };
    let total = cfg.threads as u64 * ops_per_thread;
    let run_cfg = RunConfig {
        threads: cfg.threads,
        ops_per_thread,
        seed: cfg.seed,
    };
    let mut cells: Vec<ChaosCell> = Vec::new();

    // random_minority: a seeded availability-preserving campaign —
    // crashes, partitions, stalls, never more than f replicas
    // unreachable — against the infallible replicated collect-max.
    {
        let target = ReplicatedCollectMax::new(cfg.threads, 1, "replicated_f1");
        let schedule = FaultSchedule::random(
            cfg.seed,
            &CampaignShape {
                f: 1,
                threads: cfg.threads,
                total_ops: total,
                events: 8,
            },
        );
        let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, cfg.threads);
        let report = run(
            &target,
            &closed_getts("random_minority"),
            &run_cfg,
            &campaign,
        );
        let stats = target.service_stats().expect("replicated stats");
        assert_eq!(
            report.counts.total(),
            total,
            "every op completed through the campaign"
        );
        assert!(report.throughput_ops_per_sec > 0.0);
        assert_eq!(
            stats.quorum_unavailable, 0,
            "an availability-preserving campaign must never exhaust a deadline"
        );
        cells.push(cell("random_minority", &report, &campaign, &stats));
    }

    // majority_outage: 2 of 3 replicas crash mid-run; the fallible
    // client keeps completing ops as counted, deadline-bounded
    // failures. A direct probe during a fresh outage measures the
    // bound exactly.
    {
        let deadline = 2_048;
        let target = ReplicatedTryRegisters::with_config(
            cfg.threads,
            ClusterConfig::new(1).with_deadline(deadline),
            "replicated_try_f1",
        );
        let schedule = FaultSchedule::new(vec![
            TimedFault {
                at_op: total * 3 / 10,
                event: FaultEvent::Crash { replica: 0 },
            },
            TimedFault {
                at_op: total * 45 / 100,
                event: FaultEvent::Crash { replica: 2 },
            },
            TimedFault {
                at_op: total * 65 / 100,
                event: FaultEvent::Restart {
                    replica: 0,
                    wipe: false,
                },
            },
            TimedFault {
                at_op: total * 3 / 4,
                event: FaultEvent::Restart {
                    replica: 2,
                    wipe: true,
                },
            },
        ]);
        let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, cfg.threads);
        let report = run(
            &target,
            &closed_getts("majority_outage"),
            &run_cfg,
            &campaign,
        );
        let stats = target.service_stats().expect("replicated stats");
        assert_eq!(
            report.counts.total(),
            total,
            "outage ops complete (as failures), they never hang"
        );
        assert!(
            stats.quorum_unavailable > 0,
            "the majority outage surfaced Unavailable"
        );
        assert!(
            target.cluster().resynced_registers() > 0,
            "the wiped replica resynced on rejoin"
        );
        // Probe the deadline bound directly on a fresh outage.
        let cluster = target.cluster();
        cluster.crash(0);
        cluster.crash(2);
        let err = cluster
            .try_abd_write(0, u64::MAX)
            .expect_err("no quorum exists");
        // The deadline check runs between retry rounds, so the op may
        // finish the round in flight before giving up — the bound is
        // the deadline plus one round of per-replica probes.
        assert!(
            err.steps <= err.deadline + cluster.replicas() as u64,
            "Unavailable returned within the step deadline: {err:?}"
        );
        cluster.restart(0, ts_replica::RestartMode::Retain);
        cluster.restart(2, ts_replica::RestartMode::Retain);
        let mut c = cell("majority_outage", &report, &campaign, &stats);
        c.outage_probe_steps = Some(err.steps);
        cells.push(c);
    }

    // heal_resync: one replica crash-stops and rejoins from an empty
    // disk. The resync sweep rebuilds it from the live majority; the
    // per-replica monotonic-stamp assert is armed across the restart,
    // so a stamp regression would panic the run.
    {
        let target = ReplicatedCollectMax::new(cfg.threads, 1, "replicated_f1");
        let schedule = FaultSchedule::new(vec![
            TimedFault {
                at_op: total * 3 / 10,
                event: FaultEvent::Crash { replica: 1 },
            },
            TimedFault {
                at_op: total * 7 / 10,
                event: FaultEvent::Restart {
                    replica: 1,
                    wipe: true,
                },
            },
        ]);
        let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, cfg.threads);
        let report = run(&target, &closed_getts("heal_resync"), &run_cfg, &campaign);
        let stats = target.service_stats().expect("replicated stats");
        assert!(campaign.fully_applied(), "crash and wipe-restart fired");
        assert!(
            target.cluster().resynced_registers() > 0,
            "resync rebuilt the wiped replica"
        );
        assert_eq!(target.cluster().replica(1).wipes(), 1);
        assert_eq!(stats.quorum_unavailable, 0, "minority loss stays available");
        cells.push(cell("heal_resync", &report, &campaign, &stats));
    }

    // determinism: the same seeded random campaign twice,
    // single-threaded so op-threshold crossings are exact. Both runs
    // must apply every event at the same op count and end with the
    // same counters — chaos results are replayable evidence, not
    // flaky observations.
    {
        let single = RunConfig {
            threads: 1,
            ops_per_thread: total.min(1_000),
            seed: cfg.seed,
        };
        let shape = CampaignShape {
            f: 1,
            threads: 1,
            total_ops: single.ops_per_thread,
            events: 6,
        };
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let target = ReplicatedCollectMax::new(1, 1, "replicated_f1");
            let schedule = FaultSchedule::random(cfg.seed, &shape);
            let campaign = Campaign::new(Arc::clone(target.cluster()), schedule, 1);
            let report = run(&target, &closed_getts("determinism"), &single, &campaign);
            let applied: Vec<(usize, u64)> = campaign
                .applied()
                .iter()
                .map(|a| (a.index, a.at_op))
                .collect();
            outcomes.push((
                applied,
                report.counts.total(),
                target.cluster().quorum_rounds(),
                report,
                campaign,
                target,
            ));
        }
        let (a, b) = (&outcomes[0], &outcomes[1]);
        assert_eq!(a.0, b.0, "applied logs diverged between identical runs");
        assert_eq!(a.1, b.1, "op counts diverged");
        assert_eq!(a.2, b.2, "quorum round counts diverged");
        let stats = a.5.service_stats().expect("replicated stats");
        let mut c = cell("determinism", &a.3, &a.4, &stats);
        c.deterministic = Some(true);
        cells.push(c);
    }

    let mut table = Table::new(
        "chaos_campaign — crash-stop fault campaigns: acceptance evidence",
        &[
            "cell",
            "object",
            "threads",
            "ops",
            "ops/sec",
            "p999 ns",
            "unavail",
            "timeouts",
            "resynced",
            "recovery ms",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.name.to_string(),
            c.object.clone(),
            c.threads.to_string(),
            c.ops.to_string(),
            format!("{:.0}", c.throughput_ops_per_sec),
            c.p999_ns.to_string(),
            c.quorum_unavailable.to_string(),
            c.quorum_timeouts.to_string(),
            c.resynced_registers.to_string(),
            format!("{:.3}", c.recovery_ms),
        ]);
    }
    if ts_bench::json_mode() {
        for c in &cells {
            println!("{}", serde_json::to_string(c).expect("cells serialize"));
        }
    } else {
        table.emit();
    }
    ts_bench::note(
        "acceptance: minority campaigns keep throughput nonzero with zero Unavailable;\n\
         the majority outage fails ops within the step deadline and recovers after heal;\n\
         wipe-restarts resync before serving (armed monotonic asserts stay quiet); the\n\
         same seed replays the same campaign event-for-event.",
    );

    if let Some(path) = &cfg.out {
        let file = CampaignFile {
            schema: "ts-bench/chaos_campaign/v1".to_string(),
            seed: cfg.seed,
            smoke: cfg.smoke,
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cells,
        };
        let json = serde_json::to_string(&file).expect("cells serialize");
        std::fs::write(path, json + "\n").expect("write results file");
        ts_bench::note(format!("campaign evidence written to {path}"));
    }
}
