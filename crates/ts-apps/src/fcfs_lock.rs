//! Bakery-style FCFS mutual exclusion over a long-lived timestamp
//! object.
//!
//! Lamport's bakery algorithm (CACM 1974) is the original consumer of
//! timestamps: the *doorway* takes a ticket; the waiting loop admits
//! processes in ticket order. Here the ticket source is the crate's
//! long-lived [`CollectMax`] object, demonstrating the paper's
//! motivation directly: FCFS fairness requires that a process whose
//! doorway finished before another's began gets the smaller ticket —
//! exactly the timestamp property.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ts_core::{CachePadded, CollectMax, LongLivedTimestamp, PackedBackend, RegisterBackend};

/// One process's announcement slot, cache-line padded: `choosing` and
/// `active` for the *same* process are always touched together (one
/// writer, n−1 spinning readers), while neighbouring processes' slots
/// must not share a line — the bakery waiting loop spins on every other
/// process's slot, which unpadded turns each doorway store into an
/// all-readers invalidation.
#[derive(Debug, Default)]
struct Announce {
    choosing: AtomicBool,
    /// Active ticket; 0 = not competing.
    ticket: AtomicU64,
}

/// First-come-first-served mutual exclusion lock for `n` registered
/// processes, generic over the ticket object's register backend.
///
/// `lock(pid)` may be called repeatedly (the ticket object is
/// long-lived), but by at most one thread per `pid` at a time.
///
/// # Example
///
/// ```
/// use ts_apps::FcfsLock;
///
/// let lock = FcfsLock::new(2);
/// {
///     let _guard = lock.lock(0);
///     // critical section for process 0
/// } // released on drop
/// let _guard = lock.lock(1);
/// ```
pub struct FcfsLock<B: RegisterBackend<u64> = PackedBackend> {
    tickets: CollectMax<B>,
    /// One padded announcement slot per process (see [`Announce`]).
    announce: Vec<CachePadded<Announce>>,
}

impl FcfsLock<PackedBackend> {
    /// Creates a lock for `n` processes over word-inlined ticket
    /// registers (the default backend).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n)
    }
}

impl<B: RegisterBackend<u64>> FcfsLock<B> {
    /// Creates a lock for `n` processes whose ticket registers live on
    /// the backend `B`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_backend(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            tickets: CollectMax::with_backend(n),
            announce: (0..n).map(|_| CachePadded::default()).collect(),
        }
    }

    /// Number of registered processes.
    pub fn processes(&self) -> usize {
        self.announce.len()
    }

    /// Acquires the lock as process `pid`; blocks (spinning) until the
    /// critical section is available in FCFS order.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already competing (each
    /// process may hold/request the lock once at a time).
    pub fn lock(&self, pid: usize) -> FcfsLockGuard<'_, B> {
        assert!(pid < self.announce.len(), "pid {pid} out of range");
        assert_eq!(
            self.announce[pid].ticket.load(Ordering::SeqCst),
            0,
            "process {pid} is already competing"
        );
        // Doorway: announce, take a ticket (fast path: one cache load +
        // one CAS inside CollectMax), publish it.
        self.announce[pid].choosing.store(true, Ordering::SeqCst);
        let ticket = self.tickets.get_ts(pid).expect("pid validated above").rnd; // scalar timestamps: rnd carries the value, ≥ 1
        self.announce[pid].ticket.store(ticket, Ordering::SeqCst);
        self.announce[pid].choosing.store(false, Ordering::SeqCst);

        // Waiting room: defer to every smaller (ticket, pid).
        for q in 0..self.announce.len() {
            if q == pid {
                continue;
            }
            while self.announce[q].choosing.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            loop {
                let tq = self.announce[q].ticket.load(Ordering::SeqCst);
                if tq == 0 || (tq, q) > (ticket, pid) {
                    break;
                }
                std::thread::yield_now();
            }
        }
        FcfsLockGuard { lock: self, pid }
    }

    /// The ticket currently held by `pid` (0 if not competing) —
    /// exposed for fairness assertions in tests.
    pub fn ticket_of(&self, pid: usize) -> u64 {
        self.announce[pid].ticket.load(Ordering::SeqCst)
    }

    fn unlock(&self, pid: usize) {
        self.announce[pid].ticket.store(0, Ordering::SeqCst);
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for FcfsLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcfsLock")
            .field("processes", &self.announce.len())
            .finish()
    }
}

/// RAII guard: the critical section lasts until the guard drops.
pub struct FcfsLockGuard<'a, B: RegisterBackend<u64> = PackedBackend> {
    lock: &'a FcfsLock<B>,
    pid: usize,
}

impl<B: RegisterBackend<u64>> FcfsLockGuard<'_, B> {
    /// The process holding the lock.
    pub fn pid(&self) -> usize {
        self.pid
    }
}

impl<B: RegisterBackend<u64>> Drop for FcfsLockGuard<'_, B> {
    fn drop(&mut self) {
        self.lock.unlock(self.pid);
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for FcfsLockGuard<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcfsLockGuard")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_unlock() {
        let lock = FcfsLock::new(2);
        let g = lock.lock(0);
        assert_eq!(g.pid(), 0);
        assert!(lock.ticket_of(0) > 0);
        drop(g);
        assert_eq!(lock.ticket_of(0), 0);
        let _g = lock.lock(1);
    }

    #[test]
    fn same_process_can_relock_sequentially() {
        let lock = FcfsLock::new(1);
        for _ in 0..5 {
            let g = lock.lock(0);
            drop(g);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        let lock = FcfsLock::new(1);
        let _ = lock.lock(3);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let n = 8;
        let iters = 200;
        let lock = Arc::new(FcfsLock::new(n));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let counter = Arc::new(AtomicUsize::new(0));
        crossbeam::scope(|s| {
            for pid in 0..n {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                let max_seen = Arc::clone(&max_seen);
                let counter = Arc::clone(&counter);
                s.spawn(move |_| {
                    for _ in 0..iters {
                        let g = lock.lock(pid);
                        let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "mutual exclusion broken"
        );
        assert_eq!(counter.load(Ordering::SeqCst), n * iters);
    }

    #[test]
    fn fcfs_across_sequential_doorways() {
        // If p's entire lock/unlock finished before q started, q's
        // ticket must be strictly larger (the timestamp property at
        // work).
        let lock = FcfsLock::new(2);
        let g0 = lock.lock(0);
        let t0 = lock.ticket_of(0);
        drop(g0);
        let _g1 = lock.lock(1);
        let t1 = lock.ticket_of(1);
        assert!(t0 < t1, "{t0} !< {t1}");
    }

    #[test]
    fn epoch_backend_lock_round_trips() {
        let lock = FcfsLock::<ts_core::EpochBackend>::with_backend(2);
        let g = lock.lock(0);
        assert_eq!(g.pid(), 0);
        drop(g);
        let _g = lock.lock(1);
    }
}
