//! Order-preserving one-shot renaming from one-shot timestamps.
//!
//! Renaming (Attiya–Fouren 2003, cited in the paper's introduction)
//! gives processes from a large id space small distinct names. The
//! one-shot timestamp object yields a wait-free *order-preserving*
//! variant for free: process `p`'s name is the pair `(getTS(), p)`
//! flattened into an integer. Names are distinct (ties on the timestamp
//! are broken by `p`), and if `p` finished acquiring its name before
//! `q` started, then `name(p) < name(q)` — the timestamp property made
//! visible in the namespace.
//!
//! Namespace size: Algorithm 4's one-shot timestamps satisfy
//! `rnd ≤ m` and `turn < m` with `m = ⌈2√n⌉`, so the flattened names
//! live in `[0, n·m·(m+1))` = O(n²) — a bounded, order-preserving
//! namespace (exact order-preserving renaming into O(n) is impossible
//! to get this cheaply; the point here is the application wiring, not
//! namespace optimality).

use std::fmt;

use ts_core::{BoundedTimestamp, GetTsError, OneShotTimestamp, Timestamp};

/// Wait-free order-preserving one-shot renaming for `n` processes.
///
/// # Example
///
/// ```
/// use ts_apps::OrderPreservingRenaming;
///
/// let renaming = OrderPreservingRenaming::new(4);
/// let a = renaming.acquire(2).unwrap();
/// let b = renaming.acquire(0).unwrap(); // strictly after a
/// assert!(a < b);
/// assert!(b < renaming.namespace());
/// ```
pub struct OrderPreservingRenaming {
    timestamps: BoundedTimestamp,
    n: usize,
}

impl OrderPreservingRenaming {
    /// Creates a renaming object for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self {
            timestamps: BoundedTimestamp::one_shot(n),
            n,
        }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Size of the output namespace: names are in `[0, namespace())`.
    pub fn namespace(&self) -> u64 {
        let m = OneShotTimestamp::registers(&self.timestamps) as u64;
        // rnd ∈ [1, m], turn ∈ [0, m): flatten((rnd, turn), pid).
        self.n as u64 * m * (m + 1)
    }

    /// Acquires `pid`'s name (at most once per process).
    ///
    /// # Errors
    ///
    /// Propagates the one-shot discipline of the timestamp object
    /// ([`GetTsError::AlreadyUsed`], [`GetTsError::PidOutOfRange`]).
    pub fn acquire(&self, pid: usize) -> Result<u64, GetTsError> {
        let ts = self.timestamps.get_ts(pid)?;
        Ok(self.flatten(&ts, pid))
    }

    fn flatten(&self, ts: &Timestamp, pid: usize) -> u64 {
        let m = OneShotTimestamp::registers(&self.timestamps) as u64;
        debug_assert!(ts.rnd >= 1 && ts.rnd <= m, "rnd {} out of [1, {m}]", ts.rnd);
        debug_assert!(ts.turn < m, "turn {} out of [0, {m})", ts.turn);
        ((ts.rnd - 1) * m + ts.turn) * self.n as u64 + pid as u64
    }
}

impl fmt::Debug for OrderPreservingRenaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderPreservingRenaming")
            .field("processes", &self.n)
            .field("namespace", &self.namespace())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn names_are_distinct_and_in_namespace() {
        let n = 16;
        let renaming = Arc::new(OrderPreservingRenaming::new(n));
        let names: Vec<u64> = crossbeam::scope(|s| {
            let hs: Vec<_> = (0..n)
                .map(|p| {
                    let r = Arc::clone(&renaming);
                    s.spawn(move |_| r.acquire(p).unwrap())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let distinct: HashSet<_> = names.iter().collect();
        assert_eq!(distinct.len(), n, "name collision: {names:?}");
        for &name in &names {
            assert!(name < renaming.namespace());
        }
    }

    #[test]
    fn sequential_names_are_order_preserving() {
        let renaming = OrderPreservingRenaming::new(8);
        let mut last = None;
        for p in (0..8).rev() {
            // reversed pids: order must come from time, not pid
            let name = renaming.acquire(p).unwrap();
            if let Some(prev) = last {
                assert!(prev < name, "{prev} !< {name}");
            }
            last = Some(name);
        }
    }

    #[test]
    fn one_shot_discipline_enforced() {
        let renaming = OrderPreservingRenaming::new(2);
        renaming.acquire(0).unwrap();
        assert_eq!(renaming.acquire(0), Err(GetTsError::AlreadyUsed { pid: 0 }));
        assert!(matches!(
            renaming.acquire(7),
            Err(GetTsError::PidOutOfRange { .. })
        ));
    }

    #[test]
    fn rounds_of_names_respect_happens_before() {
        let n = 12;
        let renaming = Arc::new(OrderPreservingRenaming::new(n));
        let round = |lo: usize, hi: usize| -> Vec<u64> {
            crossbeam::scope(|s| {
                let hs: Vec<_> = (lo..hi)
                    .map(|p| {
                        let r = Arc::clone(&renaming);
                        s.spawn(move |_| r.acquire(p).unwrap())
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap()
        };
        let first = round(0, n / 2);
        let second = round(n / 2, n);
        for a in &first {
            for b in &second {
                assert!(a < b, "{a} !< {b} across rounds");
            }
        }
    }
}
