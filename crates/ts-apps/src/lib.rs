//! Applications built on the paper's timestamp objects.
//!
//! Section 1 of Helmi et al. motivates timestamp objects with the
//! problems they solve: FCFS fairness in mutual exclusion and
//! k-exclusion (Lamport 1974; Fischer, Lynch, Burns, Borodin 1989),
//! and renaming (Attiya–Fouren 2003). This crate implements those
//! consumers over the `ts-core` objects, closing the loop from the
//! paper's introduction to its algorithms:
//!
//! - [`FcfsLock`] — bakery-style mutual exclusion whose tickets come
//!   from a long-lived timestamp object; first-come-first-served across
//!   non-overlapping doorways;
//! - [`KExclusion`] — the k-resource generalization (up to `k` holders);
//! - [`OrderPreservingRenaming`] — one-shot names from one-shot
//!   timestamps: names are distinct and respect happens-before, from a
//!   namespace polynomial in `n`.
//!
//! # Example
//!
//! ```
//! use ts_apps::FcfsLock;
//!
//! let lock = FcfsLock::new(4);
//! let guard = lock.lock(0);
//! // ... critical section ...
//! drop(guard);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fcfs_lock;
mod kexclusion;
mod renaming;
mod workload;

pub use fcfs_lock::{FcfsLock, FcfsLockGuard};
pub use kexclusion::{KExclusion, KExclusionGuard};
pub use renaming::OrderPreservingRenaming;
