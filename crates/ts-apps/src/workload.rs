//! [`WorkloadTarget`] adapters for the lock consumers, so the workload
//! scenario engine can drive them next to the raw timestamp objects.
//!
//! The op mapping for locks:
//!
//! - `GetTs` — one full acquire/release cycle. The doorway takes a
//!   ticket from the long-lived timestamp object, so this is the
//!   "timestamp in anger" path; the worker also asserts that tickets
//!   from its own non-overlapping cycles strictly increase (the FCFS
//!   consequence of the timestamp property).
//! - `Scan` — a read-only pass over the announcement array
//!   ([`FcfsLock::ticket_of`] / [`KExclusion::competing`]).
//! - `Compare` — the local comparison of the worker's last two tickets.

use std::hint::black_box;

use ts_core::workload::{OpHistory, WorkloadOp, WorkloadTarget, WorkloadWorker};
use ts_core::RegisterBackend;

use crate::fcfs_lock::FcfsLock;
use crate::kexclusion::KExclusion;

struct FcfsLockWorker<'a, B: RegisterBackend<u64>> {
    lock: &'a FcfsLock<B>,
    slot: usize,
    history: OpHistory<u64>,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for FcfsLockWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let guard = self.lock.lock(self.slot);
                let ticket = self.lock.ticket_of(self.slot);
                drop(guard);
                if let Some(prev) = self.history.last() {
                    // Our previous cycle finished before this one began:
                    // FCFS demands a strictly larger ticket.
                    assert!(
                        prev < ticket,
                        "fcfs ticket went backwards: {prev} -> {ticket}"
                    );
                }
                self.history.push(ticket);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                for q in 0..self.lock.processes() {
                    black_box(self.lock.ticket_of(q));
                }
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(black_box(a < b), "ticket history out of order: {a} !< {b}");
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }
}

impl<B: RegisterBackend<u64>> WorkloadTarget for FcfsLock<B> {
    fn object(&self) -> &'static str {
        "fcfs_lock"
    }

    fn backend(&self) -> &'static str {
        B::NAME
    }

    fn slots(&self) -> usize {
        self.processes()
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.processes(), "slot {slot} out of range");
        Box::new(FcfsLockWorker {
            lock: self,
            slot,
            history: OpHistory::new(),
        })
    }
}

struct KExclusionWorker<'a, B: RegisterBackend<u64>> {
    pool: &'a KExclusion<B>,
    slot: usize,
    /// Local cycle numbers (`active` is cleared on release, and
    /// k-exclusion admits overtaking, so unlike FCFS no cross-cycle
    /// ticket assertion holds — Compare only measures cost).
    history: OpHistory<u64>,
    cycles: u64,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for KExclusionWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let guard = self.pool.acquire(self.slot);
                drop(guard);
                self.cycles += 1;
                self.history.push(self.cycles);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.pool.competing());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    black_box(a < b);
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }
}

impl<B: RegisterBackend<u64>> WorkloadTarget for KExclusion<B> {
    fn object(&self) -> &'static str {
        "k_exclusion"
    }

    fn backend(&self) -> &'static str {
        B::NAME
    }

    fn slots(&self) -> usize {
        self.processes()
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.processes(), "slot {slot} out of range");
        Box::new(KExclusionWorker {
            pool: self,
            slot,
            history: OpHistory::new(),
            cycles: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_core::PackedBackend;

    #[test]
    fn fcfs_lock_worker_cycles_and_orders_tickets() {
        let lock: FcfsLock<PackedBackend> = FcfsLock::new(2);
        let mut w = lock.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs); // needs 2 tickets
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
    }

    #[test]
    fn kexclusion_worker_cycles() {
        let pool: KExclusion<PackedBackend> = KExclusion::new(3, 2);
        let mut w = pool.worker(1);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(pool.competing(), 0, "guard released after every cycle");
    }
}
