//! k-exclusion over a long-lived timestamp object.
//!
//! The FIFO k-exclusion problem (Fischer, Lynch, Burns, Borodin 1989,
//! cited in the paper's introduction) admits up to `k` processes into
//! the resource simultaneously, in first-come-first-served order. The
//! bakery waiting rule generalizes: enter once fewer than `k`
//! competitors hold strictly smaller `(ticket, pid)` priorities.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ts_core::{CachePadded, CollectMax, LongLivedTimestamp, PackedBackend, RegisterBackend};

/// One process's announcement slot, cache-line padded — same rationale
/// as the FCFS lock's: every waiter scans every other process's slot,
/// so unpadded neighbouring slots turn each doorway store into an
/// all-readers cache-line invalidation.
#[derive(Debug, Default)]
struct Announce {
    choosing: AtomicBool,
    /// Active ticket; 0 = not competing.
    ticket: AtomicU64,
}

/// k-exclusion admission for `n` registered processes, generic over the
/// ticket object's register backend.
///
/// # Example
///
/// ```
/// use ts_apps::KExclusion;
///
/// let pool = KExclusion::new(4, 2); // 4 processes, 2 slots
/// let a = pool.acquire(0);
/// let b = pool.acquire(1); // both fit
/// drop(a);
/// drop(b);
/// ```
pub struct KExclusion<B: RegisterBackend<u64> = PackedBackend> {
    tickets: CollectMax<B>,
    /// One padded announcement slot per process (see [`Announce`]).
    announce: Vec<CachePadded<Announce>>,
    k: usize,
}

impl KExclusion<PackedBackend> {
    /// Creates a pool with `k` slots for `n` processes over word-inlined
    /// ticket registers (the default backend).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        Self::with_backend(n, k)
    }
}

impl<B: RegisterBackend<u64>> KExclusion<B> {
    /// Creates a pool with `k` slots for `n` processes whose ticket
    /// registers live on the backend `B`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn with_backend(n: usize, k: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(k > 0, "need at least one slot");
        Self {
            tickets: CollectMax::with_backend(n),
            announce: (0..n).map(|_| CachePadded::default()).collect(),
            k,
        }
    }

    /// Number of slots.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of registered processes.
    pub fn processes(&self) -> usize {
        self.announce.len()
    }

    /// Read-only pass over the announcement array: how many processes
    /// currently hold a ticket (competing or inside the resource).
    /// Exposed for observability workloads and tests; the value is a
    /// momentary snapshot.
    pub fn competing(&self) -> usize {
        self.announce
            .iter()
            .filter(|a| a.ticket.load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Acquires a slot as process `pid` (spins until fewer than `k`
    /// smaller-priority competitors remain).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already competing.
    pub fn acquire(&self, pid: usize) -> KExclusionGuard<'_, B> {
        assert!(pid < self.announce.len(), "pid {pid} out of range");
        assert_eq!(
            self.announce[pid].ticket.load(Ordering::SeqCst),
            0,
            "process {pid} is already competing"
        );
        self.announce[pid].choosing.store(true, Ordering::SeqCst);
        let ticket = self.tickets.get_ts(pid).expect("pid validated").rnd;
        self.announce[pid].ticket.store(ticket, Ordering::SeqCst);
        self.announce[pid].choosing.store(false, Ordering::SeqCst);

        loop {
            let mut smaller = 0usize;
            for q in 0..self.announce.len() {
                if q == pid {
                    continue;
                }
                while self.announce[q].choosing.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                let tq = self.announce[q].ticket.load(Ordering::SeqCst);
                if tq != 0 && (tq, q) < (ticket, pid) {
                    smaller += 1;
                }
            }
            if smaller < self.k {
                return KExclusionGuard { pool: self, pid };
            }
            std::thread::yield_now();
        }
    }

    fn release(&self, pid: usize) {
        self.announce[pid].ticket.store(0, Ordering::SeqCst);
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for KExclusion<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KExclusion")
            .field("processes", &self.announce.len())
            .field("k", &self.k)
            .finish()
    }
}

/// RAII guard for one k-exclusion slot.
pub struct KExclusionGuard<'a, B: RegisterBackend<u64> = PackedBackend> {
    pool: &'a KExclusion<B>,
    pid: usize,
}

impl<B: RegisterBackend<u64>> KExclusionGuard<'_, B> {
    /// The process holding the slot.
    pub fn pid(&self) -> usize {
        self.pid
    }
}

impl<B: RegisterBackend<u64>> Drop for KExclusionGuard<'_, B> {
    fn drop(&mut self) {
        self.pool.release(self.pid);
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for KExclusionGuard<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KExclusionGuard")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn k_slots_admit_k_holders() {
        let pool = KExclusion::new(3, 2);
        let a = pool.acquire(0);
        let b = pool.acquire(1);
        assert_eq!(a.pid(), 0);
        assert_eq!(b.pid(), 1);
        drop(a);
        let _c = pool.acquire(2);
        drop(b);
    }

    #[test]
    fn k_equals_one_is_mutual_exclusion() {
        let pool = KExclusion::new(2, 1);
        let g = pool.acquire(0);
        drop(g);
        let _g = pool.acquire(1);
    }

    #[test]
    fn never_more_than_k_holders_under_contention() {
        let n = 8;
        let k = 3;
        let iters = 150;
        let pool = Arc::new(KExclusion::new(n, k));
        let holders = Arc::new(AtomicUsize::new(0));
        let max_holders = Arc::new(AtomicUsize::new(0));
        crossbeam::scope(|s| {
            for pid in 0..n {
                let pool = Arc::clone(&pool);
                let holders = Arc::clone(&holders);
                let max_holders = Arc::clone(&max_holders);
                s.spawn(move |_| {
                    for _ in 0..iters {
                        let g = pool.acquire(pid);
                        let now = holders.fetch_add(1, Ordering::SeqCst) + 1;
                        max_holders.fetch_max(now, Ordering::SeqCst);
                        // Dwell briefly so slots actually overlap.
                        for _ in 0..3 {
                            std::thread::yield_now();
                        }
                        holders.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                    }
                });
            }
        })
        .unwrap();
        let max = max_holders.load(Ordering::SeqCst);
        assert!(max <= k, "{max} holders observed with k = {k}");
        // Scheduling may serialize the whole run on loaded machines, so
        // overlap (max ≥ 2) is expected but not asserted; the guaranteed
        // multi-holder case is covered by `k_slots_admit_k_holders`.
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = KExclusion::new(2, 0);
    }

    #[test]
    fn epoch_backend_pool_admits_and_releases() {
        let pool = KExclusion::<ts_core::EpochBackend>::with_backend(3, 2);
        let a = pool.acquire(0);
        let b = pool.acquire(1);
        drop(a);
        drop(b);
        let _c = pool.acquire(2);
    }
}
