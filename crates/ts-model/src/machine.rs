//! Deterministic step machines for one method call.

use std::fmt::Debug;
use std::hash::Hash;

/// The next step a machine is poised to take.
///
/// This mirrors the paper's covering terminology: a process *covers*
/// register `r` in a configuration when its poised step is a write to
/// `r`. Exposing the poised step without executing it is what lets the
/// lower-bound machinery inspect coverings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Poised<V, R> {
    /// The machine will read register `reg`.
    Read {
        /// Register index about to be read.
        reg: usize,
    },
    /// The machine will write `value` to register `reg` (it covers `reg`).
    Write {
        /// Register index about to be written.
        reg: usize,
        /// The value that will be written.
        value: V,
    },
    /// The machine will compare-and-swap register `reg`: if it still
    /// holds `expected`, `new` is installed; either way the machine
    /// observes the prior value (and infers success by comparing it to
    /// `expected`). One atomic step — this models the hardware RMW the
    /// cached-max fast path is built on, which plain read-then-write
    /// steps cannot express (the interleaving between them is exactly
    /// the lost-update race CAS exists to close).
    Cas {
        /// Register index about to be compare-and-swapped.
        reg: usize,
        /// The value the register must still hold for the swap to land.
        expected: V,
        /// The value installed on success.
        new: V,
    },
    /// The method call is complete and returns `0`-indexed output.
    Done(R),
}

impl<V, R> Poised<V, R> {
    /// The register this step covers, if it may write it. A poised CAS
    /// covers its register: whether the write lands depends on the
    /// register's current contents, but the step is a potential write
    /// for covering purposes.
    pub fn covers(&self) -> Option<usize> {
        match self {
            Poised::Write { reg, .. } | Poised::Cas { reg, .. } => Some(*reg),
            _ => None,
        }
    }

    /// Whether the method call has finished.
    pub fn is_done(&self) -> bool {
        matches!(self, Poised::Done(_))
    }
}

/// A deterministic step machine describing one pending method call.
///
/// The paper's processes are non-deterministic in general, but its lower
/// bound proofs immediately fix "an arbitrary (but fixed)" deterministic
/// decision rule that guarantees solo termination (Section 2). Machines
/// in this model are that fixed rule: given the same reads, a machine
/// always takes the same steps.
///
/// A machine's life cycle: inspect [`Machine::poised`]; if it is a
/// [`Poised::Read`], the scheduler performs the read and hands the value
/// to [`Machine::observe`]; if a [`Poised::Write`], the scheduler applies
/// the write and calls `observe(None)`; if a [`Poised::Cas`], the
/// scheduler atomically applies the swap (when the register still holds
/// `expected`) and hands the *prior* value to `observe` — the machine
/// compares it to `expected` to learn whether its swap landed; if
/// [`Poised::Done`], the call's output is recorded and the machine
/// retired.
///
/// `Clone + Eq + Hash` are required so that configurations can be
/// compared for indistinguishability and hashed for state pruning.
pub trait Machine: Clone + Eq + Hash + Debug {
    /// Register value universe.
    type Value: Clone + Eq + Hash + Debug;
    /// Method call return value.
    type Output: Clone + Eq + Hash + Debug;

    /// The step this machine is poised to take next.
    ///
    /// Must be deterministic and must not change until [`Machine::observe`]
    /// is called.
    fn poised(&self) -> Poised<Self::Value, Self::Output>;

    /// Advances past the poised step.
    ///
    /// `observed` carries the value returned by the read when the poised
    /// step was a [`Poised::Read`], and must be `None` for a write.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while poised on
    /// [`Poised::Done`], or if `observed` does not match the poised step
    /// kind.
    fn observe(&mut self, observed: Option<Self::Value>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_reports_write_target() {
        let p: Poised<u8, u8> = Poised::Write { reg: 3, value: 1 };
        assert_eq!(p.covers(), Some(3));
        let q: Poised<u8, u8> = Poised::Read { reg: 3 };
        assert_eq!(q.covers(), None);
        let d: Poised<u8, u8> = Poised::Done(0);
        assert_eq!(d.covers(), None);
        assert!(d.is_done());
        assert!(!q.is_done());
    }
}
