//! Deterministic step machines for one method call.

use std::fmt::Debug;
use std::hash::Hash;

/// The next step a machine is poised to take.
///
/// This mirrors the paper's covering terminology: a process *covers*
/// register `r` in a configuration when its poised step is a write to
/// `r`. Exposing the poised step without executing it is what lets the
/// lower-bound machinery inspect coverings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Poised<V, R> {
    /// The machine will read register `reg`.
    Read {
        /// Register index about to be read.
        reg: usize,
    },
    /// The machine will write `value` to register `reg` (it covers `reg`).
    Write {
        /// Register index about to be written.
        reg: usize,
        /// The value that will be written.
        value: V,
    },
    /// The machine will compare-and-swap register `reg`: if it still
    /// holds `expected`, `new` is installed; either way the machine
    /// observes the prior value (and infers success by comparing it to
    /// `expected`). One atomic step — this models the hardware RMW the
    /// cached-max fast path is built on, which plain read-then-write
    /// steps cannot express (the interleaving between them is exactly
    /// the lost-update race CAS exists to close).
    Cas {
        /// Register index about to be compare-and-swapped.
        reg: usize,
        /// The value the register must still hold for the swap to land.
        expected: V,
        /// The value installed on success.
        new: V,
    },
    /// The method call is complete and returns `0`-indexed output.
    Done(R),
}

impl<V, R> Poised<V, R> {
    /// The register this step covers, if it may write it. A poised CAS
    /// covers its register: whether the write lands depends on the
    /// register's current contents, but the step is a potential write
    /// for covering purposes.
    pub fn covers(&self) -> Option<usize> {
        match self {
            Poised::Write { reg, .. } | Poised::Cas { reg, .. } => Some(*reg),
            _ => None,
        }
    }

    /// Whether the method call has finished.
    pub fn is_done(&self) -> bool {
        matches!(self, Poised::Done(_))
    }

    /// The step's [`StepEffect`] — the footprint class the independence
    /// relation of the DPOR explorer is built on. A CAS classifies as a
    /// [`StepEffect::Write`]: it both observes and may mutate its
    /// register, so write-level conflict detection covers it.
    pub fn effect(&self) -> StepEffect {
        match self {
            Poised::Read { reg } => StepEffect::Read { reg: *reg },
            Poised::Write { reg, .. } | Poised::Cas { reg, .. } => StepEffect::Write { reg: *reg },
            Poised::Done(_) => StepEffect::Return,
        }
    }
}

/// The footprint class of one scheduled step, abstracting away values:
/// what the step touches, which is all the independence relation needs.
///
/// Two steps by *different* processes are **independent** when executing
/// them in either order from the same configuration yields the same
/// configuration, the same machine observations, *and* the same
/// happens-before relation over completed operations (the timestamp
/// property is a predicate on that relation, so swapping two steps must
/// not flip any ordered pair). See [`StepEffect::independent`] for the
/// exact relation and `ARCHITECTURE.md` for the soundness argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepEffect {
    /// A local invocation step: the process installs its next call's
    /// machine. Touches no register but *does* append an `Invoke` event
    /// to the history.
    Invoke,
    /// A shared-memory read of `reg`.
    Read {
        /// The register read.
        reg: usize,
    },
    /// A shared-memory write of `reg` — plain writes *and* CAS steps
    /// (a CAS observes the prior value and may install a new one, so it
    /// conflicts like a write on both sides).
    Write {
        /// The register (potentially) written.
        reg: usize,
    },
    /// A local completion step: the process records its call's response.
    /// Touches no register but appends a `Respond` event to the history.
    Return,
}

impl StepEffect {
    /// Whether this effect names a shared-memory access (read or write).
    pub fn is_memory(&self) -> bool {
        matches!(self, StepEffect::Read { .. } | StepEffect::Write { .. })
    }

    /// The independence relation of the DPOR reduction:
    ///
    /// - two reads always commute, even on the same register (no state
    ///   changes, identical observations either way);
    /// - a write is dependent with every access (read, write, or CAS)
    ///   to the *same* register and independent of everything else;
    /// - memory steps are independent of local steps: they move no
    ///   history event past another, so no happens-before pair flips;
    /// - `Invoke` and `Return` of different processes are **dependent**:
    ///   `Return(p); Invoke(q)` orders p's operation before q's, while
    ///   `Invoke(q); Return(p)` makes them overlap — the timestamp
    ///   property distinguishes the two histories;
    /// - `Invoke`/`Invoke` and `Return`/`Return` commute (swapping two
    ///   adjacent invocations, or two adjacent responses, flips no
    ///   `responded < invoked` comparison).
    pub fn independent(&self, other: &StepEffect) -> bool {
        use StepEffect::{Invoke, Read, Return, Write};
        match (self, other) {
            (Invoke, Return) | (Return, Invoke) => false,
            (Invoke, _) | (_, Invoke) | (Return, _) | (_, Return) => true,
            (Read { .. }, Read { .. }) => true,
            (Read { reg: a }, Write { reg: b })
            | (Write { reg: a }, Read { reg: b })
            | (Write { reg: a }, Write { reg: b }) => a != b,
        }
    }
}

/// A deterministic step machine describing one pending method call.
///
/// The paper's processes are non-deterministic in general, but its lower
/// bound proofs immediately fix "an arbitrary (but fixed)" deterministic
/// decision rule that guarantees solo termination (Section 2). Machines
/// in this model are that fixed rule: given the same reads, a machine
/// always takes the same steps.
///
/// A machine's life cycle: inspect [`Machine::poised`]; if it is a
/// [`Poised::Read`], the scheduler performs the read and hands the value
/// to [`Machine::observe`]; if a [`Poised::Write`], the scheduler applies
/// the write and calls `observe(None)`; if a [`Poised::Cas`], the
/// scheduler atomically applies the swap (when the register still holds
/// `expected`) and hands the *prior* value to `observe` — the machine
/// compares it to `expected` to learn whether its swap landed; if
/// [`Poised::Done`], the call's output is recorded and the machine
/// retired.
///
/// `Clone + Eq + Hash` are required so that configurations can be
/// compared for indistinguishability and hashed for state pruning.
pub trait Machine: Clone + Eq + Hash + Debug {
    /// Register value universe.
    type Value: Clone + Eq + Hash + Debug;
    /// Method call return value.
    type Output: Clone + Eq + Hash + Debug;

    /// The step this machine is poised to take next.
    ///
    /// Must be deterministic and must not change until [`Machine::observe`]
    /// is called.
    fn poised(&self) -> Poised<Self::Value, Self::Output>;

    /// Advances past the poised step.
    ///
    /// `observed` carries the value returned by the read when the poised
    /// step was a [`Poised::Read`], and must be `None` for a write.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while poised on
    /// [`Poised::Done`], or if `observed` does not match the poised step
    /// kind.
    fn observe(&mut self, observed: Option<Self::Value>);

    /// Over-approximation of the registers this machine may still
    /// **read** (including CAS observations) between its current state
    /// and the completion of its call, across *every* possible future
    /// observation. `None` means "unknown — assume any register".
    ///
    /// This is the lookahead the persistent-set computation of the DPOR
    /// explorer needs. The default is sound for every machine; override
    /// it only with a genuine over-approximation — returning a set that
    /// misses a register the machine can later read makes the reduction
    /// unsound (the differential harness in `tests/explore_equivalence.rs`
    /// exists to catch exactly that).
    fn may_read(&self) -> Option<Vec<usize>> {
        None
    }

    /// Over-approximation of the registers this machine may still
    /// **write** (including CAS installations) before completing, across
    /// every possible future observation. `None` means "unknown".
    ///
    /// Same contract as [`Machine::may_read`].
    fn may_write(&self) -> Option<Vec<usize>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_reports_write_target() {
        let p: Poised<u8, u8> = Poised::Write { reg: 3, value: 1 };
        assert_eq!(p.covers(), Some(3));
        let q: Poised<u8, u8> = Poised::Read { reg: 3 };
        assert_eq!(q.covers(), None);
        let d: Poised<u8, u8> = Poised::Done(0);
        assert_eq!(d.covers(), None);
        assert!(d.is_done());
        assert!(!q.is_done());
    }

    #[test]
    fn effects_classify_steps() {
        let r: Poised<u8, u8> = Poised::Read { reg: 2 };
        assert_eq!(r.effect(), StepEffect::Read { reg: 2 });
        let w: Poised<u8, u8> = Poised::Write { reg: 1, value: 9 };
        assert_eq!(w.effect(), StepEffect::Write { reg: 1 });
        let c: Poised<u8, u8> = Poised::Cas {
            reg: 1,
            expected: 0,
            new: 1,
        };
        assert_eq!(c.effect(), StepEffect::Write { reg: 1 }, "CAS is a write");
        let d: Poised<u8, u8> = Poised::Done(0);
        assert_eq!(d.effect(), StepEffect::Return);
    }

    #[test]
    fn independence_relation_is_symmetric_and_exact() {
        use StepEffect::{Invoke, Read, Return, Write};
        let cases = [
            (Invoke, Invoke, true),
            (Invoke, Return, false),
            (Return, Return, true),
            (Invoke, Read { reg: 0 }, true),
            (Return, Write { reg: 0 }, true),
            (Read { reg: 0 }, Read { reg: 0 }, true),
            (Read { reg: 0 }, Write { reg: 0 }, false),
            (Read { reg: 0 }, Write { reg: 1 }, true),
            (Write { reg: 0 }, Write { reg: 0 }, false),
            (Write { reg: 0 }, Write { reg: 1 }, true),
        ];
        for (a, b, expect) in cases {
            assert_eq!(a.independent(&b), expect, "{a:?} vs {b:?}");
            assert_eq!(b.independent(&a), expect, "symmetry: {b:?} vs {a:?}");
        }
    }
}
