//! A configuration coupled with a history: the runnable model.

use crate::algorithm::Algorithm;
use crate::config::Configuration;
use crate::error::ModelError;
use crate::history::{History, OpId};
use crate::machine::{Machine, Poised};
use crate::schedule::{ProcId, Schedule};

/// The observable effect of one scheduled step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome<V, O> {
    /// The process invoked its next operation (a local action; no shared
    /// memory was touched).
    Invoked {
        /// The new call's id.
        op: OpId,
    },
    /// The process read `value` from register `reg`.
    Read {
        /// Register index.
        reg: usize,
        /// Value observed.
        value: V,
    },
    /// The process wrote `value` to register `reg`.
    Wrote {
        /// Register index.
        reg: usize,
        /// Value written.
        value: V,
    },
    /// The process compare-and-swapped register `reg` in one atomic
    /// step: `new` was installed iff `prior == expected`.
    Cased {
        /// Register index.
        reg: usize,
        /// The value the swap required.
        expected: V,
        /// The value the swap would install.
        new: V,
        /// The register's value immediately before the step (what the
        /// machine observed).
        prior: V,
        /// Whether the swap landed (`prior == expected`).
        success: bool,
    },
    /// The process's pending call returned `output` (a local action).
    Completed {
        /// The call's return value.
        output: O,
    },
}

impl<V, O> StepOutcome<V, O> {
    /// Whether this step completed an operation.
    pub fn is_completed(&self) -> bool {
        matches!(self, StepOutcome::Completed { .. })
    }
}

/// The outcome type of [`System::step`] for algorithm `A`.
pub type SystemStepOutcome<A> = StepOutcome<
    <<A as Algorithm>::Machine as Machine>::Value,
    <<A as Algorithm>::Machine as Machine>::Output,
>;

/// A runnable instance of the model: algorithm + configuration + history.
///
/// Scheduling semantics (matching Section 2 of the paper):
///
/// - scheduling an idle process with invocations remaining *invokes* its
///   next `getTS()` — a local action that installs the call's machine;
/// - scheduling a process poised on a read/write/CAS performs that
///   shared memory step (a CAS reads, compares and conditionally writes
///   in the *same* step — it is one unit of time, like the hardware RMW
///   it models);
/// - scheduling a process poised on [`Poised::Done`] records the response
///   (a local action) and retires the machine.
///
/// Every scheduled step advances the global time by one.
#[derive(Debug, Clone)]
pub struct System<A: Algorithm> {
    algorithm: A,
    config: Configuration<A::Machine>,
    /// Invocations started per process.
    started: Vec<usize>,
    /// Id of the operation currently pending per process.
    pending_op: Vec<Option<OpId>>,
    history: History<<A::Machine as Machine>::Output>,
    time: u64,
    /// Total shared-memory writes performed, per register.
    write_counts: Vec<u64>,
}

impl<A: Algorithm> System<A> {
    /// Creates a system in the initial configuration `C0`.
    pub fn new(algorithm: A) -> Self {
        let n = algorithm.processes();
        let m = algorithm.registers();
        let initial = algorithm.initial_value();
        Self {
            config: Configuration::initial(n, m, initial),
            started: vec![0; n],
            pending_op: vec![None; n],
            history: History::new(),
            time: 0,
            write_counts: vec![0; m],
            algorithm,
        }
    }

    /// The algorithm driving this system.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration<A::Machine> {
        &self.config
    }

    /// The history so far.
    pub fn history(&self) -> &History<<A::Machine as Machine>::Output> {
        &self.history
    }

    /// Global step counter.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of invocations process `pid` has started.
    pub fn started(&self, pid: ProcId) -> usize {
        self.started[pid]
    }

    /// Writes performed on each register so far.
    pub fn write_counts(&self) -> &[u64] {
        &self.write_counts
    }

    /// Registers that have been written at least once.
    pub fn registers_written(&self) -> usize {
        self.write_counts.iter().filter(|&&w| w > 0).count()
    }

    /// Whether `pid` has never invoked an operation — the paper's
    /// `idle(C)` for the one-shot construction ("in its initial state").
    pub fn never_invoked(&self, pid: ProcId) -> bool {
        self.started[pid] == 0
    }

    /// Processes that have never invoked an operation.
    pub fn idle_processes(&self) -> Vec<ProcId> {
        (0..self.config.processes())
            .filter(|&p| self.never_invoked(p))
            .collect()
    }

    /// Whether process `pid` can be scheduled (has a pending call or
    /// invocations remaining).
    pub fn enabled(&self, pid: ProcId) -> bool {
        if pid >= self.config.processes() {
            return false;
        }
        if self.config.procs[pid].is_some() {
            return true;
        }
        match self.algorithm.ops_per_process() {
            Some(limit) => self.started[pid] < limit,
            None => true,
        }
    }

    /// All currently enabled processes.
    pub fn enabled_processes(&self) -> Vec<ProcId> {
        (0..self.config.processes())
            .filter(|&p| self.enabled(p))
            .collect()
    }

    /// The [`StepEffect`](crate::machine::StepEffect) scheduling `pid`
    /// *right now* would have: `Invoke` for an idle process (the caller
    /// is responsible for checking it still has invocations left),
    /// otherwise the effect of its poised step.
    ///
    /// This is the independence hook the DPOR explorer drives: the
    /// effect abstracts the step down to what it touches, which is all
    /// the [`independent`](crate::machine::StepEffect::independent)
    /// relation needs.
    pub fn next_effect(&self, pid: ProcId) -> crate::machine::StepEffect {
        match self.config.procs.get(pid).and_then(|m| m.as_ref()) {
            Some(machine) => machine.poised().effect(),
            None => crate::machine::StepEffect::Invoke,
        }
    }

    /// Whether the whole system is quiescent (no pending calls).
    ///
    /// This matches the paper's quiescence: no process has started but
    /// not finished a method call.
    pub fn quiescent(&self) -> bool {
        self.config.procs.iter().all(|m| m.is_none())
    }

    /// Performs one step by process `pid`.
    ///
    /// # Errors
    ///
    /// - [`ModelError::ProcOutOfRange`] if `pid >= n`;
    /// - [`ModelError::NothingToDo`] if `pid` is idle with no invocations
    ///   left;
    /// - [`ModelError::RegisterOutOfRange`] if the machine addresses a
    ///   register `>= m`.
    pub fn step(&mut self, pid: ProcId) -> Result<SystemStepOutcome<A>, ModelError> {
        let n = self.config.processes();
        if pid >= n {
            return Err(ModelError::ProcOutOfRange { pid, processes: n });
        }
        if self.config.procs[pid].is_none() {
            if let Some(limit) = self.algorithm.ops_per_process() {
                if self.started[pid] >= limit {
                    return Err(ModelError::NothingToDo { pid });
                }
            }
            self.time += 1;
            let op = OpId {
                pid,
                op_index: self.started[pid],
            };
            self.started[pid] += 1;
            self.pending_op[pid] = Some(op);
            self.history.record_invoke(op, self.time);
            self.config.procs[pid] = Some(self.algorithm.invoke(pid, op.op_index));
            return Ok(StepOutcome::Invoked { op });
        }

        self.time += 1;
        let machine = self.config.procs[pid]
            .as_mut()
            .expect("pending machine checked above");
        match machine.poised() {
            Poised::Read { reg } => {
                if reg >= self.config.regs.len() {
                    return Err(ModelError::RegisterOutOfRange {
                        reg,
                        registers: self.config.regs.len(),
                    });
                }
                let value = self.config.regs[reg].clone();
                machine.observe(Some(value.clone()));
                Ok(StepOutcome::Read { reg, value })
            }
            Poised::Write { reg, value } => {
                if reg >= self.config.regs.len() {
                    return Err(ModelError::RegisterOutOfRange {
                        reg,
                        registers: self.config.regs.len(),
                    });
                }
                machine.observe(None);
                self.config.regs[reg] = value.clone();
                self.write_counts[reg] += 1;
                Ok(StepOutcome::Wrote { reg, value })
            }
            Poised::Cas { reg, expected, new } => {
                if reg >= self.config.regs.len() {
                    return Err(ModelError::RegisterOutOfRange {
                        reg,
                        registers: self.config.regs.len(),
                    });
                }
                let prior = self.config.regs[reg].clone();
                let success = prior == expected;
                if success {
                    self.config.regs[reg] = new.clone();
                    self.write_counts[reg] += 1;
                }
                machine.observe(Some(prior.clone()));
                Ok(StepOutcome::Cased {
                    reg,
                    expected,
                    new,
                    prior,
                    success,
                })
            }
            Poised::Done(output) => {
                let op = self.pending_op[pid].expect("pending op recorded at invocation");
                self.history.record_respond(op, self.time, output.clone());
                self.config.procs[pid] = None;
                self.pending_op[pid] = None;
                Ok(StepOutcome::Completed { output })
            }
        }
    }

    /// Runs a whole schedule, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ModelError`] encountered.
    pub fn run(&mut self, schedule: &Schedule) -> Result<(), ModelError> {
        for &pid in schedule.steps() {
            self.step(pid)?;
        }
        Ok(())
    }

    /// Runs `pid` until its current operation completes (invoking one if
    /// idle). Returns the output.
    ///
    /// This is the solo-termination run of Section 2: machines are the
    /// paper's fixed deterministic decision rule, so a solo run of a
    /// correct algorithm terminates.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s (e.g. no invocations remaining).
    ///
    /// # Panics
    ///
    /// Panics if the operation does not complete within `budget` steps —
    /// that would refute solo termination.
    pub fn run_solo_to_completion(
        &mut self,
        pid: ProcId,
        budget: usize,
    ) -> Result<<A::Machine as Machine>::Output, ModelError> {
        for _ in 0..budget {
            if let StepOutcome::Completed { output } = self.step(pid)? {
                return Ok(output);
            }
        }
        panic!(
            "process p{pid} did not terminate solo within {budget} steps — solo termination violated"
        );
    }

    /// Checks the timestamp property over the history so far.
    ///
    /// Pairs touching processes the algorithm marks non-observable
    /// ([`Algorithm::op_observable`]) are skipped — fault-injection
    /// adversary pids complete environment events, not `getTS` calls.
    pub fn check_property(
        &self,
    ) -> Option<crate::history::PropertyViolation<<A::Machine as Machine>::Output>> {
        crate::history::check_timestamp_property_filtered(
            &self.history,
            |a, b| self.algorithm.compare(a, b),
            |pid| self.algorithm.op_observable(pid),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::CounterAlgorithm;

    #[test]
    fn fresh_system_is_quiescent_with_everyone_idle() {
        let sys = System::new(CounterAlgorithm::new(3));
        assert!(sys.quiescent());
        assert_eq!(sys.idle_processes(), vec![0, 1, 2]);
        assert_eq!(sys.enabled_processes(), vec![0, 1, 2]);
        assert_eq!(sys.time(), 0);
    }

    #[test]
    fn scheduling_idle_process_invokes_first() {
        let mut sys = System::new(CounterAlgorithm::new(2));
        let out = sys.step(0).unwrap();
        assert!(matches!(out, StepOutcome::Invoked { .. }));
        let out = sys.step(0).unwrap();
        assert!(matches!(out, StepOutcome::Read { reg: 0, .. }));
        assert_eq!(sys.started(0), 1);
        assert!(!sys.never_invoked(0));
        assert!(sys.never_invoked(1));
    }

    #[test]
    fn solo_run_completes_and_is_correct() {
        let mut sys = System::new(CounterAlgorithm::new(2));
        let t0 = sys.run_solo_to_completion(0, 100).unwrap();
        let t1 = sys.run_solo_to_completion(1, 100).unwrap();
        assert!(t0 < t1, "sequential counters must increase: {t0} vs {t1}");
        assert!(sys.check_property().is_none());
        assert!(sys.quiescent());
    }

    #[test]
    fn one_shot_limit_is_enforced() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        sys.run_solo_to_completion(0, 100).unwrap();
        let err = sys.step(0).unwrap_err();
        assert_eq!(err, ModelError::NothingToDo { pid: 0 });
    }

    #[test]
    fn out_of_range_process_errors() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        assert!(matches!(
            sys.step(5),
            Err(ModelError::ProcOutOfRange { pid: 5, .. })
        ));
    }

    #[test]
    fn write_counts_track_register_usage() {
        let mut sys = System::new(CounterAlgorithm::new(2));
        sys.run_solo_to_completion(0, 100).unwrap();
        assert_eq!(sys.registers_written(), 1);
        assert_eq!(sys.write_counts()[0], 1);
    }

    #[test]
    fn schedule_run_interleaves() {
        let mut sys = System::new(CounterAlgorithm::new(2));
        // Each counter op: invoke, read, write, done = 4 scheduled steps.
        let sched = Schedule::from(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        sys.run(&sched).unwrap();
        assert!(sys.quiescent());
        assert_eq!(sys.history().completed().len(), 2);
        // Overlapping ops may legitimately return equal values; the
        // property only constrains ordered pairs, of which there are none
        // here.
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn covering_is_visible_before_the_write_executes() {
        let mut sys = System::new(CounterAlgorithm::new(2));
        sys.step(0).unwrap(); // invoke
        sys.step(0).unwrap(); // read
        assert_eq!(sys.config().covers(0), Some(0));
        assert_eq!(sys.config().signature(), vec![1]);
    }
}
