//! Exhaustive interleaving exploration with DPOR and state pruning.
//!
//! A purpose-grown, loom-style checker: starting from `C0`, branch on
//! enabled processes at every step, and verify the timestamp property
//! at every operation completion. Three orthogonal throughput levers,
//! all sound for the timestamp property:
//!
//! **State merging.** Two explored states are merged when they agree on
//! everything that can influence future behaviour *and* future property
//! checks:
//!
//! - every process's machine state and invocation count,
//! - all register contents,
//! - the outputs of completed operations, and
//! - for each pending operation, the set of operations completed before
//!   its invocation (its future happens-before predecessors).
//!
//! [`CacheMode`] selects how merged states are stored: exact keys
//! ([`CacheMode::Exact`], collision-free, memory-heavy) or a 128-bit
//! **state fingerprint** ([`CacheMode::Fingerprint`], the default —
//! two independently-seeded 64-bit hashes of the same canonical state,
//! so a false merge needs a 2⁻¹²⁸-scale collision; see the fingerprint
//! note in ARCHITECTURE.md).
//!
//! **DPOR.** With [`Explorer::with_reduction`] (the default), the
//! explorer applies dynamic partial-order reduction built on the
//! [`StepEffect`] independence relation (reads commute; accesses to
//! different registers commute; `Invoke`/`Return` of different
//! processes do *not* — operation overlap is what the property is
//! about):
//!
//! - **persistent sets**: at each state, a conservative dependency
//!   closure over the enabled processes' *future* footprints
//!   ([`Machine::may_read`]/[`Machine::may_write`] for the pending
//!   call, [`Algorithm::op_may_read`]/[`Algorithm::op_may_write`] for
//!   fresh invocations) picks a subset of enabled processes whose
//!   exploration covers every behaviour — steps on registers nobody
//!   else can touch commit immediately instead of branching;
//! - **sleep sets**: after exploring process `p` at a state, `p` is put
//!   to sleep for the sibling subtrees and stays asleep until a
//!   dependent step runs, so each Mazurkiewicz trace is explored from
//!   one representative interleaving instead of all of them.
//!
//! Both only ever *skip redundant interleavings*: every maximal
//! execution of the full system remains trace-equivalent to an explored
//! one, violations are trace-invariant (equivalent executions have
//! identical happens-before relations and outputs), so a violation is
//! found iff full enumeration finds one. `tests/explore_equivalence.rs`
//! checks exactly this differentially, and the proptest in
//! `tests/explore_proptest.rs` re-derives it on random programs.
//!
//! **Parallel exploration.** [`Explorer::with_threads`] switches to a
//! partitioned mode: a deterministic BFS carves the tree into schedule
//! prefixes, work items are claimed atomically by scoped worker
//! threads, and results merge associatively — the lexicographically
//! least violating schedule wins, so counterexamples are byte-stable
//! regardless of thread count or scheduling (the report, counts
//! included, is identical for 1 and N threads by construction; see
//! `tests/explore_determinism.rs`).
//!
//! Violations are reported with the schedule that produced them, so
//! counterexamples can be replayed with [`System::run`].

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::algorithm::Algorithm;
use crate::history::{Event, OpId, PropertyViolation};
use crate::machine::{Machine, StepEffect};
use crate::schedule::ProcId;
use crate::system::System;

/// A property violation found by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation<O> {
    /// The schedule from `C0` that produces the violation.
    pub schedule: Vec<ProcId>,
    /// The offending pair of operations.
    pub property: PropertyViolation<O>,
}

/// How explored states are remembered for merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No state merging at all: raw tree enumeration. The ground-truth
    /// oracle for differential tests; exponentially slower.
    None,
    /// Full state keys: collision-free merging, one deep-cloned key per
    /// state (the pre-DPOR explorer's behaviour).
    Exact,
    /// 128-bit state fingerprints (two independently seeded 64-bit
    /// hashes of the canonical state): ~16 bytes per state instead of a
    /// deep clone. A false merge requires a 128-bit collision —
    /// negligible against the ≤ 10⁹ states any feasible run visits.
    Fingerprint,
}

/// Exploration statistics and result.
#[derive(Debug, Clone)]
pub struct ExploreReport<O> {
    /// Number of maximal executions reached (terminal states, counting
    /// pruned subtrees once).
    pub executions: u64,
    /// Number of state expansions performed (distinct states for the
    /// exact/fingerprint caches, plus re-expansions when a state is
    /// revisited with a smaller sleep set).
    pub states: u64,
    /// Number of scheduled steps executed across all expansions.
    pub transitions: u64,
    /// Number of states skipped because an equivalent one was already
    /// explored (with a covering sleep set).
    pub pruned: u64,
    /// Number of transitions suppressed by sleep sets (their traces are
    /// covered by sibling subtrees).
    pub sleep_skipped: u64,
    /// First violation found, if any. In partitioned/parallel mode the
    /// lexicographically least violating schedule wins, so the reported
    /// counterexample does not depend on thread count or timing.
    pub violation: Option<Violation<O>>,
    /// Whether exploration was cut short anywhere (currently only ever
    /// by the step-depth bound; see [`ExploreReport::depth_bounded`]).
    pub truncated: bool,
    /// Whether the [`Explorer::with_max_depth`] step-depth safety bound
    /// pruned at least one path. When this is `true` the exploration
    /// was **not** exhaustive and "no violation" claims are conditional
    /// on the bound — exhaustive tests must assert it is `false`.
    pub depth_bounded: bool,
    /// When requested via [`Explorer::record_outcomes`]: every distinct
    /// terminal outcome, as the completed outputs sorted by operation
    /// id. Trace-equivalent executions produce identical vectors, so
    /// full and DPOR exploration must agree on this set — the
    /// differential harness's strongest check.
    pub outcomes: Option<HashSet<Vec<O>>>,
}

impl<O: Eq + Hash> PartialEq for ExploreReport<O> {
    fn eq(&self, other: &Self) -> bool {
        self.executions == other.executions
            && self.states == other.states
            && self.transitions == other.transitions
            && self.pruned == other.pruned
            && self.sleep_skipped == other.sleep_skipped
            && self.violation == other.violation
            && self.truncated == other.truncated
            && self.depth_bounded == other.depth_bounded
            && self.outcomes == other.outcomes
    }
}

impl<O: Eq + Hash> Eq for ExploreReport<O> {}

impl<O> ExploreReport<O> {
    fn empty(record_outcomes: bool) -> Self {
        Self {
            executions: 0,
            states: 0,
            transitions: 0,
            pruned: 0,
            sleep_skipped: 0,
            violation: None,
            truncated: false,
            depth_bounded: false,
            outcomes: record_outcomes.then(HashSet::new),
        }
    }

    /// Folds `other` into `self` (partitioned-mode merge): counters
    /// add, flags or, outcome sets union, and the lexicographically
    /// least violating schedule wins.
    fn absorb(&mut self, other: ExploreReport<O>)
    where
        O: Clone + Eq + Hash,
    {
        self.executions += other.executions;
        self.states += other.states;
        self.transitions += other.transitions;
        self.pruned += other.pruned;
        self.sleep_skipped += other.sleep_skipped;
        self.truncated |= other.truncated;
        self.depth_bounded |= other.depth_bounded;
        if let Some(v) = other.violation {
            self.offer_violation(v);
        }
        if let (Some(mine), Some(theirs)) = (self.outcomes.as_mut(), other.outcomes) {
            mine.extend(theirs);
        }
    }

    fn offer_violation(&mut self, candidate: Violation<O>) {
        match &self.violation {
            Some(best) if best.schedule <= candidate.schedule => {}
            _ => self.violation = Some(candidate),
        }
    }
}

#[derive(PartialEq, Eq, Hash)]
struct StateKey<M: Machine> {
    procs: Vec<Option<M>>,
    regs: Vec<M::Value>,
    started: Vec<usize>,
    completed: Vec<(OpId, M::Output)>,
    pending_predecessors: Vec<(OpId, Vec<OpId>)>,
}

/// Exhaustive interleaving explorer for an [`Algorithm`].
///
/// Defaults: DPOR reduction on, fingerprint state cache, single-tree
/// sequential search. [`Explorer::with_reduction`]`(false)` +
/// [`Explorer::with_cache`]`(`[`CacheMode::Exact`]`)` reproduces the
/// pre-DPOR explorer step for step (the replay-trace corpus generators
/// pin that mode so checked-in counterexamples stay byte-stable).
///
/// # Example
///
/// ```
/// use ts_model::{Explorer};
/// use ts_model::toy::{ConstantAlgorithm, CounterAlgorithm};
///
/// // Correct for two processes:
/// assert!(Explorer::new(CounterAlgorithm::new(2), 1).run().violation.is_none());
/// // Broken algorithm: the explorer finds the violation.
/// assert!(Explorer::new(ConstantAlgorithm::new(2), 1).run().violation.is_some());
/// ```
#[derive(Debug)]
pub struct Explorer<A: Algorithm + Clone> {
    algorithm: A,
    ops_per_process: usize,
    max_depth: usize,
    reduction: bool,
    cache: CacheMode,
    threads: usize,
    partitioned: bool,
    record_outcomes: bool,
}

impl<A: Algorithm + Clone> Explorer<A> {
    /// Creates an explorer giving each process `ops_per_process`
    /// invocations (clamped by the algorithm's own one-shot limit).
    pub fn new(algorithm: A, ops_per_process: usize) -> Self {
        Self {
            algorithm,
            ops_per_process,
            max_depth: 100_000,
            reduction: true,
            cache: CacheMode::Fingerprint,
            threads: 1,
            partitioned: false,
            record_outcomes: false,
        }
    }

    /// Overrides the per-execution step-depth safety bound. If the
    /// bound ever fires, the report's
    /// [`depth_bounded`](ExploreReport::depth_bounded) flag records it.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Enables or disables the DPOR reduction (persistent + sleep
    /// sets). On by default; `false` reproduces plain full enumeration.
    ///
    /// # Panics
    ///
    /// [`Explorer::run`] panics if reduction is enabled for more than
    /// 64 processes (sleep sets are a process bitmask; exploration at
    /// that scale is infeasible regardless).
    pub fn with_reduction(mut self, reduction: bool) -> Self {
        self.reduction = reduction;
        self
    }

    /// Selects the state-merging cache (default
    /// [`CacheMode::Fingerprint`]).
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// Switches to partitioned parallel exploration on `threads` worker
    /// threads (clamped to ≥ 1). A deterministic BFS carves the tree
    /// into schedule-prefix work items; workers claim items atomically;
    /// results merge associatively with the lexicographically least
    /// violating schedule winning. The report — counts included — is
    /// identical for any thread count, because each work item is
    /// explored with its own state cache and items never exchange
    /// information. (That per-item isolation means partitioned counts
    /// can exceed single-tree counts when subtrees converge; the price
    /// of determinism.)
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.partitioned = true;
        self
    }

    /// Records the set of distinct terminal outcomes in the report
    /// (memory-heavy; meant for the differential tests).
    pub fn record_outcomes(mut self, record: bool) -> Self {
        self.record_outcomes = record;
        self
    }

    /// Per-process invocation limit for this exploration.
    fn limit(&self) -> usize {
        self.algorithm
            .ops_per_process()
            .unwrap_or(self.ops_per_process)
            .min(self.ops_per_process)
    }

    fn enabled(&self, sys: &System<A>) -> Vec<ProcId> {
        let limit = self.limit();
        (0..sys.config().processes())
            .filter(|&p| sys.config().procs[p].is_some() || sys.started(p) < limit)
            .collect()
    }

    /// Canonical history component of the state: completed outputs and,
    /// per pending op, its happens-before predecessors.
    #[allow(clippy::type_complexity)]
    fn canonical_history(
        sys: &System<A>,
    ) -> (
        Vec<(OpId, <A::Machine as Machine>::Output)>,
        Vec<(OpId, Vec<OpId>)>,
    ) {
        let mut completed: Vec<(OpId, <A::Machine as Machine>::Output)> = sys
            .history()
            .completed()
            .iter()
            .map(|c| (c.op, c.output.clone()))
            .collect();
        completed.sort_by_key(|(op, _)| *op);

        // For each pending (invoked, unresponded) op: which ops completed
        // before its invocation.
        let mut pending_predecessors: Vec<(OpId, Vec<OpId>)> = Vec::new();
        let responded: Vec<(OpId, u64)> = sys
            .history()
            .completed()
            .iter()
            .map(|c| (c.op, c.responded))
            .collect();
        for event in sys.history().events() {
            if let Event::Invoke { op, time } = event {
                let done = sys.history().completed().iter().any(|c| c.op == *op);
                if !done {
                    let mut preds: Vec<OpId> = responded
                        .iter()
                        .filter(|(_, t)| t < time)
                        .map(|(o, _)| *o)
                        .collect();
                    preds.sort();
                    pending_predecessors.push((*op, preds));
                }
            }
        }
        pending_predecessors.sort_by_key(|(op, _)| *op);
        (completed, pending_predecessors)
    }

    fn state_key(sys: &System<A>) -> StateKey<A::Machine> {
        let (completed, pending_predecessors) = Self::canonical_history(sys);
        StateKey {
            procs: sys.config().procs.clone(),
            regs: sys.config().regs.clone(),
            started: (0..sys.config().processes())
                .map(|p| sys.started(p))
                .collect(),
            completed,
            pending_predecessors,
        }
    }

    /// 128-bit state fingerprint: the canonical state streamed through
    /// two independently seeded hashers. No key is stored, so a revisit
    /// is detected at ~16 bytes per state; soundness rests on 128-bit
    /// collision resistance (see the module docs).
    fn fingerprint(sys: &System<A>) -> u128 {
        fn feed<A: Algorithm + Clone, H: Hasher>(sys: &System<A>, state: &mut H) {
            sys.config().procs.hash(state);
            sys.config().regs.hash(state);
            for p in 0..sys.config().processes() {
                sys.started(p).hash(state);
            }
            let (completed, pending) = Explorer::<A>::canonical_history(sys);
            completed.hash(state);
            pending.hash(state);
        }
        let mut h1 = DefaultHasher::new();
        feed(sys, &mut h1);
        let mut h2 = DefaultHasher::new();
        h2.write_u64(0x9e37_79b9_7f4a_7c15);
        feed(sys, &mut h2);
        ((h1.finish() as u128) << 64) | (h2.finish() as u128)
    }

    /// Conservative persistent set at the current state: the dependency
    /// closure of a seed process over every enabled process's *future*
    /// footprint. Seeds are tried in pid order and the smallest closure
    /// wins (ties to the lowest seed), so the choice is a pure function
    /// of the state.
    fn persistent_set(&self, sys: &System<A>, enabled: &[ProcId]) -> Vec<ProcId> {
        if enabled.len() <= 1 {
            return enabled.to_vec();
        }
        let limit = self.limit();

        // Future capability of each enabled process: may it invoke
        // fresh operations, and which registers may it still read or
        // write (None = unknown, treated as "all").
        struct FutureFootprint {
            may_invoke: bool,
            read: Option<Vec<usize>>,
            write: Option<Vec<usize>>,
        }
        fn union(a: Option<Vec<usize>>, b: Option<Vec<usize>>) -> Option<Vec<usize>> {
            match (a, b) {
                (Some(mut a), Some(b)) => {
                    a.extend(b);
                    Some(a)
                }
                _ => None,
            }
        }
        fn touches(set: &Option<Vec<usize>>, reg: usize) -> bool {
            set.as_ref().is_none_or(|regs| regs.contains(&reg))
        }

        let futures: Vec<FutureFootprint> = enabled
            .iter()
            .map(|&q| {
                let may_invoke = sys.started(q) < limit;
                let (read, write) = match sys.config().procs[q].as_ref() {
                    Some(m) if may_invoke => (
                        union(m.may_read(), self.algorithm.op_may_read(q)),
                        union(m.may_write(), self.algorithm.op_may_write(q)),
                    ),
                    Some(m) => (m.may_read(), m.may_write()),
                    None => (
                        self.algorithm.op_may_read(q),
                        self.algorithm.op_may_write(q),
                    ),
                };
                FutureFootprint {
                    may_invoke,
                    read,
                    write,
                }
            })
            .collect();
        let effects: Vec<StepEffect> = enabled.iter().map(|&q| sys.next_effect(q)).collect();

        // Does any future step of `q` (outside the candidate set)
        // conflict with `e`, the next step of a member?
        let conflicts = |e: &StepEffect, q_idx: usize| -> bool {
            let fut = &futures[q_idx];
            match e {
                // q will eventually complete an operation, and Return
                // is dependent with Invoke — an Invoke-poised member
                // pulls in everyone.
                StepEffect::Invoke => true,
                StepEffect::Return => fut.may_invoke,
                StepEffect::Read { reg } => touches(&fut.write, *reg),
                StepEffect::Write { reg } => touches(&fut.write, *reg) || touches(&fut.read, *reg),
            }
        };

        let mut best: Option<Vec<usize>> = None; // indices into `enabled`
        for seed in 0..enabled.len() {
            let mut in_set = vec![false; enabled.len()];
            in_set[seed] = true;
            let mut work = vec![seed];
            while let Some(p) = work.pop() {
                for q in 0..enabled.len() {
                    if !in_set[q] && conflicts(&effects[p], q) {
                        in_set[q] = true;
                        work.push(q);
                    }
                }
            }
            let members: Vec<usize> = (0..enabled.len()).filter(|&i| in_set[i]).collect();
            if members.len() == 1 {
                return members.into_iter().map(|i| enabled[i]).collect();
            }
            match &best {
                Some(b) if b.len() <= members.len() => {}
                _ => best = Some(members),
            }
        }
        best.expect("at least one seed")
            .into_iter()
            .map(|i| enabled[i])
            .collect()
    }

    fn sleep_mask_check(&self, n: usize) {
        assert!(
            !self.reduction || n <= 64,
            "DPOR sleep sets support at most 64 processes (got {n}); \
             disable reduction with with_reduction(false)"
        );
    }
}

/// Per-(sub)tree exploration context: one state cache, one report.
struct Ctx<'e, A: Algorithm + Clone> {
    explorer: &'e Explorer<A>,
    seen: Seen<A::Machine>,
    report: ExploreReport<<A::Machine as Machine>::Output>,
    path: Vec<ProcId>,
}

enum Seen<M: Machine> {
    None,
    Exact(HashMap<StateKey<M>, u64>),
    Fingerprint(HashMap<u128, u64>),
}

impl<M: Machine> Seen<M> {
    fn new(mode: CacheMode) -> Self {
        match mode {
            CacheMode::None => Seen::None,
            CacheMode::Exact => Seen::Exact(HashMap::new()),
            CacheMode::Fingerprint => Seen::Fingerprint(HashMap::new()),
        }
    }
}

/// Sleep-aware cache admission: prune when the stored sleep set is a
/// subset of the arriving one (everything we would explore was already
/// explored from the equivalent state); otherwise narrow the stored
/// mask to the intersection and re-expand with it, which covers both
/// visits.
fn admit<K: Eq + Hash>(map: &mut HashMap<K, u64>, key: K, sleep: u64) -> Option<u64> {
    match map.entry(key) {
        Entry::Vacant(v) => {
            v.insert(sleep);
            Some(sleep)
        }
        Entry::Occupied(mut o) => {
            let stored = *o.get();
            if stored & !sleep == 0 {
                None
            } else {
                let merged = stored & sleep;
                o.insert(merged);
                Some(merged)
            }
        }
    }
}

impl<'e, A: Algorithm + Clone> Ctx<'e, A> {
    fn new(explorer: &'e Explorer<A>, path: Vec<ProcId>) -> Self {
        Self {
            explorer,
            seen: Seen::new(explorer.cache),
            report: ExploreReport::empty(explorer.record_outcomes),
            path,
        }
    }

    fn record_terminal(&mut self, sys: &System<A>) {
        self.report.executions += 1;
        if let Some(outcomes) = self.report.outcomes.as_mut() {
            let (completed, _) = Explorer::<A>::canonical_history(sys);
            outcomes.insert(completed.into_iter().map(|(_, out)| out).collect());
        }
    }

    fn dfs(&mut self, sys: &System<A>, sleep: u64) {
        let base = self.path.len();
        self.expand(sys, sleep);
        self.path.truncate(base);
    }

    fn expand(&mut self, sys: &System<A>, sleep: u64) {
        // Outcome recording needs the *complete* reachable-outcome set,
        // so the early stop on a found violation only applies when
        // outcomes are not being collected.
        if self.report.violation.is_some() && !self.explorer.record_outcomes {
            return;
        }
        if self.path.len() >= self.explorer.max_depth {
            self.report.truncated = true;
            self.report.depth_bounded = true;
            return;
        }
        let mut enabled = self.explorer.enabled(sys);
        if enabled.is_empty() {
            self.record_terminal(sys);
            return;
        }
        let mut sleep = match &mut self.seen {
            Seen::None => sleep,
            Seen::Exact(map) => match admit(map, Explorer::<A>::state_key(sys), sleep) {
                Some(s) => s,
                None => {
                    self.report.pruned += 1;
                    return;
                }
            },
            Seen::Fingerprint(map) => match admit(map, Explorer::<A>::fingerprint(sys), sleep) {
                Some(s) => s,
                None => {
                    self.report.pruned += 1;
                    return;
                }
            },
        };
        self.report.states += 1;
        let reduction = self.explorer.reduction;

        // Commit singleton chains inline: a state whose persistent set
        // is a singleton has exactly one successor worth exploring, so
        // the whole deterministic chain is walked as part of this node —
        // no per-link state counting or caching. (Convergent paths
        // re-walk a chain instead of cache-hitting mid-chain; they
        // deduplicate at the next branching state, so the duplicated
        // work is linear in the chain length.)
        let mut chain_sys: Option<System<A>> = None;
        let domain = loop {
            let cur: &System<A> = chain_sys.as_ref().unwrap_or(sys);
            if !reduction {
                break enabled;
            }
            let domain = self.explorer.persistent_set(cur, &enabled);
            if domain.len() > 1 {
                break domain;
            }
            let pid = domain[0];
            if sleep & (1u64 << pid) != 0 {
                // The only explorable process is asleep: every
                // continuation is covered by an earlier sibling.
                self.report.sleep_skipped += 1;
                return;
            }
            if self.path.len() >= self.explorer.max_depth {
                self.report.truncated = true;
                self.report.depth_bounded = true;
                return;
            }
            let effect = cur.next_effect(pid);
            let mut next = cur.clone();
            let outcome = next.step(pid).expect("enabled process steps");
            self.report.transitions += 1;
            self.path.push(pid);
            if outcome.is_completed() {
                if let Some(property) = next.check_property() {
                    self.report.offer_violation(Violation {
                        schedule: self.path.clone(),
                        property,
                    });
                    if !self.explorer.record_outcomes {
                        return;
                    }
                }
            }
            // Sleeping processes stay asleep across independent steps
            // only (their own poised step is unchanged by pid's step).
            let mut still_asleep = 0u64;
            let mut rest = sleep;
            while rest != 0 {
                let q = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if cur.next_effect(q).independent(&effect) {
                    still_asleep |= 1u64 << q;
                }
            }
            sleep = still_asleep;
            enabled = self.explorer.enabled(&next);
            if enabled.is_empty() {
                self.record_terminal(&next);
                return;
            }
            chain_sys = Some(next);
        };
        let sys: &System<A> = chain_sys.as_ref().unwrap_or(sys);
        let mut sleep_now = sleep;
        for &pid in &domain {
            if reduction && sleep_now & (1u64 << pid) != 0 {
                self.report.sleep_skipped += 1;
                continue;
            }
            let effect = sys.next_effect(pid);
            let mut next = sys.clone();
            let outcome = next.step(pid).expect("enabled process steps");
            self.report.transitions += 1;
            self.path.push(pid);
            if outcome.is_completed() {
                if let Some(property) = next.check_property() {
                    self.report.offer_violation(Violation {
                        schedule: self.path.clone(),
                        property,
                    });
                    if !self.explorer.record_outcomes {
                        self.path.pop();
                        return;
                    }
                    // When collecting outcomes, fall through and keep
                    // exploring the violating subtree to completion.
                }
            }
            // Keep asleep only processes whose (unchanged) next step is
            // independent of the one just taken.
            let child_sleep = if sleep_now == 0 {
                0
            } else {
                let mut mask = 0u64;
                let mut rest = sleep_now;
                while rest != 0 {
                    let q = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if sys.next_effect(q).independent(&effect) {
                        mask |= 1u64 << q;
                    }
                }
                mask
            };
            self.dfs(&next, child_sleep);
            self.path.pop();
            if self.report.violation.is_some() && !self.explorer.record_outcomes {
                return;
            }
            if reduction {
                sleep_now |= 1u64 << pid;
            }
        }
    }
}

/// A schedule-prefix work item of the partitioned exploration.
struct WorkItem<A: Algorithm> {
    prefix: Vec<ProcId>,
    sys: System<A>,
    sleep: u64,
}

impl<A: Algorithm + Clone> Explorer<A> {
    /// Runs the exploration.
    ///
    /// # Panics
    ///
    /// Panics if DPOR reduction is enabled (the default) with more than
    /// 64 processes.
    pub fn run(&self) -> ExploreReport<<A::Machine as Machine>::Output>
    where
        A: Send + Sync,
        A::Machine: Send + Sync,
        <A::Machine as Machine>::Value: Send + Sync,
        <A::Machine as Machine>::Output: Send + Sync,
    {
        self.sleep_mask_check(self.algorithm.processes());
        if !self.partitioned {
            let mut ctx = Ctx::new(self, Vec::new());
            let sys = System::new(self.algorithm.clone());
            ctx.dfs(&sys, 0);
            return ctx.report;
        }
        self.run_partitioned()
    }

    /// Partitioned exploration: deterministic BFS frontier, per-item
    /// caches, associative merge. Identical output for any thread
    /// count.
    fn run_partitioned(&self) -> ExploreReport<<A::Machine as Machine>::Output>
    where
        A: Send + Sync,
        A::Machine: Send + Sync,
        <A::Machine as Machine>::Value: Send + Sync,
        <A::Machine as Machine>::Output: Send + Sync,
    {
        let mut report = ExploreReport::empty(self.record_outcomes);
        // The frontier size is a constant — NOT a function of the
        // thread count — so the work-item set, and therefore the merged
        // report, is identical no matter how many workers execute it.
        const PARTITION_TARGET: usize = 64;
        let target = PARTITION_TARGET;

        // Phase 1: breadth-first frontier in lexicographic order. No
        // state cache here (a shared cache would make counts depend on
        // expansion order); persistent/sleep sets apply as in the DFS.
        let mut queue: VecDeque<WorkItem<A>> = VecDeque::new();
        queue.push_back(WorkItem {
            prefix: Vec::new(),
            sys: System::new(self.algorithm.clone()),
            sleep: 0,
        });
        while queue.len() < target {
            let Some(item) = queue.pop_front() else { break };
            if item.prefix.len() >= self.max_depth {
                report.truncated = true;
                report.depth_bounded = true;
                continue;
            }
            let enabled = self.enabled(&item.sys);
            if enabled.is_empty() {
                report.executions += 1;
                if let Some(outcomes) = report.outcomes.as_mut() {
                    let (completed, _) = Self::canonical_history(&item.sys);
                    outcomes.insert(completed.into_iter().map(|(_, out)| out).collect());
                }
                continue;
            }
            report.states += 1;
            let reduction = self.reduction;
            let domain = if reduction {
                self.persistent_set(&item.sys, &enabled)
            } else {
                enabled
            };
            let mut sleep_now = item.sleep;
            for &pid in &domain {
                if reduction && sleep_now & (1u64 << pid) != 0 {
                    report.sleep_skipped += 1;
                    continue;
                }
                let effect = item.sys.next_effect(pid);
                let mut next = item.sys.clone();
                let outcome = next.step(pid).expect("enabled process steps");
                report.transitions += 1;
                let mut prefix = item.prefix.clone();
                prefix.push(pid);
                let mut violated = false;
                if outcome.is_completed() {
                    if let Some(property) = next.check_property() {
                        // Record the candidate; the BFS keeps going so
                        // counts stay thread-count-independent.
                        report.offer_violation(Violation {
                            schedule: prefix.clone(),
                            property,
                        });
                        violated = true;
                    }
                }
                if violated && !self.record_outcomes {
                    if reduction {
                        sleep_now |= 1u64 << pid;
                    }
                    continue;
                }
                let mut child_sleep = 0u64;
                let mut rest = sleep_now;
                while rest != 0 {
                    let q = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if item.sys.next_effect(q).independent(&effect) {
                        child_sleep |= 1u64 << q;
                    }
                }
                queue.push_back(WorkItem {
                    prefix,
                    sys: next,
                    sleep: child_sleep,
                });
                if reduction {
                    sleep_now |= 1u64 << pid;
                }
            }
        }

        // Deduplicate equivalent frontier states: keep the
        // lexicographically least prefix, intersect sleep sets (the
        // merged exploration covers both arrivals).
        let mut index: HashMap<StateKey<A::Machine>, usize> = HashMap::new();
        let mut items: Vec<WorkItem<A>> = Vec::new();
        for item in queue {
            match index.entry(Self::state_key(&item.sys)) {
                Entry::Vacant(v) => {
                    v.insert(items.len());
                    items.push(item);
                }
                Entry::Occupied(o) => {
                    items[*o.get()].sleep &= item.sleep;
                    report.pruned += 1;
                }
            }
        }

        // Phase 2: explore the items, each with a fresh cache. Items
        // never exchange information, so the merged result is a pure
        // function of the frontier — any thread count, same report.
        let run_item = |item: &WorkItem<A>| -> ExploreReport<_> {
            let mut ctx = Ctx::new(self, item.prefix.clone());
            ctx.dfs(&item.sys, item.sleep);
            ctx.report
        };
        let mut results: Vec<Option<ExploreReport<_>>> = Vec::new();
        if self.threads <= 1 || items.len() <= 1 {
            results.extend(items.iter().map(|item| Some(run_item(item))));
        } else {
            results.resize_with(items.len(), || None);
            let next = AtomicUsize::new(0);
            let items_ref = &items;
            let next_ref = &next;
            let collected: Vec<Vec<(usize, ExploreReport<_>)>> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|_| {
                        s.spawn(move |_| {
                            let mut out = Vec::new();
                            loop {
                                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                                if i >= items_ref.len() {
                                    break;
                                }
                                out.push((i, run_item(&items_ref[i])));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("exploration worker"))
                    .collect()
            })
            .expect("exploration scope");
            for (i, r) in collected.into_iter().flatten() {
                results[i] = Some(r);
            }
        }
        for result in results.into_iter().flatten() {
            report.absorb(result);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn counter_is_correct_for_two_processes() {
        let report = Explorer::new(CounterAlgorithm::new(2), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.executions > 0);
        assert!(!report.truncated);
        assert!(!report.depth_bounded);
    }

    #[test]
    fn counter_is_correct_for_three_processes() {
        let report = Explorer::new(CounterAlgorithm::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn counter_breaks_at_four_processes() {
        // A stalled writer rolls the register back; the explorer must
        // find the resulting non-monotone pair.
        let report = Explorer::new(CounterAlgorithm::new(4), 1).run();
        let violation = report.violation.expect("n=4 must violate");
        assert!(!violation.schedule.is_empty());
        // Replay the counterexample and confirm it reproduces.
        let mut sys = System::new(CounterAlgorithm::new(4));
        for &pid in &violation.schedule {
            sys.step(pid).unwrap();
        }
        assert!(sys.check_property().is_some(), "counterexample must replay");
    }

    #[test]
    fn constant_algorithm_is_caught() {
        let report = Explorer::new(ConstantAlgorithm::new(2), 1).run();
        assert!(report.violation.is_some());
    }

    #[test]
    fn pruning_kicks_in_without_reduction() {
        let report = Explorer::new(CounterAlgorithm::new(3), 1)
            .with_reduction(false)
            .run();
        assert!(report.pruned > 0, "expected state merging, got {report:?}");
    }

    #[test]
    fn reduction_explores_fewer_transitions_than_full() {
        let full = Explorer::new(CounterAlgorithm::new(3), 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .run();
        let dpor = Explorer::new(CounterAlgorithm::new(3), 1).run();
        assert!(full.violation.is_none() && dpor.violation.is_none());
        assert!(
            dpor.transitions < full.transitions,
            "DPOR {} vs full {} transitions",
            dpor.transitions,
            full.transitions
        );
    }

    #[test]
    fn exact_and_fingerprint_caches_agree() {
        for reduction in [false, true] {
            let exact = Explorer::new(CounterAlgorithm::new(3), 1)
                .with_reduction(reduction)
                .with_cache(CacheMode::Exact)
                .run();
            let fp = Explorer::new(CounterAlgorithm::new(3), 1)
                .with_reduction(reduction)
                .with_cache(CacheMode::Fingerprint)
                .run();
            assert_eq!(exact, fp, "reduction={reduction}");
        }
    }

    #[test]
    fn depth_bound_is_recorded_not_silent() {
        let report = Explorer::new(CounterAlgorithm::new(3), 1)
            .with_max_depth(3)
            .run();
        assert!(report.depth_bounded, "bound fired but was not recorded");
        assert!(report.truncated);
    }

    #[test]
    fn partitioned_mode_matches_itself_across_thread_counts() {
        let one = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(1)
            .run();
        let four = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(4)
            .run();
        assert_eq!(one, four);
        assert!(one.violation.is_some());
    }

    #[test]
    fn partitioned_violation_is_lexicographically_stable() {
        let a = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(3)
            .run();
        let b = Explorer::new(CounterAlgorithm::new(4), 1)
            .with_threads(3)
            .run();
        assert_eq!(
            a.violation.as_ref().map(|v| &v.schedule),
            b.violation.as_ref().map(|v| &v.schedule)
        );
    }
}
