//! Exhaustive interleaving exploration with state pruning.
//!
//! A purpose-grown, loom-style checker: starting from `C0`, branch on
//! every enabled process at every step, and verify the timestamp property
//! at every operation completion. Two explored states are merged when
//! they agree on everything that can influence future behaviour *and*
//! future property checks:
//!
//! - every process's machine state and invocation count,
//! - all register contents,
//! - the outputs of completed operations, and
//! - for each pending operation, the set of operations completed before
//!   its invocation (its future happens-before predecessors).
//!
//! Violations are reported with the schedule that produced them, so
//! counterexamples can be replayed with [`System::run`].

use std::collections::HashSet;
use std::hash::Hash;

use crate::algorithm::Algorithm;
use crate::history::{Event, OpId, PropertyViolation};
use crate::machine::Machine;
use crate::schedule::ProcId;
use crate::system::System;

/// A property violation found by the explorer.
#[derive(Debug, Clone)]
pub struct Violation<O> {
    /// The schedule from `C0` that produces the violation.
    pub schedule: Vec<ProcId>,
    /// The offending pair of operations.
    pub property: PropertyViolation<O>,
}

/// Exploration statistics and result.
#[derive(Debug, Clone)]
pub struct ExploreReport<O> {
    /// Number of maximal executions reached (terminal states, counting
    /// pruned subtrees once).
    pub executions: u64,
    /// Number of distinct states visited.
    pub states: u64,
    /// Number of states skipped because an equivalent one was seen.
    pub pruned: u64,
    /// First violation found, if any.
    pub violation: Option<Violation<O>>,
    /// Whether exploration hit the step-depth safety bound anywhere.
    pub truncated: bool,
}

#[derive(PartialEq, Eq, Hash)]
struct StateKey<M: Machine> {
    procs: Vec<Option<M>>,
    regs: Vec<M::Value>,
    started: Vec<usize>,
    completed: Vec<(OpId, M::Output)>,
    pending_predecessors: Vec<(OpId, Vec<OpId>)>,
}

/// Exhaustive interleaving explorer for an [`Algorithm`].
///
/// # Example
///
/// ```
/// use ts_model::{Explorer};
/// use ts_model::toy::{ConstantAlgorithm, CounterAlgorithm};
///
/// // Correct for two processes:
/// assert!(Explorer::new(CounterAlgorithm::new(2), 1).run().violation.is_none());
/// // Broken algorithm: the explorer finds the violation.
/// assert!(Explorer::new(ConstantAlgorithm::new(2), 1).run().violation.is_some());
/// ```
#[derive(Debug)]
pub struct Explorer<A: Algorithm + Clone> {
    algorithm: A,
    ops_per_process: usize,
    max_depth: usize,
}

impl<A: Algorithm + Clone> Explorer<A> {
    /// Creates an explorer giving each process `ops_per_process`
    /// invocations (clamped by the algorithm's own one-shot limit).
    pub fn new(algorithm: A, ops_per_process: usize) -> Self {
        Self {
            algorithm,
            ops_per_process,
            max_depth: 100_000,
        }
    }

    /// Overrides the per-execution step-depth safety bound.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Runs the exhaustive exploration.
    pub fn run(&self) -> ExploreReport<<A::Machine as Machine>::Output> {
        let mut ctx = Ctx {
            seen: HashSet::new(),
            report: ExploreReport {
                executions: 0,
                states: 0,
                pruned: 0,
                violation: None,
                truncated: false,
            },
            path: Vec::new(),
            ops_per_process: self.ops_per_process,
            max_depth: self.max_depth,
        };
        let sys = System::new(self.algorithm.clone());
        ctx.dfs(&sys);
        ctx.report
    }
}

struct Ctx<A: Algorithm + Clone> {
    seen: HashSet<StateKey<A::Machine>>,
    report: ExploreReport<<A::Machine as Machine>::Output>,
    path: Vec<ProcId>,
    ops_per_process: usize,
    max_depth: usize,
}

impl<A: Algorithm + Clone> Ctx<A> {
    fn enabled(&self, sys: &System<A>) -> Vec<ProcId> {
        (0..sys.config().processes())
            .filter(|&p| {
                if sys.config().procs[p].is_some() {
                    return true;
                }
                let own_limit = sys
                    .algorithm()
                    .ops_per_process()
                    .unwrap_or(self.ops_per_process);
                sys.started(p) < own_limit.min(self.ops_per_process)
            })
            .collect()
    }

    fn state_key(sys: &System<A>) -> StateKey<A::Machine> {
        let mut completed: Vec<(OpId, <A::Machine as Machine>::Output)> = sys
            .history()
            .completed()
            .iter()
            .map(|c| (c.op, c.output.clone()))
            .collect();
        completed.sort_by_key(|(op, _)| *op);

        // For each pending (invoked, unresponded) op: which ops completed
        // before its invocation.
        let mut pending_predecessors: Vec<(OpId, Vec<OpId>)> = Vec::new();
        let responded: Vec<(OpId, u64)> = sys
            .history()
            .completed()
            .iter()
            .map(|c| (c.op, c.responded))
            .collect();
        for event in sys.history().events() {
            if let Event::Invoke { op, time } = event {
                let done = sys.history().completed().iter().any(|c| c.op == *op);
                if !done {
                    let mut preds: Vec<OpId> = responded
                        .iter()
                        .filter(|(_, t)| t < time)
                        .map(|(o, _)| *o)
                        .collect();
                    preds.sort();
                    pending_predecessors.push((*op, preds));
                }
            }
        }
        pending_predecessors.sort_by_key(|(op, _)| *op);

        StateKey {
            procs: sys.config().procs.clone(),
            regs: sys.config().regs.clone(),
            started: (0..sys.config().processes())
                .map(|p| sys.started(p))
                .collect(),
            completed,
            pending_predecessors,
        }
    }

    fn dfs(&mut self, sys: &System<A>) {
        if self.report.violation.is_some() {
            return;
        }
        if self.path.len() >= self.max_depth {
            self.report.truncated = true;
            return;
        }
        let enabled = self.enabled(sys);
        if enabled.is_empty() {
            self.report.executions += 1;
            return;
        }
        let key = Self::state_key(sys);
        if !self.seen.insert(key) {
            self.report.pruned += 1;
            return;
        }
        self.report.states += 1;

        for pid in enabled {
            let mut next = sys.clone();
            let outcome = next.step(pid).expect("enabled process steps");
            self.path.push(pid);
            if outcome.is_completed() {
                if let Some(property) = next.check_property() {
                    self.report.violation = Some(Violation {
                        schedule: self.path.clone(),
                        property,
                    });
                    self.path.pop();
                    return;
                }
            }
            self.dfs(&next);
            self.path.pop();
            if self.report.violation.is_some() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn counter_is_correct_for_two_processes() {
        let report = Explorer::new(CounterAlgorithm::new(2), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.executions > 0);
        assert!(!report.truncated);
    }

    #[test]
    fn counter_is_correct_for_three_processes() {
        let report = Explorer::new(CounterAlgorithm::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn counter_breaks_at_four_processes() {
        // A stalled writer rolls the register back; the explorer must
        // find the resulting non-monotone pair.
        let report = Explorer::new(CounterAlgorithm::new(4), 1).run();
        let violation = report.violation.expect("n=4 must violate");
        assert!(!violation.schedule.is_empty());
        // Replay the counterexample and confirm it reproduces.
        let mut sys = System::new(CounterAlgorithm::new(4));
        for &pid in &violation.schedule {
            sys.step(pid).unwrap();
        }
        assert!(sys.check_property().is_some(), "counterexample must replay");
    }

    #[test]
    fn constant_algorithm_is_caught() {
        let report = Explorer::new(ConstantAlgorithm::new(2), 1).run();
        assert!(report.violation.is_some());
    }

    #[test]
    fn pruning_kicks_in() {
        let report = Explorer::new(CounterAlgorithm::new(3), 1).run();
        assert!(report.pruned > 0, "expected state merging, got {report:?}");
    }
}
