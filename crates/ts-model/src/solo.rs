//! Solo executions paused at covering points.
//!
//! The lower-bound constructions repeatedly extend a process's solo
//! execution until it either completes its `getTS()` or is *poised to
//! write outside* a protected register set `R` (at which point it covers
//! a new register). [`solo_run`] is that primitive.

use crate::algorithm::Algorithm;
use crate::machine::{Machine, Poised};
use crate::schedule::ProcId;
use crate::system::{StepOutcome, System};
use crate::ModelError;

/// How a paused solo execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoloOutcome<O> {
    /// The operation completed with `output` without ever being poised to
    /// write outside the protected set.
    Completed {
        /// The call's return value.
        output: O,
        /// Steps taken (including invocation and return).
        steps: usize,
    },
    /// The process is now poised to write register `reg`, which is
    /// outside the protected set. The write has *not* been performed;
    /// the process covers `reg`.
    CoversOutside {
        /// The newly covered register.
        reg: usize,
        /// Steps taken before pausing.
        steps: usize,
    },
    /// The step budget ran out first (indicates a non-terminating solo
    /// run — a solo-termination violation for correct algorithms).
    BudgetExhausted,
}

impl<O> SoloOutcome<O> {
    /// The covered register, if the run paused on one.
    pub fn covered(&self) -> Option<usize> {
        match self {
            SoloOutcome::CoversOutside { reg, .. } => Some(*reg),
            _ => None,
        }
    }
}

/// Runs `pid` solo (invoking an operation if idle) until it completes or
/// is about to write a register outside `inside`.
///
/// The pause happens *before* the offending write executes, leaving the
/// process covering that register — exactly the state the covering
/// arguments need.
///
/// # Errors
///
/// Propagates [`ModelError`]s from the underlying steps (e.g. scheduling
/// a one-shot process that already used its invocation).
pub fn solo_run<A: Algorithm>(
    sys: &mut System<A>,
    pid: ProcId,
    inside: &[usize],
    budget: usize,
) -> Result<SoloOutcome<<A::Machine as Machine>::Output>, ModelError> {
    let mut steps = 0usize;
    while steps < budget {
        match sys.config().poised(pid) {
            Some(Poised::Write { reg, .. }) if !inside.contains(&reg) => {
                return Ok(SoloOutcome::CoversOutside { reg, steps });
            }
            _ => {}
        }
        let outcome = sys.step(pid)?;
        steps += 1;
        if let StepOutcome::Completed { output } = outcome {
            return Ok(SoloOutcome::Completed { output, steps });
        }
    }
    Ok(SoloOutcome::BudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::CounterAlgorithm;

    #[test]
    fn solo_run_pauses_before_outside_write() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        let out = solo_run(&mut sys, 0, &[], 100).unwrap();
        assert_eq!(out.covered(), Some(0));
        // The write did not happen:
        assert_eq!(sys.config().regs[0], 0);
        // And the process covers register 0:
        assert_eq!(sys.config().covers(0), Some(0));
    }

    #[test]
    fn solo_run_completes_when_register_is_protected() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        let out = solo_run(&mut sys, 0, &[0], 100).unwrap();
        assert!(matches!(out, SoloOutcome::Completed { output: 1, .. }));
        assert_eq!(sys.config().regs[0], 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        let out = solo_run(&mut sys, 0, &[0], 1).unwrap();
        assert_eq!(out, SoloOutcome::BudgetExhausted);
    }

    #[test]
    fn resuming_a_paused_run_completes_it() {
        let mut sys = System::new(CounterAlgorithm::new(1));
        let first = solo_run(&mut sys, 0, &[], 100).unwrap();
        assert!(first.covered().is_some());
        // Now allow the write:
        let second = solo_run(&mut sys, 0, &[0], 100).unwrap();
        assert!(matches!(second, SoloOutcome::Completed { .. }));
    }
}
