//! Algorithm factories: mint a step machine per method invocation.

use crate::machine::Machine;
use crate::schedule::ProcId;

/// A timestamp algorithm expressed over the formal model.
///
/// An `Algorithm` owns the static parameters (number of processes,
/// number of registers, initial register value) and mints a fresh
/// [`Machine`] for every `getTS()` invocation. It also provides the
/// `compare` predicate on outputs — like the paper's `compare`, it must
/// not touch shared memory.
pub trait Algorithm {
    /// The step machine for one `getTS()` call.
    type Machine: Machine;

    /// Number of processes the instance is configured for.
    fn processes(&self) -> usize;

    /// Number of shared registers the instance uses.
    fn registers(&self) -> usize;

    /// The initial value of every register (the paper's `⊥`).
    fn initial_value(&self) -> <Self::Machine as Machine>::Value;

    /// Creates the machine for process `pid`'s `op_index`-th invocation
    /// (`op_index` counts from 0).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pid >= self.processes()` or if
    /// `op_index` exceeds [`Algorithm::ops_per_process`].
    fn invoke(&self, pid: ProcId, op_index: usize) -> Self::Machine;

    /// The `compare(t1, t2)` predicate on outputs.
    fn compare(
        &self,
        t1: &<Self::Machine as Machine>::Output,
        t2: &<Self::Machine as Machine>::Output,
    ) -> bool;

    /// Maximum number of `getTS()` calls per process: `Some(1)` for
    /// one-shot objects, `None` for long-lived ones.
    fn ops_per_process(&self) -> Option<usize> {
        None
    }

    /// Over-approximation of the registers *any single* `getTS()` call
    /// by `pid` may **read** (including CAS observations), from
    /// invocation to response, for every op index. `None` means
    /// "unknown — assume any register".
    ///
    /// The DPOR explorer uses this for processes that may still invoke
    /// fresh operations (their machine-level
    /// [`Machine::may_read`](crate::Machine::may_read) footprint covers
    /// only the pending call). Same soundness contract: the returned
    /// set must never miss a register a call can touch.
    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        let _ = pid;
        None
    }

    /// Over-approximation of the registers any single `getTS()` call by
    /// `pid` may **write** (including CAS installations). `None` means
    /// "unknown". Same contract as [`Algorithm::op_may_read`].
    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        let _ = pid;
        None
    }

    /// Whether completed operations of process `pid` participate in the
    /// timestamp property check. Defaults to `true` for every process.
    ///
    /// Fault-injection models override this for *adversary* processes
    /// whose "operations" are environment events (a replica crash, a
    /// resync sweep) rather than `getTS()` calls: such an op has no
    /// timestamp, so no fixed output can satisfy the property against
    /// client ops that complete both before and after it. Excluded ops
    /// still order client operations through the history (their steps
    /// interleave normally) — only property *pairs* touching them are
    /// skipped.
    fn op_observable(&self, pid: ProcId) -> bool {
        let _ = pid;
        true
    }
}

impl<A: Algorithm> Algorithm for &A {
    type Machine = A::Machine;

    fn processes(&self) -> usize {
        (**self).processes()
    }

    fn registers(&self) -> usize {
        (**self).registers()
    }

    fn initial_value(&self) -> <Self::Machine as Machine>::Value {
        (**self).initial_value()
    }

    fn invoke(&self, pid: ProcId, op_index: usize) -> Self::Machine {
        (**self).invoke(pid, op_index)
    }

    fn compare(
        &self,
        t1: &<Self::Machine as Machine>::Output,
        t2: &<Self::Machine as Machine>::Output,
    ) -> bool {
        (**self).compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        (**self).ops_per_process()
    }

    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        (**self).op_may_read(pid)
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        (**self).op_may_write(pid)
    }

    fn op_observable(&self, pid: ProcId) -> bool {
        (**self).op_observable(pid)
    }
}
