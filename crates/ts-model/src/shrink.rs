//! Counterexample shrinking: minimize a violating schedule.
//!
//! Explorer and fuzzer counterexamples contain long stretches of
//! irrelevant steps. The shrinker greedily deletes steps (and truncates
//! the tail) while the schedule still reproduces a property violation,
//! yielding a near-1-minimal schedule that reads like the paper's own
//! hand-constructed scenarios.

use crate::algorithm::Algorithm;
use crate::schedule::ProcId;
use crate::system::System;

/// Replays `schedule` from `C0`, ignoring steps that error (deleting a
/// step can orphan later ones), and reports whether the final history
/// violates the property.
pub fn reproduces<A: Algorithm + Clone>(algorithm: &A, schedule: &[ProcId]) -> bool {
    let mut sys = System::new(algorithm.clone());
    for &pid in schedule {
        let _ = sys.step(pid);
    }
    sys.check_property().is_some()
}

/// Shrinks a violating schedule by greedy deletion until 1-minimal
/// (no single step can be removed while preserving the violation).
///
/// Returns the original schedule unchanged if it does not reproduce.
pub fn shrink<A: Algorithm + Clone>(algorithm: &A, schedule: &[ProcId]) -> Vec<ProcId> {
    if !reproduces(algorithm, schedule) {
        return schedule.to_vec();
    }
    let mut current: Vec<ProcId> = schedule.to_vec();

    // First truncate the tail: the violation fires at some completion;
    // everything after is noise.
    while current.len() > 1 {
        let candidate = &current[..current.len() - 1];
        if reproduces(algorithm, candidate) {
            current.pop();
        } else {
            break;
        }
    }

    // Greedy single-step deletion to a fixed point.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if reproduces(algorithm, &candidate) {
                current = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn shrunk_schedule_still_reproduces() {
        let alg = CounterAlgorithm::new(4);
        let violation = Explorer::new(alg.clone(), 1)
            .run()
            .violation
            .expect("counter breaks at n=4");
        let shrunk = shrink(&alg, &violation.schedule);
        assert!(reproduces(&alg, &shrunk));
        assert!(shrunk.len() <= violation.schedule.len());
    }

    #[test]
    fn shrunk_schedule_is_one_minimal() {
        let alg = CounterAlgorithm::new(4);
        let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
        let shrunk = shrink(&alg, &violation.schedule);
        for i in 0..shrunk.len() {
            let mut candidate = shrunk.clone();
            candidate.remove(i);
            assert!(
                !reproduces(&alg, &candidate),
                "step {i} was removable: {shrunk:?}"
            );
        }
    }

    #[test]
    fn constant_algorithm_shrinks_to_two_completions() {
        let alg = ConstantAlgorithm::new(3);
        let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
        let shrunk = shrink(&alg, &violation.schedule);
        // Minimal: invoke+done for two processes = 4 steps.
        assert_eq!(shrunk.len(), 4, "{shrunk:?}");
    }

    #[test]
    fn non_reproducing_schedule_is_returned_unchanged() {
        let alg = CounterAlgorithm::new(2);
        let schedule = vec![0, 0, 0, 0, 1, 1, 1, 1];
        assert!(!reproduces(&alg, &schedule));
        assert_eq!(shrink(&alg, &schedule), schedule);
    }
}
