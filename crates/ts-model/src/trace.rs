//! Human-readable execution traces.
//!
//! Renders a schedule replay step by step — who invoked, read, wrote or
//! returned what — so shrunk counterexamples can be pasted straight
//! into bug reports (or compared with the paper's prose scenarios).

use std::fmt::Debug;
use std::fmt::Write as _;

use crate::algorithm::Algorithm;
use crate::machine::Machine;
use crate::schedule::ProcId;
use crate::system::{StepOutcome, System};

/// Replays `schedule` and renders one line per step.
///
/// Steps that error (e.g. scheduling an exhausted process) are rendered
/// as `(no-op)` lines rather than aborting, so partial/shrunk schedules
/// trace cleanly.
pub fn render<A: Algorithm + Clone>(algorithm: &A, schedule: &[ProcId]) -> String
where
    <A::Machine as Machine>::Value: Debug,
    <A::Machine as Machine>::Output: Debug,
{
    let mut sys = System::new(algorithm.clone());
    let mut out = String::new();
    for (i, &pid) in schedule.iter().enumerate() {
        let line = match sys.step(pid) {
            Ok(StepOutcome::Invoked { op }) => format!("p{pid} invokes getTS ({op})"),
            Ok(StepOutcome::Read { reg, value }) => {
                format!("p{pid} reads  R[{}] -> {value:?}", reg + 1)
            }
            Ok(StepOutcome::Wrote { reg, value }) => {
                format!("p{pid} writes R[{}] := {value:?}", reg + 1)
            }
            Ok(StepOutcome::Cased {
                reg,
                new,
                prior,
                success,
                ..
            }) => {
                if success {
                    format!("p{pid} CAS    R[{}] := {new:?} (was {prior:?})", reg + 1)
                } else {
                    format!("p{pid} CAS    R[{}] fails -> {prior:?}", reg + 1)
                }
            }
            Ok(StepOutcome::Completed { output }) => {
                format!("p{pid} returns {output:?}")
            }
            Err(e) => format!("p{pid} (no-op: {e})"),
        };
        let _ = writeln!(out, "{i:>4}: {line}");
    }
    if let Some(v) = sys.check_property() {
        let _ = writeln!(out, "   => VIOLATION: {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::shrink::shrink;
    use crate::toy::CounterAlgorithm;

    #[test]
    fn trace_renders_reads_writes_and_returns() {
        let alg = CounterAlgorithm::new(1);
        let trace = render(&alg, &[0, 0, 0, 0]);
        assert!(trace.contains("invokes"));
        assert!(trace.contains("reads"));
        assert!(trace.contains("writes"));
        assert!(trace.contains("returns"));
    }

    #[test]
    fn violating_trace_ends_with_the_violation() {
        let alg = CounterAlgorithm::new(4);
        let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
        let minimal = shrink(&alg, &violation.schedule);
        let trace = render(&alg, &minimal);
        assert!(trace.contains("VIOLATION"), "{trace}");
    }

    #[test]
    fn erroring_steps_render_as_noops() {
        let alg = CounterAlgorithm::new(1);
        // Second operation is not allowed (one-shot): extra steps no-op.
        let trace = render(&alg, &[0, 0, 0, 0, 0]);
        assert!(trace.contains("no-op"), "{trace}");
    }
}
