//! Configurations: process states plus register contents.

use std::collections::BTreeMap;

use crate::machine::{Machine, Poised};
use crate::schedule::ProcId;

/// A configuration `C = (s_1, ..., s_n, v_1, ..., v_m)` of the model.
///
/// Each process is either *idle* (`None` — no pending method call, the
/// paper's initial state between operations) or holds the state of its
/// pending call's [`Machine`]. Register `j` holds `regs[j]`.
///
/// Configurations support the predicates the covering arguments are built
/// from: which process covers which register, the signature, and
/// indistinguishability for a process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration<M: Machine> {
    /// Pending-call machine per process (`None` = idle).
    pub procs: Vec<Option<M>>,
    /// Register contents.
    pub regs: Vec<M::Value>,
}

impl<M: Machine> Configuration<M> {
    /// The initial configuration: all processes idle, all registers
    /// holding `initial`.
    pub fn initial(processes: usize, registers: usize, initial: M::Value) -> Self {
        Self {
            procs: vec![None; processes],
            regs: vec![initial; registers],
        }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.procs.len()
    }

    /// Number of registers.
    pub fn registers(&self) -> usize {
        self.regs.len()
    }

    /// The register process `pid` covers (is poised to write), if any.
    pub fn covers(&self, pid: ProcId) -> Option<usize> {
        self.procs[pid].as_ref().and_then(|m| m.poised().covers())
    }

    /// All processes covering some register of `set`.
    ///
    /// This is the paper's `poised(C, R)`.
    pub fn poised_on(&self, set: &[usize]) -> Vec<ProcId> {
        (0..self.processes())
            .filter(|&p| self.covers(p).is_some_and(|r| set.contains(&r)))
            .collect()
    }

    /// Processes that are idle (no pending call).
    ///
    /// Note: the paper's `idle(C)` for the one-shot construction means
    /// "still in its initial state", i.e. never invoked; track invocation
    /// counts in [`System`](crate::System) for that distinction. Here
    /// `None` means exactly "no pending call".
    pub fn idle(&self) -> Vec<ProcId> {
        (0..self.processes())
            .filter(|&p| self.procs[p].is_none())
            .collect()
    }

    /// The signature `sig(C)`: per register, the number of processes
    /// covering it.
    pub fn signature(&self) -> Vec<usize> {
        let mut sig = vec![0usize; self.registers()];
        for p in 0..self.processes() {
            if let Some(r) = self.covers(p) {
                sig[r] += 1;
            }
        }
        sig
    }

    /// Map from covered register to the processes covering it.
    pub fn covering_map(&self) -> BTreeMap<usize, Vec<ProcId>> {
        let mut map: BTreeMap<usize, Vec<ProcId>> = BTreeMap::new();
        for p in 0..self.processes() {
            if let Some(r) = self.covers(p) {
                map.entry(r).or_default().push(p);
            }
        }
        map
    }

    /// Whether `self` and `other` are indistinguishable to process `pid`:
    /// same local state and same register contents.
    pub fn indistinguishable_to(&self, other: &Self, pid: ProcId) -> bool {
        self.procs[pid] == other.procs[pid] && self.regs == other.regs
    }

    /// Whether a process is poised on a completed call (its next step is
    /// the local return).
    pub fn poised_done(&self, pid: ProcId) -> bool {
        self.procs[pid]
            .as_ref()
            .is_some_and(|m| m.poised().is_done())
    }

    /// The poised step of process `pid`, if it has a pending call.
    pub fn poised(&self, pid: ProcId) -> Option<Poised<M::Value, M::Output>> {
        self.procs[pid].as_ref().map(|m| m.poised())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::CounterMachine;

    fn covering_machine(reg: usize) -> CounterMachine {
        // A CounterMachine first reads register 0, then writes; drive it
        // past the read so that it covers its register.
        let mut m = CounterMachine::new(reg);
        m.observe(Some(0)); // deliver the read
        m
    }

    #[test]
    fn initial_configuration_is_all_idle() {
        let c: Configuration<CounterMachine> = Configuration::initial(3, 2, 0);
        assert_eq!(c.idle(), vec![0, 1, 2]);
        assert_eq!(c.signature(), vec![0, 0]);
        assert!(c.covering_map().is_empty());
    }

    #[test]
    fn signature_counts_covering_processes() {
        let mut c: Configuration<CounterMachine> = Configuration::initial(3, 2, 0);
        c.procs[0] = Some(covering_machine(1));
        c.procs[2] = Some(covering_machine(1));
        assert_eq!(c.signature(), vec![0, 2]);
        assert_eq!(c.covering_map().get(&1), Some(&vec![0, 2]));
        assert_eq!(c.poised_on(&[1]), vec![0, 2]);
        assert_eq!(c.poised_on(&[0]), Vec::<ProcId>::new());
    }

    #[test]
    fn indistinguishability_is_per_process() {
        let mut a: Configuration<CounterMachine> = Configuration::initial(2, 1, 0);
        let b = a.clone();
        a.procs[0] = Some(covering_machine(0));
        assert!(!a.indistinguishable_to(&b, 0));
        assert!(a.indistinguishable_to(&b, 1));
    }

    #[test]
    fn register_change_distinguishes_everyone() {
        let a: Configuration<CounterMachine> = Configuration::initial(2, 1, 0);
        let mut b = a.clone();
        b.regs[0] = 5;
        assert!(!a.indistinguishable_to(&b, 0));
        assert!(!a.indistinguishable_to(&b, 1));
    }
}
