//! Formal asynchronous shared-memory model.
//!
//! This crate is an executable rendition of Section 2 of Helmi, Higham,
//! Pacheco, Woelfel (PODC 2011): a system of `n` processes communicating
//! through `m` atomic read/write registers, driven by *schedules* —
//! sequences of process indices. It provides:
//!
//! - [`Machine`] / [`Algorithm`] — deterministic step machines describing
//!   one method call, and factories that mint them per invocation;
//! - [`Configuration`] — the paper's `(s_1..s_n, v_1..v_m)` tuples, with
//!   covering detection and indistinguishability;
//! - [`System`] — a configuration coupled with an invocation/response
//!   [`History`]; runs [`Schedule`]s, block-writes and solo executions;
//! - [`check_timestamp_property`] — the correctness condition for
//!   timestamp objects (ordered `getTS` calls must compare correctly);
//! - [`Explorer`] — an exhaustive interleaving explorer with state-hash
//!   pruning (a purpose-grown, loom-style checker for the paper's
//!   algorithms);
//! - [`RandomScheduler`] — seeded schedule fuzzing for configurations too
//!   large to explore exhaustively.
//!
//! The lower-bound constructions of `ts-lowerbound` drive this model
//! directly: they build coverings, perform block writes, and extend solo
//! executions until processes are poised to write outside a register set,
//! exactly as in the proofs of Lemmas 2.1, 3.1/3.2 and 4.1.
//!
//! # Example
//!
//! ```
//! use ts_model::{Algorithm, Explorer};
//! use ts_model::toy::CounterAlgorithm;
//!
//! // Exhaustively check a 2-process toy algorithm.
//! let report = Explorer::new(CounterAlgorithm::new(2), 2).run();
//! assert!(report.violation.is_none());
//! assert!(report.executions > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversary;
mod algorithm;
mod config;
mod error;
mod explore;
mod history;
mod machine;
mod pct;
pub mod program;
pub mod replay;
mod schedule;
mod shrink;
mod solo;
mod system;
pub mod toy;
pub mod trace;

pub use adversary::{RandomRunReport, RandomScheduler};
pub use algorithm::Algorithm;
pub use config::Configuration;
pub use error::ModelError;
pub use explore::{CacheMode, ExploreReport, Explorer, Violation};
pub use history::{
    check_timestamp_property, check_timestamp_property_filtered, CompletedOp, Event, History, OpId,
    PropertyViolation,
};
pub use machine::{Machine, Poised, StepEffect};
pub use pct::{PctRunReport, PctScheduler};
pub use replay::{minimized_trace, trace_from_schedule, ReplayStep, ReplayTrace, StepKind};
pub use schedule::{block_write_schedule, ProcId, Schedule};
pub use shrink::{reproduces, shrink};
pub use solo::{solo_run, SoloOutcome};
pub use system::{StepOutcome, System, SystemStepOutcome};
