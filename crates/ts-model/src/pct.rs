//! PCT-style priority scheduling (probabilistic concurrency testing).
//!
//! The uniform [`RandomScheduler`](crate::RandomScheduler) spreads its
//! probability mass over all interleavings, most of which are
//! uninteresting. PCT (Burckhardt et al., ASPLOS 2010) instead assigns
//! random *priorities* to processes and always runs the highest-priority
//! enabled one, demoting it at `d − 1` randomly chosen change points —
//! guaranteeing any bug of depth `d` is found with probability
//! `≥ 1/(n · k^{d−1})`. Depth-2 ordering bugs (like the Section 6.1
//! anomaly) are exactly its sweet spot.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::algorithm::Algorithm;
use crate::history::PropertyViolation;
use crate::machine::Machine;
use crate::schedule::ProcId;
use crate::system::System;

/// Result of one PCT run.
#[derive(Debug, Clone)]
pub struct PctRunReport<O> {
    /// Steps executed.
    pub steps: usize,
    /// The executed schedule.
    pub schedule: Vec<ProcId>,
    /// First property violation, if any.
    pub violation: Option<PropertyViolation<O>>,
}

/// A seeded PCT scheduler with `depth` priority change points.
///
/// # Example
///
/// ```
/// use ts_model::PctScheduler;
/// use ts_model::toy::CounterAlgorithm;
///
/// let report = PctScheduler::new(7, 2).run(CounterAlgorithm::new(3));
/// assert!(report.violation.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PctScheduler {
    seed: u64,
    depth: usize,
    ops_per_process: usize,
    max_steps: usize,
}

impl PctScheduler {
    /// Creates a PCT scheduler with the given seed and bug depth
    /// (`depth ≥ 1`; `depth − 1` change points are inserted).
    pub fn new(seed: u64, depth: usize) -> Self {
        Self {
            seed,
            depth: depth.max(1),
            ops_per_process: 1,
            max_steps: 1_000_000,
        }
    }

    /// Sets the number of operations per process.
    pub fn ops_per_process(mut self, ops: usize) -> Self {
        self.ops_per_process = ops;
        self
    }

    /// Runs the algorithm to quiescence under PCT scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the internal step cap (progress
    /// failure).
    pub fn run<A: Algorithm + Clone>(
        &self,
        algorithm: A,
    ) -> PctRunReport<<A::Machine as Machine>::Output> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = algorithm.processes();

        // Random initial priority order (index 0 = highest).
        let mut priorities: Vec<ProcId> = (0..n).collect();
        priorities.shuffle(&mut rng);

        // Dry run without change points to estimate the schedule length,
        // then sample the d − 1 change points within it. (PCT samples
        // change points uniformly over the run; the length is not known
        // a priori, so measure it first — deterministic per seed.)
        let dry = self.drive(algorithm.clone(), priorities.clone(), &mut Vec::new());
        let k_est = dry.steps.max(1);
        let mut change_points: Vec<usize> = (0..self.depth.saturating_sub(1))
            .map(|_| rng.random_range(0..k_est))
            .collect();
        change_points.sort_unstable();

        self.drive(algorithm, priorities, &mut change_points)
    }

    fn drive<A: Algorithm>(
        &self,
        algorithm: A,
        mut priorities: Vec<ProcId>,
        change_points: &mut Vec<usize>,
    ) -> PctRunReport<<A::Machine as Machine>::Output> {
        let mut sys = System::new(algorithm);
        let mut schedule = Vec::new();
        let mut steps = 0usize;
        loop {
            let enabled = |sys: &System<A>, p: ProcId| {
                if sys.config().procs[p].is_some() {
                    return true;
                }
                let limit = sys
                    .algorithm()
                    .ops_per_process()
                    .unwrap_or(self.ops_per_process);
                sys.started(p) < limit.min(self.ops_per_process)
            };
            let Some(&pid) = priorities.iter().find(|&&p| enabled(&sys, p)) else {
                break;
            };
            if change_points.first() == Some(&steps) {
                change_points.remove(0);
                // Demote the currently-highest enabled process.
                let pos = priorities.iter().position(|&p| p == pid).unwrap();
                let demoted = priorities.remove(pos);
                priorities.push(demoted);
                continue;
            }
            assert!(
                steps < self.max_steps,
                "PCT run exceeded {} steps — progress failure",
                self.max_steps
            );
            sys.step(pid).expect("enabled process steps");
            schedule.push(pid);
            steps += 1;
        }
        PctRunReport {
            steps,
            schedule,
            violation: sys.check_property(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn pct_runs_to_quiescence() {
        let report = PctScheduler::new(1, 3).run(CounterAlgorithm::new(4));
        assert!(report.steps > 0);
        assert_eq!(report.schedule.len(), report.steps);
    }

    #[test]
    fn pct_is_reproducible() {
        let a = PctScheduler::new(5, 3).run(CounterAlgorithm::new(4));
        let b = PctScheduler::new(5, 3).run(CounterAlgorithm::new(4));
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn pct_finds_the_counter_bug_within_a_seed_sweep() {
        // CounterAlgorithm at n = 4 needs one stalled reader plus one
        // delayed starter: a depth-3 bug (two change points). PCT should
        // hit it within a modest sweep.
        let found = (0..2000u64).any(|seed| {
            PctScheduler::new(seed, 3)
                .run(CounterAlgorithm::new(4))
                .violation
                .is_some()
        });
        assert!(found, "PCT missed the depth-3 bug in 2000 seeds");
    }

    #[test]
    fn pct_flags_constant_algorithm() {
        let found = (0..50u64).any(|seed| {
            PctScheduler::new(seed, 2)
                .run(ConstantAlgorithm::new(3))
                .violation
                .is_some()
        });
        assert!(found);
    }
}
