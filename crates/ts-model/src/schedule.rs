//! Schedules: sequences of process indices.

use std::fmt;

/// Index of a process, `0..n`.
pub type ProcId = usize;

/// A finite schedule — the paper's σ: the sequence of processes that take
/// the next steps.
///
/// # Example
///
/// ```
/// use ts_model::Schedule;
///
/// let sigma = Schedule::from(vec![0, 1, 0]);
/// let pi = Schedule::solo(2, 4); // process 2 four times
/// let combined = sigma.then(&pi);
/// assert_eq!(combined.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schedule {
    steps: Vec<ProcId>,
}

impl Schedule {
    /// The empty schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A solo schedule: `pid` repeated `steps` times.
    pub fn solo(pid: ProcId, steps: usize) -> Self {
        Self {
            steps: vec![pid; steps],
        }
    }

    /// The schedule's steps in order.
    pub fn steps(&self) -> &[ProcId] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends one step.
    pub fn push(&mut self, pid: ProcId) {
        self.steps.push(pid);
    }

    /// Concatenation `self · other` (the paper's σπ).
    pub fn then(&self, other: &Schedule) -> Schedule {
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        Schedule { steps }
    }

    /// The set of processes taking steps — the paper's `participants(σ)`.
    pub fn participants(&self) -> Vec<ProcId> {
        let mut ps: Vec<ProcId> = self.steps.clone();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Whether only processes from `allowed` appear (a "P-only" schedule).
    pub fn is_only(&self, allowed: &[ProcId]) -> bool {
        self.steps.iter().all(|p| allowed.contains(p))
    }
}

impl From<Vec<ProcId>> for Schedule {
    fn from(steps: Vec<ProcId>) -> Self {
        Self { steps }
    }
}

impl FromIterator<ProcId> for Schedule {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        Self {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<ProcId> for Schedule {
    fn extend<I: IntoIterator<Item = ProcId>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, p) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "p{p}")?;
        }
        write!(f, "⟩")
    }
}

/// The block-write schedule π_P: each process of `covering` exactly once,
/// in ascending id order (the paper's "arbitrary but fixed permutation").
pub fn block_write_schedule(covering: &[ProcId]) -> Schedule {
    let mut ps = covering.to_vec();
    ps.sort_unstable();
    ps.dedup();
    Schedule::from(ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_schedule_repeats_one_process() {
        let s = Schedule::solo(3, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.participants(), vec![3]);
        assert!(s.is_only(&[3]));
        assert!(!s.is_only(&[2]));
    }

    #[test]
    fn concatenation_preserves_order() {
        let a = Schedule::from(vec![0, 1]);
        let b = Schedule::from(vec![2]);
        assert_eq!(a.then(&b).steps(), &[0, 1, 2]);
    }

    #[test]
    fn participants_dedup_and_sort() {
        let s = Schedule::from(vec![2, 0, 2, 1, 0]);
        assert_eq!(s.participants(), vec![0, 1, 2]);
    }

    #[test]
    fn block_write_schedule_orders_by_id() {
        let s = block_write_schedule(&[4, 1, 3, 1]);
        assert_eq!(s.steps(), &[1, 3, 4]);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::empty();
        assert!(s.is_empty());
        assert!(s.participants().is_empty());
        assert!(s.is_only(&[]));
    }

    #[test]
    fn from_iterator_collects() {
        let s: Schedule = (0..3).collect();
        assert_eq!(s.steps(), &[0, 1, 2]);
    }

    #[test]
    fn display_renders_process_ids() {
        let s = Schedule::from(vec![0, 2, 1]);
        assert_eq!(s.to_string(), "⟨p0 p2 p1⟩");
        assert_eq!(Schedule::empty().to_string(), "⟨⟩");
    }

    #[test]
    fn extend_appends_steps() {
        let mut s = Schedule::solo(1, 2);
        s.extend([0, 0]);
        assert_eq!(s.steps(), &[1, 1, 0, 0]);
        s.push(2);
        assert_eq!(s.len(), 5);
    }
}
