//! Serializable schedule traces for replay against real objects.
//!
//! The explorer, the random scheduler and the PCT scheduler all produce
//! schedules — sequences of process ids — but a raw schedule is only
//! meaningful next to the algorithm that generated it. A
//! [`ReplayTrace`] bundles the schedule with everything a *replay
//! harness* needs to drive real threads along the same interleaving:
//!
//! - the algorithm label and its static parameters (`processes`,
//!   `registers`, `ops_per_process`),
//! - the step-by-step projection of the schedule ([`ReplayStep`]): who
//!   invoked, which register each shared-memory step touched, and the
//!   output of every completed call (as its `Debug` rendering, so the
//!   replayed object's outputs can be diffed against the model's),
//! - whether the modeled history violates the timestamp property
//!   (counterexample traces are the interesting ones).
//!
//! Traces serialize to JSON via the workspace `serde` stack, so model
//! counterexamples can be checked into a corpus (`tests/traces/` at the
//! workspace root) and replayed as regression tests by
//! `ts-workloads`' replay engine — see `ts_workloads::replay`.
//!
//! # Example
//!
//! ```
//! use ts_model::replay::{trace_from_schedule, ReplayTrace, StepKind};
//! use ts_model::toy::CounterAlgorithm;
//! use ts_model::{shrink, Explorer};
//!
//! // The toy counter breaks at n = 4; minimize the counterexample and
//! // export it as a trace.
//! let alg = CounterAlgorithm::new(4);
//! let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
//! let minimal = shrink(&alg, &violation.schedule);
//! let trace = trace_from_schedule(&alg, "counter", &minimal);
//! assert!(trace.violating);
//!
//! // JSON round-trip preserves the trace exactly.
//! let json = trace.to_json();
//! assert_eq!(ReplayTrace::from_json(&json).unwrap(), trace);
//! ```

use serde::{Deserialize, Serialize};

use crate::algorithm::Algorithm;
use crate::schedule::ProcId;
use crate::shrink::{reproduces, shrink};
use crate::system::{StepOutcome, System};

/// Schema tag carried by every serialized trace.
pub const TRACE_SCHEMA: &str = "ts-model/replay-trace/v1";

/// What one scheduled step did, from the replay harness's perspective.
///
/// `Invoke` and `Return` are local actions (they delimit the operation
/// interval); `Read` and `Write` are the shared-memory accesses a
/// replay controller gates one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepKind {
    /// The process invoked its next `getTS()` (local).
    Invoke,
    /// The process read a shared register.
    Read,
    /// The process wrote a shared register.
    Write,
    /// The process's pending call returned (local).
    Return,
}

/// One step of a [`ReplayTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayStep {
    /// The scheduled process.
    pub pid: usize,
    /// Which of `pid`'s operations this step belongs to (0-based
    /// invocation index — the paper's getTS-id `p.k`).
    pub op_index: usize,
    /// What the step did.
    pub kind: StepKind,
    /// Register index for `Read`/`Write` steps, `None` for local steps.
    pub reg: Option<usize>,
    /// `Debug` rendering of the call's output for `Return` steps,
    /// `None` otherwise. Replay harnesses diff the real object's
    /// outputs against this to assert deterministic reproduction.
    pub output: Option<String>,
}

/// A schedule bundled with its algorithm parameters and step-by-step
/// effects — everything a replay harness needs.
///
/// Construct with [`trace_from_schedule`] (or [`minimized_trace`] to
/// shrink a counterexample first); serialize with
/// [`ReplayTrace::to_json`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayTrace {
    /// Always [`TRACE_SCHEMA`].
    pub schema: String,
    /// Label of the generating algorithm ("collect_max",
    /// "broken_counter", ...). Replay harnesses use it to pick the real
    /// twin object.
    pub algorithm: String,
    /// Number of processes the algorithm instance was configured for.
    pub processes: usize,
    /// Number of shared registers the model used.
    pub registers: usize,
    /// Whether the modeled history violates the timestamp property —
    /// `true` for counterexample traces.
    pub violating: bool,
    /// The raw schedule (process per step), exactly as explored.
    pub schedule: Vec<usize>,
    /// The executed projection of the schedule. Steps that error in the
    /// model (e.g. scheduling an exhausted process) are omitted, so
    /// `steps.len() <= schedule.len()`.
    pub steps: Vec<ReplayStep>,
}

impl ReplayTrace {
    /// Serializes the trace as a JSON object (field order is the
    /// declaration order above, so serialization is byte-stable).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot: every field maps to a
    /// JSON-native type).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses a trace from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Number of operations the trace invokes for process `pid`.
    pub fn ops_for(&self, pid: usize) -> usize {
        self.steps
            .iter()
            .filter(|s| s.pid == pid && s.kind == StepKind::Invoke)
            .count()
    }

    /// Operations that complete within the trace, as `(pid, op_index)`
    /// in response order.
    pub fn completed_ops(&self) -> Vec<(usize, usize)> {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Return)
            .map(|s| (s.pid, s.op_index))
            .collect()
    }

    /// Light well-formedness check: schema tag, pid ranges, and the
    /// per-process step grammar (every `Read`/`Write`/`Return` belongs
    /// to a previously invoked, not-yet-returned op).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed aspect found.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!(
                "schema mismatch: expected {TRACE_SCHEMA:?}, got {:?}",
                self.schema
            ));
        }
        if self.processes == 0 {
            return Err("trace has zero processes".into());
        }
        let mut open: Vec<Option<usize>> = vec![None; self.processes];
        let mut invoked: Vec<usize> = vec![0; self.processes];
        for (i, step) in self.steps.iter().enumerate() {
            if step.pid >= self.processes {
                return Err(format!("step {i}: pid {} out of range", step.pid));
            }
            match step.kind {
                StepKind::Invoke => {
                    if open[step.pid].is_some() {
                        return Err(format!("step {i}: p{} invoked while pending", step.pid));
                    }
                    if step.op_index != invoked[step.pid] {
                        return Err(format!(
                            "step {i}: p{} invoked op {} out of order",
                            step.pid, step.op_index
                        ));
                    }
                    open[step.pid] = Some(step.op_index);
                    invoked[step.pid] += 1;
                }
                StepKind::Read | StepKind::Write => {
                    if open[step.pid] != Some(step.op_index) {
                        return Err(format!("step {i}: access outside an open op"));
                    }
                    match step.reg {
                        Some(r) if r < self.registers => {}
                        other => return Err(format!("step {i}: bad register {other:?}")),
                    }
                }
                StepKind::Return => {
                    if open[step.pid] != Some(step.op_index) {
                        return Err(format!("step {i}: return outside an open op"));
                    }
                    if step.output.is_none() {
                        return Err(format!("step {i}: return without an output"));
                    }
                    open[step.pid] = None;
                }
            }
        }
        Ok(())
    }
}

/// Replays `schedule` on the model and records every step's effect as a
/// [`ReplayTrace`].
///
/// Steps that error in the model (scheduling an exhausted process) are
/// skipped, mirroring [`shrink`]'s replay semantics, so shrunk and
/// hand-written schedules project cleanly.
pub fn trace_from_schedule<A: Algorithm + Clone>(
    algorithm: &A,
    name: &str,
    schedule: &[ProcId],
) -> ReplayTrace {
    let mut sys = System::new(algorithm.clone());
    let mut steps = Vec::with_capacity(schedule.len());
    let mut pending_op: Vec<usize> = vec![0; algorithm.processes()];
    for &pid in schedule {
        let outcome = match sys.step(pid) {
            Ok(outcome) => outcome,
            Err(_) => continue,
        };
        let step = match outcome {
            StepOutcome::Invoked { op } => {
                pending_op[pid] = op.op_index;
                ReplayStep {
                    pid,
                    op_index: op.op_index,
                    kind: StepKind::Invoke,
                    reg: None,
                    output: None,
                }
            }
            StepOutcome::Read { reg, .. } => ReplayStep {
                pid,
                op_index: pending_op[pid],
                kind: StepKind::Read,
                reg: Some(reg),
                output: None,
            },
            StepOutcome::Wrote { reg, .. } => ReplayStep {
                pid,
                op_index: pending_op[pid],
                kind: StepKind::Write,
                reg: Some(reg),
                output: None,
            },
            // A CAS projects onto the v1 step grammar by its effect: a
            // successful swap mutated the register (`Write`), a failed
            // one only observed it (`Read`). Replay controllers gate
            // one sub-step per recorded step either way, and a gated
            // replay serializes all accesses in trace order, so the
            // real CAS deterministically succeeds/fails exactly as
            // recorded.
            StepOutcome::Cased { reg, success, .. } => ReplayStep {
                pid,
                op_index: pending_op[pid],
                kind: if success {
                    StepKind::Write
                } else {
                    StepKind::Read
                },
                reg: Some(reg),
                output: None,
            },
            StepOutcome::Completed { output } => ReplayStep {
                pid,
                op_index: pending_op[pid],
                kind: StepKind::Return,
                reg: None,
                output: Some(format!("{output:?}")),
            },
        };
        steps.push(step);
    }
    ReplayTrace {
        schema: TRACE_SCHEMA.to_string(),
        algorithm: name.to_string(),
        processes: algorithm.processes(),
        registers: algorithm.registers(),
        violating: sys.check_property().is_some(),
        schedule: schedule.to_vec(),
        steps,
    }
}

/// Shrinks `schedule` to a 1-minimal violating core (when it violates)
/// and exports the result as a trace.
///
/// Non-violating schedules are exported unshrunk — shrinking is only
/// defined relative to a reproducing violation.
pub fn minimized_trace<A: Algorithm + Clone>(
    algorithm: &A,
    name: &str,
    schedule: &[ProcId],
) -> ReplayTrace {
    if reproduces(algorithm, schedule) {
        let minimal = shrink(algorithm, schedule);
        trace_from_schedule(algorithm, name, &minimal)
    } else {
        trace_from_schedule(algorithm, name, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::pct::PctScheduler;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn counter_op_projects_to_the_expected_grammar() {
        let alg = CounterAlgorithm::new(1);
        let trace = trace_from_schedule(&alg, "counter", &[0, 0, 0, 0]);
        let kinds: Vec<StepKind> = trace.steps.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                StepKind::Invoke,
                StepKind::Read,
                StepKind::Write,
                StepKind::Return
            ]
        );
        assert_eq!(trace.steps[1].reg, Some(0));
        assert_eq!(trace.steps[3].output.as_deref(), Some("1"));
        assert!(!trace.violating);
        assert_eq!(trace.ops_for(0), 1);
        assert_eq!(trace.completed_ops(), vec![(0, 0)]);
        trace.validate().expect("well-formed");
    }

    #[test]
    fn erroring_steps_are_skipped_not_recorded() {
        let alg = CounterAlgorithm::new(1);
        // One-shot: the 5th step schedules an exhausted process.
        let trace = trace_from_schedule(&alg, "counter", &[0, 0, 0, 0, 0]);
        assert_eq!(trace.schedule.len(), 5);
        assert_eq!(trace.steps.len(), 4);
    }

    #[test]
    fn explorer_counterexample_exports_as_violating_trace() {
        let alg = CounterAlgorithm::new(4);
        let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
        let trace = minimized_trace(&alg, "counter", &violation.schedule);
        assert!(trace.violating);
        assert!(trace.steps.len() <= violation.schedule.len());
        assert!(trace.completed_ops().len() >= 2, "violations need a pair");
        trace.validate().expect("well-formed");
    }

    #[test]
    fn pct_schedule_exports_and_round_trips() {
        let report = PctScheduler::new(3, 3).run(CounterAlgorithm::new(3));
        let trace = trace_from_schedule(&CounterAlgorithm::new(3), "counter", &report.schedule);
        assert!(!trace.violating);
        let json = trace.to_json();
        let back = ReplayTrace::from_json(&json).expect("parses");
        assert_eq!(back, trace);
        assert_eq!(back.to_json(), json, "serialization is byte-stable");
    }

    #[test]
    fn violating_trace_round_trips() {
        let alg = ConstantAlgorithm::new(2);
        let violation = Explorer::new(alg.clone(), 1).run().violation.unwrap();
        let trace = minimized_trace(&alg, "constant", &violation.schedule);
        assert!(trace.violating);
        let back = ReplayTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        let alg = CounterAlgorithm::new(2);
        let good = trace_from_schedule(&alg, "counter", &[0, 0, 0, 0]);

        let mut bad = good.clone();
        bad.schema = "nope".into();
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.steps[1].pid = 9;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.steps.remove(0); // access without an invoke
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.steps[3].output = None; // return without output
        assert!(bad.validate().is_err());
    }
}
