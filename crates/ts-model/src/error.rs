//! Errors raised by the model runtime.

use std::error::Error;
use std::fmt;

use crate::schedule::ProcId;

/// An invalid operation on a model [`System`](crate::System).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A schedule referenced a process outside `0..n`.
    ProcOutOfRange {
        /// The offending process id.
        pid: ProcId,
        /// The number of processes in the system.
        processes: usize,
    },
    /// A process with no pending operation and no remaining invocations
    /// was scheduled.
    NothingToDo {
        /// The offending process id.
        pid: ProcId,
    },
    /// A machine addressed a register outside `0..m`.
    RegisterOutOfRange {
        /// The offending register index.
        reg: usize,
        /// The number of registers in the system.
        registers: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ProcOutOfRange { pid, processes } => {
                write!(f, "process p{pid} out of range (n = {processes})")
            }
            ModelError::NothingToDo { pid } => {
                write!(
                    f,
                    "process p{pid} scheduled with no pending operation and no invocations left"
                )
            }
            ModelError::RegisterOutOfRange { reg, registers } => {
                write!(f, "register r{reg} out of range (m = {registers})")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ModelError::ProcOutOfRange {
            pid: 9,
            processes: 4,
        };
        assert!(e.to_string().contains("p9"));
        let e = ModelError::NothingToDo { pid: 1 };
        assert!(e.to_string().contains("p1"));
        let e = ModelError::RegisterOutOfRange {
            reg: 5,
            registers: 2,
        };
        assert!(e.to_string().contains("r5"));
    }
}
