//! Randomized schedulers for configurations too large to explore
//! exhaustively.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algorithm::Algorithm;
use crate::history::PropertyViolation;
use crate::machine::Machine;
use crate::schedule::ProcId;
use crate::system::System;

/// Result of one randomized run.
#[derive(Debug, Clone)]
pub struct RandomRunReport<O> {
    /// Steps taken.
    pub steps: usize,
    /// Operations completed.
    pub completed_ops: usize,
    /// Registers written at least once.
    pub registers_written: usize,
    /// The schedule that was executed.
    pub schedule: Vec<ProcId>,
    /// First property violation in the final history, if any.
    pub violation: Option<PropertyViolation<O>>,
}

/// A seeded uniform random scheduler.
///
/// At every step, picks uniformly among enabled processes until every
/// process has exhausted its invocation budget and completed. Reproducible
/// from the seed, so failures can be replayed.
///
/// # Example
///
/// ```
/// use ts_model::RandomScheduler;
/// use ts_model::toy::CounterAlgorithm;
///
/// let report = RandomScheduler::new(42).ops_per_process(1).run(CounterAlgorithm::new(2));
/// assert_eq!(report.completed_ops, 2);
/// assert!(report.violation.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    seed: u64,
    ops_per_process: usize,
    max_steps: usize,
}

impl RandomScheduler {
    /// Creates a scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ops_per_process: 1,
            max_steps: 1_000_000,
        }
    }

    /// Sets how many operations each process performs (clamped by the
    /// algorithm's own one-shot limit).
    pub fn ops_per_process(mut self, ops: usize) -> Self {
        self.ops_per_process = ops;
        self
    }

    /// Sets the safety cap on total steps.
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs the algorithm to quiescence under a random schedule.
    ///
    /// # Panics
    ///
    /// Panics if the run does not finish within the step cap (a progress
    /// failure for wait-free algorithms).
    pub fn run<A: Algorithm>(
        &self,
        algorithm: A,
    ) -> RandomRunReport<<A::Machine as Machine>::Output> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sys = System::new(algorithm);
        let mut schedule = Vec::new();
        let mut steps = 0usize;
        loop {
            let enabled: Vec<ProcId> = (0..sys.config().processes())
                .filter(|&p| {
                    if sys.config().procs[p].is_some() {
                        return true;
                    }
                    let own_limit = sys
                        .algorithm()
                        .ops_per_process()
                        .unwrap_or(self.ops_per_process);
                    sys.started(p) < own_limit.min(self.ops_per_process)
                })
                .collect();
            if enabled.is_empty() {
                break;
            }
            assert!(
                steps < self.max_steps,
                "random run exceeded {} steps — progress failure",
                self.max_steps
            );
            let pid = enabled[rng.random_range(0..enabled.len())];
            sys.step(pid).expect("enabled process steps");
            schedule.push(pid);
            steps += 1;
        }
        RandomRunReport {
            steps,
            completed_ops: sys.history().completed().len(),
            registers_written: sys.registers_written(),
            schedule,
            violation: sys.check_property(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ConstantAlgorithm, CounterAlgorithm};

    #[test]
    fn random_runs_are_reproducible() {
        let a = RandomScheduler::new(7).run(CounterAlgorithm::new(3));
        let b = RandomScheduler::new(7).run(CounterAlgorithm::new(3));
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomScheduler::new(1).run(CounterAlgorithm::new(3));
        let b = RandomScheduler::new(2).run(CounterAlgorithm::new(3));
        // Not guaranteed in principle, but overwhelmingly likely; if this
        // ever flakes the seeds can be adjusted.
        assert_ne!(a.schedule, b.schedule);
    }

    #[test]
    fn constant_algorithm_violations_show_up_in_random_runs() {
        // With sequentialized completions a violation is likely but not
        // certain per seed; scan a few seeds.
        let found = (0..50).any(|seed| {
            RandomScheduler::new(seed)
                .run(ConstantAlgorithm::new(3))
                .violation
                .is_some()
        });
        assert!(found, "no seed exposed the broken algorithm");
    }

    #[test]
    fn all_ops_complete() {
        let report = RandomScheduler::new(3).run(CounterAlgorithm::new(5));
        assert_eq!(report.completed_ops, 5);
        assert_eq!(report.registers_written, 1);
    }
}
