//! Arbitrary straight-line register programs as [`Algorithm`]s.
//!
//! The differential property tests need a *family* of algorithms — not
//! just the handful of hand-written timestamp constructions — so the
//! full and DPOR explorers can be compared on randomly generated
//! programs. A [`ProgramAlgorithm`] gives each process a fixed sequence
//! of register steps ([`ProgStep`]); the call's output folds every value
//! the program observes, so any reordering two interleavings can
//! distinguish shows up in the reachable-outcome set.
//!
//! Because programs are straight-line (no branching on observed
//! values), the remaining-step footprints are *exact*, which makes this
//! family a sharp test for the persistent-set machinery: an unsound
//! footprint rule or independence classification shows up as a
//! full-vs-DPOR disagreement on violations or outcome sets.

use crate::algorithm::Algorithm;
use crate::machine::{Machine, Poised};
use crate::schedule::ProcId;

/// One step of a straight-line register program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProgStep {
    /// Read a register (the observed value is folded into the output).
    Read {
        /// Register index to read.
        reg: usize,
    },
    /// Write a constant to a register.
    Write {
        /// Register index to write.
        reg: usize,
        /// Value written.
        value: u64,
    },
    /// Compare-and-swap a register (the observed prior value is folded
    /// into the output).
    Cas {
        /// Register index to compare-and-swap.
        reg: usize,
        /// Expected prior value.
        expected: u64,
        /// Value installed on success.
        new: u64,
    },
}

impl ProgStep {
    /// The register this step touches.
    pub fn reg(&self) -> usize {
        match self {
            ProgStep::Read { reg } | ProgStep::Write { reg, .. } | ProgStep::Cas { reg, .. } => {
                *reg
            }
        }
    }

    fn observes(&self) -> bool {
        matches!(self, ProgStep::Read { .. } | ProgStep::Cas { .. })
    }

    fn mutates(&self) -> bool {
        matches!(self, ProgStep::Write { .. } | ProgStep::Cas { .. })
    }
}

/// A machine executing one straight-line program to completion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramMachine {
    steps: Vec<ProgStep>,
    pc: usize,
    acc: u64,
}

impl Machine for ProgramMachine {
    type Value = u64;
    type Output = u64;

    fn poised(&self) -> Poised<u64, u64> {
        match self.steps.get(self.pc) {
            None => Poised::Done(self.acc),
            Some(ProgStep::Read { reg }) => Poised::Read { reg: *reg },
            Some(ProgStep::Write { reg, value }) => Poised::Write {
                reg: *reg,
                value: *value,
            },
            Some(ProgStep::Cas { reg, expected, new }) => Poised::Cas {
                reg: *reg,
                expected: *expected,
                new: *new,
            },
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        let step = &self.steps[self.pc];
        match (step.observes(), observed) {
            (true, Some(value)) => {
                // Order-sensitive fold: distinct observation sequences
                // give distinct outputs (up to 64-bit collisions), so
                // the outcome set distinguishes interleavings.
                self.acc = self.acc.wrapping_mul(1_000_003).wrapping_add(value);
            }
            (false, None) => {}
            (expects, got) => panic!(
                "observation mismatch at pc {}: expects_value={expects}, got {got:?}",
                self.pc
            ),
        }
        self.pc += 1;
    }

    // Straight-line programs make the remaining footprints exact.
    fn may_read(&self) -> Option<Vec<usize>> {
        Some(
            self.steps[self.pc.min(self.steps.len())..]
                .iter()
                .filter(|s| s.observes())
                .map(ProgStep::reg)
                .collect(),
        )
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(
            self.steps[self.pc.min(self.steps.len())..]
                .iter()
                .filter(|s| s.mutates())
                .map(ProgStep::reg)
                .collect(),
        )
    }
}

/// A one-shot algorithm assigning each process a fixed program.
///
/// The output of process `p`'s call starts from the accumulator seed
/// `p + 1` and folds every observed value; [`Algorithm::compare`] is
/// `<` on the folded outputs, so random programs frequently violate the
/// timestamp property — by design: the differential tests need both
/// violating and non-violating instances.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramAlgorithm {
    registers: usize,
    programs: Vec<Vec<ProgStep>>,
}

impl ProgramAlgorithm {
    /// Creates the algorithm from one program per process.
    ///
    /// # Panics
    ///
    /// Panics if any step names a register `>= registers`.
    pub fn new(registers: usize, programs: Vec<Vec<ProgStep>>) -> Self {
        for program in &programs {
            for step in program {
                assert!(
                    step.reg() < registers,
                    "step {step:?} out of range (m = {registers})"
                );
            }
        }
        Self {
            registers,
            programs,
        }
    }

    /// The programs, for shrinking/reporting.
    pub fn programs(&self) -> &[Vec<ProgStep>] {
        &self.programs
    }
}

impl Algorithm for ProgramAlgorithm {
    type Machine = ProgramMachine;

    fn processes(&self) -> usize {
        self.programs.len()
    }

    fn registers(&self) -> usize {
        self.registers
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> ProgramMachine {
        ProgramMachine {
            steps: self.programs[pid].clone(),
            pc: 0,
            acc: pid as u64 + 1,
        }
    }

    fn compare(&self, t1: &u64, t2: &u64) -> bool {
        t1 < t2
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(1)
    }

    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        Some(
            self.programs[pid]
                .iter()
                .filter(|s| s.observes())
                .map(ProgStep::reg)
                .collect(),
        )
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        Some(
            self.programs[pid]
                .iter()
                .filter(|s| s.mutates())
                .map(ProgStep::reg)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{CacheMode, Explorer};

    fn check_agreement(algorithm: ProgramAlgorithm) {
        let full = Explorer::new(algorithm.clone(), 1)
            .with_reduction(false)
            .with_cache(CacheMode::Exact)
            .record_outcomes(true)
            .run();
        let dpor = Explorer::new(algorithm, 1).record_outcomes(true).run();
        assert_eq!(
            full.violation.is_some(),
            dpor.violation.is_some(),
            "full {:?} vs dpor {:?}",
            full.violation,
            dpor.violation
        );
        assert_eq!(full.outcomes, dpor.outcomes);
    }

    #[test]
    fn disjoint_programs_agree_and_reduce() {
        // Two processes on disjoint registers: heavy reduction, same
        // verdict.
        let algorithm = ProgramAlgorithm::new(
            2,
            vec![
                vec![
                    ProgStep::Write { reg: 0, value: 1 },
                    ProgStep::Read { reg: 0 },
                ],
                vec![
                    ProgStep::Write { reg: 1, value: 2 },
                    ProgStep::Read { reg: 1 },
                ],
            ],
        );
        check_agreement(algorithm);
    }

    #[test]
    fn racing_cas_programs_agree() {
        let algorithm = ProgramAlgorithm::new(
            1,
            vec![
                vec![ProgStep::Cas {
                    reg: 0,
                    expected: 0,
                    new: 7,
                }],
                vec![
                    ProgStep::Read { reg: 0 },
                    ProgStep::Cas {
                        reg: 0,
                        expected: 7,
                        new: 9,
                    },
                ],
            ],
        );
        check_agreement(algorithm);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_are_checked() {
        ProgramAlgorithm::new(1, vec![vec![ProgStep::Read { reg: 3 }]]);
    }
}
