//! Invocation/response histories and the timestamp correctness property.

use std::fmt::Debug;

use crate::schedule::ProcId;

/// Identifier of one method call: process id plus per-process invocation
/// index (the paper's getTS-id `p.k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// The invoking process.
    pub pid: ProcId,
    /// The invocation index within that process (0-based).
    pub op_index: usize,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}.{}", self.pid, self.op_index)
    }
}

/// One event of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<O> {
    /// A method call was invoked at the given step time.
    Invoke {
        /// Which call.
        op: OpId,
        /// Global step counter at invocation.
        time: u64,
    },
    /// A method call returned `output` at the given step time.
    Respond {
        /// Which call.
        op: OpId,
        /// Global step counter at response.
        time: u64,
        /// The call's return value.
        output: O,
    },
}

/// A completed method call with its interval endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedOp<O> {
    /// Which call.
    pub op: OpId,
    /// Invocation time.
    pub invoked: u64,
    /// Response time.
    pub responded: u64,
    /// Return value.
    pub output: O,
}

impl<O> CompletedOp<O> {
    /// The paper's happens-before: `self → other` iff `self`'s response
    /// precedes `other`'s invocation.
    pub fn happens_before(&self, other: &CompletedOp<O>) -> bool {
        self.responded < other.invoked
    }
}

/// The full record of an execution's method calls.
#[derive(Debug, Clone, Default)]
pub struct History<O> {
    events: Vec<Event<O>>,
    completed: Vec<CompletedOp<O>>,
}

impl<O: Clone + Debug> History<O> {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Records an invocation.
    pub fn record_invoke(&mut self, op: OpId, time: u64) {
        self.events.push(Event::Invoke { op, time });
    }

    /// Records a response.
    pub fn record_respond(&mut self, op: OpId, time: u64, output: O) {
        self.events.push(Event::Respond {
            op,
            time,
            output: output.clone(),
        });
        let invoked = self
            .events
            .iter()
            .find_map(|e| match e {
                Event::Invoke { op: o, time } if *o == op => Some(*time),
                _ => None,
            })
            .expect("response recorded without invocation");
        self.completed.push(CompletedOp {
            op,
            invoked,
            responded: time,
            output,
        });
    }

    /// All events in order.
    pub fn events(&self) -> &[Event<O>] {
        &self.events
    }

    /// All completed calls, in response order.
    pub fn completed(&self) -> &[CompletedOp<O>] {
        &self.completed
    }

    /// All ordered pairs `(a, b)` of completed calls with `a → b`.
    pub fn happens_before_pairs(&self) -> Vec<(&CompletedOp<O>, &CompletedOp<O>)> {
        let mut pairs = Vec::new();
        for a in &self.completed {
            for b in &self.completed {
                if a.op != b.op && a.happens_before(b) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }
}

/// A violation of the timestamp property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyViolation<O> {
    /// The earlier call (its response precedes `later`'s invocation).
    pub earlier: CompletedOp<O>,
    /// The later call.
    pub later: CompletedOp<O>,
    /// `compare(earlier, later)` as computed — must be `true`.
    pub forward: bool,
    /// `compare(later, earlier)` as computed — must be `false`.
    pub backward: bool,
}

impl<O: Debug> std::fmt::Display for PropertyViolation<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {} but compare({:?}, {:?}) = {}, compare({:?}, {:?}) = {}",
            self.earlier.op,
            self.later.op,
            self.earlier.output,
            self.later.output,
            self.forward,
            self.later.output,
            self.earlier.output,
            self.backward
        )
    }
}

/// Checks the unbounded-timestamp correctness condition over a history.
///
/// For every pair of completed `getTS` calls `g1 → g2` returning `t1`,
/// `t2`: `compare(t1, t2)` must be `true` and `compare(t2, t1)` must be
/// `false`. Returns the first violation found, if any.
pub fn check_timestamp_property<O: Clone + Debug>(
    history: &History<O>,
    compare: impl Fn(&O, &O) -> bool,
) -> Option<PropertyViolation<O>> {
    check_timestamp_property_filtered(history, compare, |_| true)
}

/// [`check_timestamp_property`] restricted to the completed calls of
/// *observable* processes.
///
/// Fault-injection models schedule adversary processes (replica
/// crashes, resync sweeps) whose completions are environment events,
/// not `getTS` calls: their outputs carry no timestamp, so pairs
/// touching them are skipped. Pairs between two observable calls are
/// checked exactly as in the unfiltered variant — the adversary's steps
/// still shape the history (and can force a violation *between client
/// calls*), they just never appear as a pair endpoint themselves.
pub fn check_timestamp_property_filtered<O: Clone + Debug>(
    history: &History<O>,
    compare: impl Fn(&O, &O) -> bool,
    observable: impl Fn(ProcId) -> bool,
) -> Option<PropertyViolation<O>> {
    for (a, b) in history.happens_before_pairs() {
        if !observable(a.op.pid) || !observable(b.op.pid) {
            continue;
        }
        let forward = compare(&a.output, &b.output);
        let backward = compare(&b.output, &a.output);
        if !forward || backward {
            return Some(PropertyViolation {
                earlier: a.clone(),
                later: b.clone(),
                forward,
                backward,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(pid: ProcId, k: usize) -> OpId {
        OpId { pid, op_index: k }
    }

    #[test]
    fn happens_before_uses_interval_endpoints() {
        let mut h: History<u64> = History::new();
        h.record_invoke(op(0, 0), 0);
        h.record_respond(op(0, 0), 2, 10);
        h.record_invoke(op(1, 0), 3);
        h.record_respond(op(1, 0), 5, 20);
        let pairs = h.happens_before_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.op, op(0, 0));
    }

    #[test]
    fn overlapping_calls_are_unordered() {
        let mut h: History<u64> = History::new();
        h.record_invoke(op(0, 0), 0);
        h.record_invoke(op(1, 0), 1);
        h.record_respond(op(0, 0), 2, 10);
        h.record_respond(op(1, 0), 3, 5);
        assert!(h.happens_before_pairs().is_empty());
        assert!(check_timestamp_property(&h, |a, b| a < b).is_none());
    }

    #[test]
    fn ordered_calls_with_bad_compare_violate() {
        let mut h: History<u64> = History::new();
        h.record_invoke(op(0, 0), 0);
        h.record_respond(op(0, 0), 1, 10);
        h.record_invoke(op(1, 0), 2);
        h.record_respond(op(1, 0), 3, 10); // equal timestamp: not allowed
        let v = check_timestamp_property(&h, |a, b| a < b).expect("violation");
        assert!(!v.forward);
        assert_eq!(v.earlier.op, op(0, 0));
        assert!(v.to_string().contains("p0.0"));
    }

    #[test]
    fn symmetric_compare_is_caught_by_backward_check() {
        let mut h: History<u64> = History::new();
        h.record_invoke(op(0, 0), 0);
        h.record_respond(op(0, 0), 1, 1);
        h.record_invoke(op(1, 0), 2);
        h.record_respond(op(1, 0), 3, 2);
        // compare that says "true" both ways:
        let v = check_timestamp_property(&h, |_, _| true).expect("violation");
        assert!(v.forward);
        assert!(v.backward);
    }

    #[test]
    fn good_history_passes() {
        let mut h: History<u64> = History::new();
        for i in 0..4u64 {
            h.record_invoke(op(i as usize, 0), i * 2);
            h.record_respond(op(i as usize, 0), i * 2 + 1, i);
        }
        assert!(check_timestamp_property(&h, |a, b| a < b).is_none());
    }

    #[test]
    fn filtered_check_skips_pairs_touching_unobservable_pids() {
        let mut h: History<u64> = History::new();
        // p0 returns 10, then the "adversary" p9 completes (output 0,
        // meaningless), then p1 returns 10 — a duplicate.
        h.record_invoke(op(0, 0), 0);
        h.record_respond(op(0, 0), 1, 10);
        h.record_invoke(op(9, 0), 2);
        h.record_respond(op(9, 0), 3, 0);
        h.record_invoke(op(1, 0), 4);
        h.record_respond(op(1, 0), 5, 10);
        // Unfiltered: the first failing pair involves p9 (10 !< 0).
        let v = check_timestamp_property(&h, |a, b| a < b).expect("violation");
        assert_eq!(v.later.op, op(9, 0));
        // Filtered: p9's pairs are skipped, but the p0/p1 duplicate is
        // still caught.
        let v = check_timestamp_property_filtered(&h, |a, b| a < b, |pid| pid != 9)
            .expect("client-pair violation survives the filter");
        assert_eq!((v.earlier.op, v.later.op), (op(0, 0), op(1, 0)));
        // Filtering everything finds nothing.
        assert!(check_timestamp_property_filtered(&h, |a, b| a < b, |_| false).is_none());
    }

    #[test]
    #[should_panic(expected = "without invocation")]
    fn response_without_invocation_panics() {
        let mut h: History<u64> = History::new();
        h.record_respond(op(0, 0), 1, 0);
    }
}
