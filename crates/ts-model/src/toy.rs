//! Tiny algorithms for exercising the model itself.
//!
//! These are deliberately *not* from the paper: [`CounterAlgorithm`] is a
//! naive read-increment-write "timestamp" over a single register. It is
//! correct for up to three one-shot processes and **incorrect for four or
//! more** (a stalled writer can roll the register back, letting a later
//! call return a non-larger value), which makes it an ideal canary for
//! the exhaustive explorer: the checker must pass n ≤ 3 and find a
//! violation at n = 4.

use crate::algorithm::Algorithm;
use crate::machine::{Machine, Poised};
use crate::schedule::ProcId;

/// Phase of a [`CounterMachine`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    Start,
    Write(u64),
    Done(u64),
}

/// Step machine: read register, write `read + 1`, return `read + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterMachine {
    reg: usize,
    phase: Phase,
}

impl CounterMachine {
    /// Creates a machine operating on register `reg`.
    pub fn new(reg: usize) -> Self {
        Self {
            reg,
            phase: Phase::Start,
        }
    }
}

impl Machine for CounterMachine {
    type Value = u64;
    type Output = u64;

    fn poised(&self) -> Poised<u64, u64> {
        match &self.phase {
            Phase::Start => Poised::Read { reg: self.reg },
            Phase::Write(v) => Poised::Write {
                reg: self.reg,
                value: *v,
            },
            Phase::Done(v) => Poised::Done(*v),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        self.phase = match (&self.phase, observed) {
            (Phase::Start, Some(v)) => Phase::Write(v + 1),
            (Phase::Write(v), None) => Phase::Done(*v),
            (phase, obs) => panic!("invalid observe({obs:?}) in phase {phase:?}"),
        };
    }

    fn may_read(&self) -> Option<Vec<usize>> {
        Some(match self.phase {
            Phase::Start => vec![self.reg],
            Phase::Write(_) | Phase::Done(_) => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match self.phase {
            Phase::Start | Phase::Write(_) => vec![self.reg],
            Phase::Done(_) => vec![],
        })
    }
}

/// One-shot "timestamp" from a single shared counter register.
///
/// `getTS()` reads the register, writes `read + 1`, and returns the
/// written value; `compare` is `<`. See the module docs for why this is
/// only correct for n ≤ 3.
#[derive(Debug, Clone)]
pub struct CounterAlgorithm {
    processes: usize,
}

impl CounterAlgorithm {
    /// Creates an instance for `processes` one-shot processes.
    pub fn new(processes: usize) -> Self {
        Self { processes }
    }
}

impl Algorithm for CounterAlgorithm {
    type Machine = CounterMachine;

    fn processes(&self) -> usize {
        self.processes
    }

    fn registers(&self) -> usize {
        1
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> CounterMachine {
        assert!(pid < self.processes, "pid {pid} out of range");
        CounterMachine::new(0)
    }

    fn compare(&self, t1: &u64, t2: &u64) -> bool {
        t1 < t2
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(1)
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![0])
    }

    fn op_may_write(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![0])
    }
}

/// A blatantly broken one-shot timestamp: every call returns `0`.
///
/// Any two ordered calls violate the property; used to verify that
/// checkers and explorers detect violations at the shortest possible
/// histories.
#[derive(Debug, Clone)]
pub struct ConstantAlgorithm {
    processes: usize,
}

impl ConstantAlgorithm {
    /// Creates an instance for `processes` one-shot processes.
    pub fn new(processes: usize) -> Self {
        Self { processes }
    }
}

/// Machine for [`ConstantAlgorithm`]: immediately done with output 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstantMachine;

impl Machine for ConstantMachine {
    type Value = u64;
    type Output = u64;

    fn poised(&self) -> Poised<u64, u64> {
        Poised::Done(0)
    }

    fn observe(&mut self, _observed: Option<u64>) {
        panic!("ConstantMachine has no steps to advance past");
    }

    fn may_read(&self) -> Option<Vec<usize>> {
        Some(vec![])
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(vec![])
    }
}

impl Algorithm for ConstantAlgorithm {
    type Machine = ConstantMachine;

    fn processes(&self) -> usize {
        self.processes
    }

    fn registers(&self) -> usize {
        1
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, _pid: ProcId, _op_index: usize) -> ConstantMachine {
        ConstantMachine
    }

    fn compare(&self, t1: &u64, t2: &u64) -> bool {
        t1 < t2
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(1)
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![])
    }

    fn op_may_write(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    #[test]
    fn counter_machine_lifecycle() {
        let mut m = CounterMachine::new(0);
        assert_eq!(m.poised(), Poised::Read { reg: 0 });
        m.observe(Some(4));
        assert_eq!(m.poised(), Poised::Write { reg: 0, value: 5 });
        m.observe(None);
        assert_eq!(m.poised(), Poised::Done(5));
    }

    #[test]
    #[should_panic(expected = "invalid observe")]
    fn counter_machine_rejects_mismatched_observation() {
        let mut m = CounterMachine::new(0);
        m.observe(None); // poised on a read, must receive Some
    }

    #[test]
    fn constant_algorithm_violates_immediately() {
        let mut sys = System::new(ConstantAlgorithm::new(2));
        sys.run_solo_to_completion(0, 10).unwrap();
        sys.run_solo_to_completion(1, 10).unwrap();
        assert!(sys.check_property().is_some());
    }

    #[test]
    fn counter_algorithm_sequential_runs_are_correct() {
        let mut sys = System::new(CounterAlgorithm::new(3));
        for p in 0..3 {
            sys.run_solo_to_completion(p, 10).unwrap();
        }
        assert!(sys.check_property().is_none());
    }
}
