//! Logical clocks — the lineage the paper builds on.
//!
//! Section 1 of Helmi et al. traces timestamp objects back to Lamport's
//! happens-before relation and logical clocks (CACM 1978), their vector
//! extensions (Fidge 1988, Mattern 1989) and matrix extensions (Wuu &
//! Bernstein 1986, Sarin & Lynch 1987). Those mechanisms live in
//! *message-passing* systems; the paper's subject is their shared-memory
//! descendants. This crate implements the message-passing ancestors over
//! a small simulated event layer, so the repository covers the whole
//! family the introduction surveys:
//!
//! - [`LamportClock`] — scalar clocks: `e1 → e2 ⇒ C(e1) < C(e2)`;
//! - [`VectorClock`] — exact happens-before: `e1 → e2 ⇔ V(e1) < V(e2)`;
//! - [`MatrixClock`] — everyone's knowledge of everyone's clock, with
//!   the garbage-collection floor it was invented for;
//! - [`simulation`] — a deterministic message-passing simulator that
//!   generates event histories to validate the clock laws against true
//!   causality.
//!
//! # Example
//!
//! ```
//! use ts_clocks::VectorClock;
//!
//! let mut a = VectorClock::new(0, 2);
//! let mut b = VectorClock::new(1, 2);
//! let stamp = a.tick();            // event on process 0
//! b.observe(&stamp);               // message delivery to process 1
//! let later = b.tick();
//! assert!(stamp.happens_before(&later));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lamport;
mod matrix;
pub mod simulation;
mod vector;

pub use lamport::{LamportClock, LamportStamp};
pub use matrix::MatrixClock;
pub use vector::{VectorClock, VectorStamp};
