//! Lamport's scalar logical clock (CACM 1978).

use std::fmt;

/// A Lamport timestamp: the scalar clock value plus the issuing process
/// (the classic total-order tiebreak).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LamportStamp {
    /// Clock value `C(e)`.
    pub time: u64,
    /// Issuing process (tiebreak for the derived total order).
    pub pid: usize,
}

impl LamportStamp {
    /// The derived total order `(time, pid)` — Lamport's `⇒` relation.
    pub fn total_order(&self, other: &LamportStamp) -> std::cmp::Ordering {
        (self.time, self.pid).cmp(&(other.time, other.pid))
    }
}

impl fmt::Display for LamportStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@p{}", self.time, self.pid)
    }
}

/// One process's scalar clock.
///
/// The clock law: if event `e1` happens before `e2` then
/// `C(e1) < C(e2)`. The converse does **not** hold (that is what vector
/// clocks add).
///
/// # Example
///
/// ```
/// use ts_clocks::LamportClock;
///
/// let mut sender = LamportClock::new(0);
/// let mut receiver = LamportClock::new(1);
/// let msg = sender.tick();           // send event
/// let recv = receiver.receive(&msg); // receive event
/// assert!(msg.time < recv.time);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportClock {
    pid: usize,
    time: u64,
}

impl LamportClock {
    /// Creates the clock of process `pid`, starting at 0.
    pub fn new(pid: usize) -> Self {
        Self { pid, time: 0 }
    }

    /// The owning process.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Current clock value (the timestamp of the *last* event).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Records a local (or send) event: `C := C + 1`.
    pub fn tick(&mut self) -> LamportStamp {
        self.time += 1;
        LamportStamp {
            time: self.time,
            pid: self.pid,
        }
    }

    /// Records a receive event carrying `stamp`:
    /// `C := max(C, C_msg) + 1`.
    pub fn receive(&mut self, stamp: &LamportStamp) -> LamportStamp {
        self.time = self.time.max(stamp.time) + 1;
        LamportStamp {
            time: self.time,
            pid: self.pid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_events_count_up() {
        let mut c = LamportClock::new(3);
        assert_eq!(c.tick().time, 1);
        assert_eq!(c.tick().time, 2);
        assert_eq!(c.pid(), 3);
        assert_eq!(c.time(), 2);
    }

    #[test]
    fn receive_jumps_past_the_message() {
        let mut a = LamportClock::new(0);
        let mut b = LamportClock::new(1);
        for _ in 0..5 {
            a.tick();
        }
        let msg = a.tick(); // time 6
        let recv = b.receive(&msg);
        assert_eq!(recv.time, 7);
    }

    #[test]
    fn receive_keeps_local_lead() {
        let mut a = LamportClock::new(0);
        let mut b = LamportClock::new(1);
        for _ in 0..9 {
            b.tick();
        }
        let msg = a.tick(); // time 1
        let recv = b.receive(&msg);
        assert_eq!(recv.time, 10);
    }

    #[test]
    fn total_order_breaks_ties_by_pid() {
        let x = LamportStamp { time: 4, pid: 0 };
        let y = LamportStamp { time: 4, pid: 1 };
        assert_eq!(x.total_order(&y), std::cmp::Ordering::Less);
        assert_eq!(y.total_order(&x), std::cmp::Ordering::Greater);
        assert_eq!(x.total_order(&x), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_formats() {
        let x = LamportStamp { time: 2, pid: 5 };
        assert_eq!(x.to_string(), "2@p5");
    }
}
