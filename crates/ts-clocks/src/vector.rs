//! Vector clocks (Fidge 1988, Mattern 1989): exact happens-before.

use std::cmp::Ordering;
use std::fmt;

/// A vector timestamp: one counter per process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorStamp {
    entries: Vec<u64>,
    /// Issuing process.
    pub pid: usize,
}

impl VectorStamp {
    /// The per-process counters.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Exact happens-before: `self → other` iff `self ≤ other`
    /// component-wise and they differ.
    pub fn happens_before(&self, other: &VectorStamp) -> bool {
        assert_eq!(self.entries.len(), other.entries.len());
        let le = self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b);
        le && self.entries != other.entries
    }

    /// Whether neither stamp happens before the other.
    pub fn concurrent(&self, other: &VectorStamp) -> bool {
        !self.happens_before(other) && !other.happens_before(self) && self.entries != other.entries
    }

    /// Partial order as `PartialOrd`-style comparison.
    pub fn causal_cmp(&self, other: &VectorStamp) -> Option<Ordering> {
        if self.entries == other.entries {
            Some(Ordering::Equal)
        } else if self.happens_before(other) {
            Some(Ordering::Less)
        } else if other.happens_before(self) {
            Some(Ordering::Greater)
        } else {
            None
        }
    }
}

impl fmt::Display for VectorStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@p{}", self.entries, self.pid)
    }
}

/// One process's vector clock for an `n`-process system.
///
/// Clock law (exact, unlike Lamport's): `e1 → e2` **iff**
/// `V(e1) < V(e2)` component-wise.
///
/// # Example
///
/// ```
/// use ts_clocks::VectorClock;
///
/// let mut a = VectorClock::new(0, 3);
/// let mut b = VectorClock::new(1, 3);
/// let ea = a.tick();
/// let eb = b.tick();
/// assert!(ea.concurrent(&eb)); // independent events
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    pid: usize,
    entries: Vec<u64>,
}

impl VectorClock {
    /// Creates the clock of process `pid` in an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn new(pid: usize, n: usize) -> Self {
        assert!(pid < n, "pid {pid} out of range for {n} processes");
        Self {
            pid,
            entries: vec![0; n],
        }
    }

    /// The owning process.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Records a local or send event.
    pub fn tick(&mut self) -> VectorStamp {
        self.entries[self.pid] += 1;
        VectorStamp {
            entries: self.entries.clone(),
            pid: self.pid,
        }
    }

    /// Merges a received stamp *without* ticking (pure knowledge
    /// transfer).
    pub fn observe(&mut self, stamp: &VectorStamp) {
        assert_eq!(self.entries.len(), stamp.entries.len());
        for (mine, theirs) in self.entries.iter_mut().zip(&stamp.entries) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Records a receive event carrying `stamp`: merge then tick.
    pub fn receive(&mut self, stamp: &VectorStamp) -> VectorStamp {
        self.observe(stamp);
        self.tick()
    }

    /// The current knowledge vector.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_events_are_concurrent() {
        let mut a = VectorClock::new(0, 2);
        let mut b = VectorClock::new(1, 2);
        let ea = a.tick();
        let eb = b.tick();
        assert!(ea.concurrent(&eb));
        assert_eq!(ea.causal_cmp(&eb), None);
    }

    #[test]
    fn message_chain_orders_events() {
        let mut a = VectorClock::new(0, 3);
        let mut b = VectorClock::new(1, 3);
        let mut c = VectorClock::new(2, 3);
        let e1 = a.tick();
        let e2 = b.receive(&e1);
        let e3 = c.receive(&e2);
        assert!(e1.happens_before(&e2));
        assert!(e2.happens_before(&e3));
        assert!(e1.happens_before(&e3)); // transitivity through b
        assert_eq!(e1.causal_cmp(&e3), Some(Ordering::Less));
        assert_eq!(e3.causal_cmp(&e1), Some(Ordering::Greater));
    }

    #[test]
    fn local_successor_dominates() {
        let mut a = VectorClock::new(0, 2);
        let e1 = a.tick();
        let e2 = a.tick();
        assert!(e1.happens_before(&e2));
        assert!(!e2.happens_before(&e1));
        assert!(!e1.concurrent(&e2));
    }

    #[test]
    fn observe_merges_without_tick() {
        let mut a = VectorClock::new(0, 2);
        let mut b = VectorClock::new(1, 2);
        let ea = a.tick();
        b.observe(&ea);
        assert_eq!(b.entries(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_panics() {
        let _ = VectorClock::new(2, 2);
    }

    #[test]
    fn equal_stamps_are_not_ordered_or_concurrent() {
        let mut a = VectorClock::new(0, 2);
        let e = a.tick();
        assert!(!e.happens_before(&e));
        assert!(!e.concurrent(&e));
        assert_eq!(e.causal_cmp(&e), Some(Ordering::Equal));
    }
}
