//! A deterministic message-passing simulator for validating clock laws.
//!
//! Generates event histories — local events, sends, and (causally
//! ordered per channel) receives — while tracking *true* causality as
//! explicit predecessor sets. Clock implementations are then judged
//! against the ground truth: Lamport's law is one-directional, the
//! vector law is if-and-only-if.

use std::collections::{HashSet, VecDeque};

use crate::lamport::{LamportClock, LamportStamp};
use crate::vector::{VectorClock, VectorStamp};

/// A step of a simulation script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A local event on a process.
    Local(usize),
    /// `Send(from, to)` — a send event plus an in-flight message.
    Send(usize, usize),
    /// A receive event on a process (pops its oldest in-flight message;
    /// no-op if none is pending).
    Receive(usize),
}

/// One event of the generated history with its ground-truth causality.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event index in the history (0-based).
    pub index: usize,
    /// The process the event occurred on.
    pub pid: usize,
    /// Ground truth: indices of all events that happen-before this one.
    pub causes: HashSet<usize>,
    /// Lamport stamp assigned by the scalar clock.
    pub lamport: LamportStamp,
    /// Vector stamp assigned by the vector clock.
    pub vector: VectorStamp,
}

/// Runs a script and returns the fully stamped history.
///
/// # Panics
///
/// Panics if an action references a process `>= n`.
pub fn run(n: usize, script: &[Action]) -> Vec<Event> {
    let mut lamport: Vec<LamportClock> = (0..n).map(LamportClock::new).collect();
    let mut vector: Vec<VectorClock> = (0..n).map(|p| VectorClock::new(p, n)).collect();
    // Per-process set of events known to causally precede its next event.
    let mut known: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    // In-flight messages per receiver: (sender-causality, stamps).
    type InFlight = (HashSet<usize>, LamportStamp, VectorStamp);
    let mut channels: Vec<VecDeque<InFlight>> = vec![VecDeque::new(); n];
    let mut events = Vec::new();

    let push_event = |pid: usize,
                      causes: HashSet<usize>,
                      lamport: LamportStamp,
                      vector: VectorStamp,
                      events: &mut Vec<Event>| {
        let index = events.len();
        events.push(Event {
            index,
            pid,
            causes,
            lamport,
            vector,
        });
        index
    };

    for &action in script {
        match action {
            Action::Local(p) => {
                let ls = lamport[p].tick();
                let vs = vector[p].tick();
                let causes = known[p].clone();
                let idx = push_event(p, causes, ls, vs, &mut events);
                known[p].insert(idx);
            }
            Action::Send(from, to) => {
                let ls = lamport[from].tick();
                let vs = vector[from].tick();
                let causes = known[from].clone();
                let idx = push_event(from, causes, ls, vs.clone(), &mut events);
                known[from].insert(idx);
                channels[to].push_back((known[from].clone(), ls, vs));
            }
            Action::Receive(p) => {
                let Some((msg_causes, msg_ls, msg_vs)) = channels[p].pop_front() else {
                    continue;
                };
                let ls = lamport[p].receive(&msg_ls);
                let vs = vector[p].receive(&msg_vs);
                let mut causes = known[p].clone();
                causes.extend(msg_causes);
                let idx = push_event(p, causes.clone(), ls, vs, &mut events);
                known[p] = causes;
                known[p].insert(idx);
            }
        }
    }
    events
}

/// Checks both clock laws over a stamped history; returns the first
/// counterexample description, or `None` when all laws hold.
pub fn check_laws(events: &[Event]) -> Option<String> {
    for a in events {
        for b in events {
            if a.index == b.index {
                continue;
            }
            let truly_before = b.causes.contains(&a.index);
            // Lamport's law: e1 → e2 ⇒ C(e1) < C(e2).
            if truly_before && a.lamport.time >= b.lamport.time {
                return Some(format!(
                    "Lamport law broken: {} → {} but {} !< {}",
                    a.index, b.index, a.lamport, b.lamport
                ));
            }
            // Vector law (iff): e1 → e2 ⇔ V(e1) < V(e2).
            if truly_before != a.vector.happens_before(&b.vector) {
                return Some(format!(
                    "vector law broken between {} and {}: truth {} vs stamps {} / {}",
                    a.index, b.index, truly_before, a.vector, b.vector
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_history_obeys_both_laws() {
        let script = [
            Action::Local(0),
            Action::Send(0, 1),
            Action::Receive(1),
            Action::Send(1, 2),
            Action::Receive(2),
            Action::Local(2),
        ];
        let events = run(3, &script);
        assert_eq!(events.len(), 6);
        assert_eq!(check_laws(&events), None);
        // End-to-end causality: event 0 precedes event 5.
        assert!(events[5].causes.contains(&0));
    }

    #[test]
    fn concurrent_branches_are_unordered_in_vector_time() {
        let script = [Action::Local(0), Action::Local(1)];
        let events = run(2, &script);
        assert!(events[0].vector.concurrent(&events[1].vector));
        assert_eq!(check_laws(&events), None);
    }

    #[test]
    fn receive_without_pending_message_is_noop() {
        let events = run(2, &[Action::Receive(0), Action::Local(0)]);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn lamport_can_order_concurrent_events_but_vector_never_does() {
        // Classic asymmetry: Lamport times may order concurrent events;
        // vector stamps must not.
        let script = [
            Action::Local(0),
            Action::Local(0),
            Action::Local(1), // concurrent with both of p0's events
        ];
        let events = run(2, &script);
        assert_eq!(check_laws(&events), None);
        assert!(events[1].lamport.time > events[2].lamport.time);
        assert!(events[1].vector.concurrent(&events[2].vector));
    }

    #[test]
    fn fifo_channels_deliver_in_order() {
        let script = [
            Action::Send(0, 1),
            Action::Send(0, 1),
            Action::Receive(1),
            Action::Receive(1),
        ];
        let events = run(2, &script);
        assert_eq!(check_laws(&events), None);
        // Second receive causally includes both sends.
        assert!(events[3].causes.contains(&0));
        assert!(events[3].causes.contains(&1));
    }
}
