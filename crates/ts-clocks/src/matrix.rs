//! Matrix clocks (Wuu & Bernstein 1986, Sarin & Lynch 1987).

use std::fmt;

/// One process's matrix clock: `M[i][j]` is what this process knows of
/// process `i`'s knowledge of process `j`'s clock.
///
/// The row `M[self]` is the process's own vector clock; the column
/// minimum `min_i M[i][j]` is a *global knowledge floor* — every
/// process is known to have seen events of `j` up to that count, which
/// is exactly the discard criterion of the replicated-log/dictionary
/// problems the structure was invented for.
///
/// # Example
///
/// ```
/// use ts_clocks::MatrixClock;
///
/// let mut a = MatrixClock::new(0, 2);
/// let mut b = MatrixClock::new(1, 2);
/// a.tick();
/// let msg = a.clone();
/// b.receive(&msg);
/// // b now knows that a has seen a's first event:
/// assert_eq!(b.knowledge_of(0)[0], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixClock {
    pid: usize,
    m: Vec<Vec<u64>>,
}

impl MatrixClock {
    /// Creates the matrix clock of process `pid` in an `n`-process
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn new(pid: usize, n: usize) -> Self {
        assert!(pid < n, "pid {pid} out of range for {n} processes");
        Self {
            pid,
            m: vec![vec![0; n]; n],
        }
    }

    /// The owning process.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the system has zero processes (never true by
    /// construction, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Records a local or send event (bumps own entry of own row).
    pub fn tick(&mut self) {
        let pid = self.pid;
        self.m[pid][pid] += 1;
    }

    /// This process's own vector clock (its row).
    pub fn own_vector(&self) -> &[u64] {
        &self.m[self.pid]
    }

    /// What this process knows about process `who`'s vector clock.
    pub fn knowledge_of(&self, who: usize) -> &[u64] {
        &self.m[who]
    }

    /// Receive event: merge the sender's entire matrix, adopt the
    /// sender's row into our knowledge of the sender, then tick.
    pub fn receive(&mut self, from: &MatrixClock) {
        assert_eq!(self.len(), from.len());
        let n = self.len();
        // Component-wise max of everything we know.
        for i in 0..n {
            for j in 0..n {
                self.m[i][j] = self.m[i][j].max(from.m[i][j]);
            }
        }
        // Our own vector additionally absorbs the sender's vector.
        for j in 0..n {
            self.m[self.pid][j] = self.m[self.pid][j].max(from.m[from.pid][j]);
        }
        self.tick();
    }

    /// The global knowledge floor for process `j`'s events:
    /// `min_i M[i][j]`. Every process is known to have observed `j`'s
    /// events up to this count — records below it can be discarded.
    pub fn discard_floor(&self, j: usize) -> u64 {
        self.m.iter().map(|row| row[j]).min().unwrap_or(0)
    }
}

impl fmt::Display for MatrixClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "matrix clock of p{}:", self.pid)?;
        for row in &self.m {
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_bumps_own_diagonal() {
        let mut c = MatrixClock::new(1, 3);
        c.tick();
        c.tick();
        assert_eq!(c.own_vector(), &[0, 2, 0]);
        assert_eq!(c.knowledge_of(0), &[0, 0, 0]);
    }

    #[test]
    fn receive_transfers_knowledge() {
        let mut a = MatrixClock::new(0, 2);
        let mut b = MatrixClock::new(1, 2);
        a.tick(); // a: [1,0]
        b.receive(&a.clone());
        // b's own vector: max([0,0],[1,0]) then tick → [1,1]
        assert_eq!(b.own_vector(), &[1, 1]);
        // b's knowledge of a's vector:
        assert_eq!(b.knowledge_of(0), &[1, 0]);
    }

    #[test]
    fn discard_floor_is_min_column() {
        let mut a = MatrixClock::new(0, 2);
        let mut b = MatrixClock::new(1, 2);
        a.tick();
        // Before any communication, nobody is known to have seen a's
        // event (b's row is all-zero in a's matrix):
        assert_eq!(a.discard_floor(0), 0);
        b.receive(&a.clone());
        a.receive(&b.clone());
        // Now a knows that both itself and b have seen a's first event:
        assert_eq!(a.discard_floor(0), 1);
    }

    #[test]
    fn three_way_gossip_raises_all_floors() {
        let mut clocks: Vec<MatrixClock> = (0..3).map(|p| MatrixClock::new(p, 3)).collect();
        for c in clocks.iter_mut() {
            c.tick();
        }
        // Full gossip round: everyone sends to everyone.
        for round in 0..2 {
            for from in 0..3 {
                for to in 0..3 {
                    if from != to {
                        let snapshot = clocks[from].clone();
                        clocks[to].receive(&snapshot);
                    }
                }
            }
            let _ = round;
        }
        for j in 0..3 {
            assert!(
                clocks[0].discard_floor(j) >= 1,
                "floor for p{j} did not rise: {}",
                clocks[0]
            );
        }
    }

    #[test]
    fn display_renders_rows() {
        let c = MatrixClock::new(0, 2);
        let s = c.to_string();
        assert!(s.contains("matrix clock of p0"));
        assert!(!c.is_empty());
        assert_eq!(c.len(), 2);
    }
}
