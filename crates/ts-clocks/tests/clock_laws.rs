//! Property tests: the clock laws hold on arbitrary message-passing
//! histories.

use proptest::prelude::*;

use ts_clocks::simulation::{check_laws, run, Action};

fn arb_action(n: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..n).prop_map(Action::Local),
        (0..n, 0..n).prop_map(|(a, b)| Action::Send(a, b)),
        (0..n).prop_map(Action::Receive),
    ]
}

proptest! {
    /// Lamport's one-directional law and the vector iff-law hold on
    /// random histories of up to 5 processes and 40 actions.
    #[test]
    fn clock_laws_hold_on_random_histories(
        n in 2usize..6,
        script in proptest::collection::vec(arb_action(5), 1..40),
    ) {
        // Clamp pids into range for this n.
        let script: Vec<Action> = script
            .into_iter()
            .map(|a| match a {
                Action::Local(p) => Action::Local(p % n),
                Action::Send(a, b) => Action::Send(a % n, b % n),
                Action::Receive(p) => Action::Receive(p % n),
            })
            .collect();
        let events = run(n, &script);
        prop_assert_eq!(check_laws(&events), None);
    }

    /// Vector-stamp causality is a strict partial order on every
    /// generated history: irreflexive, asymmetric, transitive.
    #[test]
    fn vector_causality_is_a_strict_partial_order(
        script in proptest::collection::vec(arb_action(4), 1..30),
    ) {
        let events = run(4, &script);
        for a in &events {
            prop_assert!(!a.vector.happens_before(&a.vector));
            for b in &events {
                if a.vector.happens_before(&b.vector) {
                    prop_assert!(!b.vector.happens_before(&a.vector));
                    for c in &events {
                        if b.vector.happens_before(&c.vector) {
                            prop_assert!(a.vector.happens_before(&c.vector));
                        }
                    }
                }
            }
        }
    }

    /// Lamport total order (time, pid) linearizes every history
    /// consistently with causality.
    #[test]
    fn lamport_total_order_extends_causality(
        script in proptest::collection::vec(arb_action(4), 1..30),
    ) {
        let events = run(4, &script);
        for a in &events {
            for b in &events {
                if b.causes.contains(&a.index) {
                    prop_assert_eq!(
                        a.lamport.total_order(&b.lamport),
                        std::cmp::Ordering::Less
                    );
                }
            }
        }
    }
}
