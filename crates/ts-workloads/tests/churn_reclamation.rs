//! Churn reclamation stress: thread churn over the epoch backend must
//! not accumulate deferred garbage across worker generations.
//!
//! Every `CollectMax<EpochBackend>` write retires the register's old
//! heap cell through the epoch scheme; a worker life that exits mid-run
//! orphans whatever its thread had not yet reclaimed. The engine's
//! churn hook (`ts_register::reclaim::flush` after each life) adopts
//! those orphans, so outstanding garbage must stay bounded no matter
//! how many generations run — measured here with the epoch backend's
//! deferred-cell gauge rather than RSS (same signal, deterministic).

use ts_core::{CollectMax, EpochBackend};
use ts_workloads::{run_scenario, Arrival, Churn, OpMix, RunConfig, Scenario};

#[test]
fn churn_generations_do_not_grow_deferred_garbage_monotonically() {
    let scenario = Scenario {
        name: "churn",
        arrival: Arrival::ClosedLoop,
        mix: OpMix::get_ts_only(),
        churn: Some(Churn { ops_per_life: 100 }),
    };
    let cfg = RunConfig {
        threads: 3,
        ops_per_thread: 1_000,
        seed: 23,
    };

    // Each round: 3000 epoch-backed writes across 30 short-lived worker
    // threads, then a drain. If orphan handoff or the churn hook leaked,
    // outstanding garbage would ratchet up by thousands per round.
    let mut outstanding_after_round = Vec::new();
    for round in 0..4 {
        let target = CollectMax::<EpochBackend>::with_backend(cfg.threads);
        let report = run_scenario(&target, &scenario, &cfg);
        assert_eq!(report.counts.total(), 3_000, "round {round}");
        assert_eq!(report.lives, 30, "round {round}: 10 lives × 3 slots");
        drop(target); // retire the final resident cells too
        let left = ts_register::reclaim::drain(10_000);
        outstanding_after_round.push(left);
    }

    // No monotonic growth: the gauge must not increase round over round
    // across the board, and must stay far below one round's write count.
    let writes_per_round = 3_000;
    for (round, &left) in outstanding_after_round.iter().enumerate() {
        assert!(
            left < writes_per_round / 2,
            "round {round}: {left} deferred cells outstanding — churn is leaking \
             (rounds: {outstanding_after_round:?})"
        );
    }
    let first = outstanding_after_round[0];
    let last = *outstanding_after_round.last().expect("non-empty");
    assert!(
        last <= first + 200,
        "deferred garbage ratcheted up across churn rounds: {outstanding_after_round:?}"
    );
}
