//! Engine behavior tests: op accounting, arrival modes, churn lives,
//! and target coverage across backends.

use ts_core::workload::WorkloadOp;
use ts_core::{
    BoundedTimestamp, CollectMax, EpochBackend, GrowableWorkload, OneShotPool, PackedBackend,
    SimpleOneShot,
};
use ts_workloads::{catalog, run_scenario, Arrival, Churn, OpMix, RunConfig, Scenario};

fn closed(name: &'static str, mix: OpMix) -> Scenario {
    Scenario {
        name,
        arrival: Arrival::ClosedLoop,
        mix,
        churn: None,
    }
}

#[test]
fn closed_loop_accounts_every_op() {
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: 400,
        seed: 7,
    };
    for backend in ["packed", "epoch"] {
        let report = match backend {
            "packed" => {
                let t = CollectMax::<PackedBackend>::with_backend(2);
                run_scenario(&t, &closed("closed_getts", OpMix::get_ts_only()), &cfg)
            }
            _ => {
                let t = CollectMax::<EpochBackend>::with_backend(2);
                run_scenario(&t, &closed("closed_getts", OpMix::get_ts_only()), &cfg)
            }
        };
        assert_eq!(report.backend, backend);
        assert_eq!(report.counts.total(), 800);
        assert_eq!(report.counts.get_ts, 800, "pure getTS mix");
        assert_eq!(report.latency.count(), 800);
        assert_eq!(report.lives, 2, "no churn: one life per slot");
        assert!(report.throughput_ops_per_sec > 0.0);
        assert!(report.latency.max_ns() >= report.latency.percentile(99.0));
    }
}

#[test]
fn skewed_mix_executes_all_op_kinds() {
    let target = CollectMax::new(2);
    let scenario = closed(
        "closed_scan_heavy",
        OpMix::zipf(
            [WorkloadOp::Scan, WorkloadOp::GetTs, WorkloadOp::Compare],
            1.2,
        ),
    );
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: 600,
        seed: 11,
    };
    let report = run_scenario(&target, &scenario, &cfg);
    assert_eq!(report.counts.total(), 1200);
    assert!(report.counts.scan > report.counts.get_ts, "scan-heavy mix");
    assert!(report.counts.compare > 0);
    // Worker assertions double as correctness probes: a compare op on a
    // long-lived object verifies the timestamp property; reaching here
    // means none fired.
}

#[test]
fn open_loop_bursts_complete_and_measure_sojourn() {
    let target = CollectMax::new(2);
    let scenario = Scenario {
        name: "open_bursty",
        arrival: Arrival::OpenLoop {
            rate_hz: 50_000,
            burst: 8,
        },
        mix: OpMix::get_ts_only(),
        churn: None,
    };
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: 200,
        seed: 3,
    };
    let report = run_scenario(&target, &scenario, &cfg);
    assert_eq!(report.counts.total(), 400);
    assert_eq!(report.latency.count(), 400);
    // 400 ops at an aggregate 50k/s must take at least ~7ms of wall
    // clock (the arrival schedule paces the run).
    assert!(
        report.elapsed_secs >= 0.005,
        "open loop finished implausibly fast: {}s",
        report.elapsed_secs
    );
}

#[test]
fn churn_replaces_workers_and_still_accounts_everything() {
    let target = CollectMax::<EpochBackend>::with_backend(2);
    let scenario = Scenario {
        name: "churn",
        arrival: Arrival::ClosedLoop,
        mix: OpMix::get_ts_only(),
        churn: Some(Churn { ops_per_life: 50 }),
    };
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: 300,
        seed: 5,
    };
    let report = run_scenario(&target, &scenario, &cfg);
    assert_eq!(report.counts.total(), 600);
    assert_eq!(report.lives, 12, "300 ops / 50 per life × 2 slots");
}

#[test]
fn every_catalog_scenario_runs_on_every_target_kind() {
    // One brief pass of the full catalog over one target of each
    // adapter family (long-lived, growable, one-shot pool, locks).
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: 60,
        seed: 19,
    };
    for scenario in catalog(50_000, 20) {
        let collect = CollectMax::new(2);
        let r = run_scenario(&collect, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);

        let growable = GrowableWorkload::new();
        let r = run_scenario(&growable, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);

        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            2,
            64,
            Box::new(|| SimpleOneShot::<PackedBackend>::with_backend(2)),
        )
        .with_scan(Box::new(|o| {
            std::hint::black_box(o.observed_sum());
        }));
        let r = run_scenario(&pool, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);

        let bounded = OneShotPool::new(
            "bounded_oneshot",
            "epoch",
            2,
            64,
            Box::new(|| BoundedTimestamp::one_shot(2)),
        );
        let r = run_scenario(&bounded, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);

        let lock: ts_apps::FcfsLock<PackedBackend> = ts_apps::FcfsLock::new(2);
        let r = run_scenario(&lock, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);

        let pool: ts_apps::KExclusion<EpochBackend> = ts_apps::KExclusion::with_backend(2, 1);
        let r = run_scenario(&pool, &scenario, &cfg);
        assert_eq!(r.counts.total(), 120, "{}", scenario.name);
    }
}

#[test]
#[should_panic(expected = "slots")]
fn too_many_threads_for_target_is_rejected() {
    let target = CollectMax::new(2);
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 10,
        seed: 0,
    };
    let _ = run_scenario(&target, &closed("closed_getts", OpMix::get_ts_only()), &cfg);
}
