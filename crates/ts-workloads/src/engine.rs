//! The scenario engine: drives a [`WorkloadTarget`] under a
//! [`Scenario`] with `N` worker threads and reports throughput plus a
//! merged latency histogram.
//!
//! Latency semantics per arrival mode:
//!
//! - **closed loop** — each sample is the service time of one
//!   `WorkloadWorker::step` call;
//! - **open loop** — each op has a *scheduled* arrival instant derived
//!   from the aggregate rate (bursts arrive together); the sample is
//!   `completion − scheduled`, so time spent queued behind a slow op
//!   counts against every op that waited. This avoids coordinated
//!   omission: a closed loop silently stops submitting while stalled,
//!   an open loop keeps the clock running.
//!
//! Churn scenarios run each worker life on its own short-lived OS
//! thread (same slot, fresh
//! [`WorkloadWorker`](ts_core::workload::WorkloadWorker)); when a
//! life's thread
//! exits, its epoch-backend garbage is orphaned, and the supervising
//! slot thread immediately calls [`ts_register::reclaim::flush`] to
//! adopt and reclaim it — the churn hook that keeps garbage from
//! accumulating across generations.
//!
//! # Example
//!
//! ```
//! use ts_core::CollectMax;
//! use ts_workloads::engine::{run_scenario, RunConfig};
//! use ts_workloads::scenario::{Arrival, Churn, OpMix, Scenario};
//!
//! // Two threads, churning every 50 ops: 4 lives per slot.
//! let scenario = Scenario {
//!     name: "churny",
//!     arrival: Arrival::ClosedLoop,
//!     mix: OpMix::get_ts_only(),
//!     churn: Some(Churn { ops_per_life: 50 }),
//! };
//! let cfg = RunConfig { threads: 2, ops_per_thread: 200, seed: 9 };
//! let report = run_scenario(&CollectMax::new(2), &scenario, &cfg);
//! assert_eq!(report.lives, 8);
//! assert_eq!(report.counts.total(), 400);
//! assert_eq!(report.latency.count(), 400);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ts_core::workload::{WorkloadOp, WorkloadTarget};

use crate::faults::Campaign;
use crate::histogram::LatencyHistogram;
use crate::scenario::{Arrival, Scenario};

/// Per-run knobs that are not part of the traffic shape.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Concurrent worker slots (must not exceed the target's
    /// [`slots`](WorkloadTarget::slots)).
    pub threads: usize,
    /// Ops each slot performs over the whole run (summed across churn
    /// lives).
    pub ops_per_thread: u64,
    /// Base seed; every (slot, life) derives its own op-mix stream.
    pub seed: u64,
}

/// Executed operations by kind (what workers actually ran, after any
/// fallback substitution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `GetTs` ops (including substitutions for unsupported kinds).
    pub get_ts: u64,
    /// `Scan` ops.
    pub scan: u64,
    /// `Compare` ops.
    pub compare: u64,
}

impl OpCounts {
    /// Total executed ops.
    pub fn total(&self) -> u64 {
        self.get_ts + self.scan + self.compare
    }

    fn add(&mut self, op: WorkloadOp) {
        match op {
            WorkloadOp::GetTs => self.get_ts += 1,
            WorkloadOp::Scan => self.scan += 1,
            WorkloadOp::Compare => self.compare += 1,
        }
    }

    fn merge(&mut self, other: &OpCounts) {
        self.get_ts += other.get_ts;
        self.scan += other.scan;
        self.compare += other.compare;
    }
}

/// Everything measured about one (target × scenario × threads) cell.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Object label from the target.
    pub object: &'static str,
    /// Backend label from the target.
    pub backend: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Worker lives (equals `threads` without churn).
    pub lives: u64,
    /// Executed ops by kind.
    pub counts: OpCounts,
    /// Wall-clock duration of the whole run.
    pub elapsed_secs: f64,
    /// Executed ops per wall-clock second.
    pub throughput_ops_per_sec: f64,
    /// Merged per-op latency histogram (see the module docs for what a
    /// sample means per arrival mode).
    pub latency: LatencyHistogram,
}

/// Optional engine extensions: fault campaigns and the liveness
/// watchdog. [`run_scenario`] uses the default (no faults, no
/// watchdog); [`run_scenario_with`] takes explicit options.
///
/// `RunConfig` stays a plain `Copy` grid knob; anything that owns
/// state or references lives here instead.
#[derive(Debug, Default, Clone)]
pub struct EngineOptions {
    /// Fault campaign to drive alongside the scenario (see
    /// [`Campaign`]). Its events fire at global completed-op
    /// thresholds, applied in-band by the worker that crosses them.
    pub campaign: Option<Arc<Campaign>>,
    /// Liveness watchdog: if **no op completes** for this long while
    /// workers are still running, the run panics with a per-slot
    /// diagnosis (crashed replicas, stalled slots, op counts) instead
    /// of hanging. Campaign stalls of a worker subset keep the
    /// watchdog quiet — the other workers' completions feed it.
    pub watchdog: Option<Duration>,
}

/// The watchdog body: polls the completed-op pulse; on stagnation past
/// `patience`, breaks starved campaign stalls first and panics with a
/// diagnosis only if the run stays frozen with nothing left to break.
fn watchdog_loop(
    patience: Duration,
    pulse: &std::sync::atomic::AtomicU64,
    done: &AtomicBool,
    campaign: Option<&Campaign>,
    target: &dyn WorkloadTarget,
) {
    let poll = (patience / 10).max(Duration::from_millis(5));
    let mut last = pulse.load(std::sync::atomic::Ordering::Relaxed);
    let mut frozen_since = Instant::now();
    while !done.load(Ordering::SeqCst) {
        // Sleep the poll interval in short slices so a finished run
        // joins this thread promptly instead of waiting out the full
        // interval.
        let wake = Instant::now() + poll;
        while Instant::now() < wake {
            if done.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5).min(poll));
        }
        let count = pulse.load(std::sync::atomic::Ordering::Relaxed);
        if count != last {
            last = count;
            frozen_since = Instant::now();
            continue;
        }
        if frozen_since.elapsed() < patience {
            continue;
        }
        if let Some(c) = campaign {
            let stalled = c.stalled_slots();
            if !stalled.is_empty() {
                // A stall whose resume threshold the run can no longer
                // reach (everyone else finished, or the schedule
                // overran the op budget): break it rather than hang.
                eprintln!(
                    "watchdog: no op completed for {patience:?} at {count} ops; \
                     force-resuming stalled slots {stalled:?}"
                );
                c.finish();
                frozen_since = Instant::now();
                continue;
            }
        }
        let mut diagnosis = format!(
            "liveness watchdog: no op completed for {patience:?} \
             (stuck at {count} ops) on {}/{}",
            target.object(),
            target.backend(),
        );
        if let Some(c) = campaign {
            diagnosis.push_str(&format!(
                "; crashed replicas {:?}, partitioned {:?}, \
                 {} of {} fault events applied",
                c.cluster().crashed(),
                c.cluster().router().isolated(),
                c.applied().len(),
                c.schedule().events.len(),
            ));
        }
        panic!("{diagnosis}");
    }
}

/// Derives the deterministic RNG seed for one worker life.
fn life_seed(base: u64, slot: usize, life: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(slot as u64)
        .wrapping_mul(0x0000_0100_0000_01B3)
        .wrapping_add(life)
}

/// Sleeps (coarsely) then spins (finely) until `deadline`.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_millis(2) {
            std::thread::sleep(remaining - Duration::from_millis(1));
        } else {
            std::thread::yield_now();
        }
    }
}

/// One worker life: `ops` operations as `slot`, starting at global op
/// index `first_op` (relevant for open-loop arrival schedules, which
/// continue across churn lives).
#[allow(clippy::too_many_arguments)]
fn run_life(
    target: &dyn WorkloadTarget,
    scenario: &Scenario,
    cfg: &RunConfig,
    opts: &EngineOptions,
    slot: usize,
    seed: u64,
    first_op: u64,
    ops: u64,
    epoch_start: Instant,
    pulse: &std::sync::atomic::AtomicU64,
) -> (LatencyHistogram, OpCounts) {
    let mut worker = target.worker(slot);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = LatencyHistogram::new();
    let mut counts = OpCounts::default();
    let campaign = opts.campaign.as_deref();
    match scenario.arrival {
        Arrival::ClosedLoop => {
            for _ in 0..ops {
                let op = scenario.mix.sample(&mut rng);
                if let Some(c) = campaign {
                    c.before_op(slot);
                }
                let started = Instant::now();
                let actual = worker.step(op);
                hist.record(started.elapsed().as_nanos() as u64);
                counts.add(actual);
                pulse.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let Some(c) = campaign {
                    c.after_op();
                }
            }
        }
        Arrival::OpenLoop { rate_hz, burst } => {
            // One global arrival stream at the aggregate rate, dealt
            // round-robin: worker `slot` owns global indices
            // slot, slot+threads, slot+2·threads, ... so the bursts the
            // object sees are exactly `burst` arrivals wide (not
            // burst × threads, as a per-worker schedule with a shared
            // origin would produce).
            let period_ns = 1_000_000_000u128 / u128::from(rate_hz.max(1));
            let burst = u64::from(burst.max(1));
            for i in 0..ops {
                let index = slot as u64 + (first_op + i) * cfg.threads as u64;
                let group = index / burst;
                let sched_ns = (u128::from(group * burst) * period_ns).min(u128::from(u64::MAX));
                let scheduled = epoch_start + Duration::from_nanos(sched_ns as u64);
                wait_until(scheduled);
                let op = scenario.mix.sample(&mut rng);
                if let Some(c) = campaign {
                    c.before_op(slot);
                }
                let actual = worker.step(op);
                let sojourn = Instant::now().saturating_duration_since(scheduled);
                hist.record(sojourn.as_nanos() as u64);
                counts.add(actual);
                pulse.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let Some(c) = campaign {
                    c.after_op();
                }
            }
        }
    }
    (hist, counts)
}

/// Runs `scenario` against `target` with default [`EngineOptions`]
/// (no fault campaign, no watchdog) and returns the merged report.
///
/// # Panics
///
/// Panics if `cfg.threads == 0`, if the target has fewer slots than
/// `cfg.threads`, or if any worker thread panics (a worker assertion —
/// e.g. a timestamp-property violation — is a real failure).
pub fn run_scenario(
    target: &dyn WorkloadTarget,
    scenario: &Scenario,
    cfg: &RunConfig,
) -> ScenarioReport {
    run_scenario_with(target, scenario, cfg, &EngineOptions::default())
}

/// [`run_scenario`] with explicit [`EngineOptions`]: an optional fault
/// [`Campaign`] applied at global op thresholds, and an optional
/// liveness watchdog.
///
/// The watchdog observes the global completed-op pulse. If it
/// stagnates for the configured duration it first force-releases any
/// campaign stall gates still pending (a schedule whose resume
/// threshold the run can no longer reach would otherwise park a worker
/// forever) and notes it on stderr; if the pulse stays frozen with no
/// stall left to break, it panics with a diagnosis — op counts,
/// crashed replicas, partitioned replicas, stalled slots — instead of
/// letting the run hang silently.
pub fn run_scenario_with(
    target: &dyn WorkloadTarget,
    scenario: &Scenario,
    cfg: &RunConfig,
    opts: &EngineOptions,
) -> ScenarioReport {
    assert!(cfg.threads >= 1, "need at least one worker thread");
    assert!(
        target.slots() >= cfg.threads,
        "target {} has {} slots but {} threads requested",
        target.object(),
        target.slots(),
        cfg.threads
    );
    let epoch_start = Instant::now();
    let pulse = std::sync::atomic::AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let (per_slot, run_elapsed): (Vec<(LatencyHistogram, OpCounts, u64)>, Duration) =
        std::thread::scope(|s| {
            let watchdog = opts.watchdog.map(|patience| {
                let pulse = &pulse;
                let done = &done;
                let campaign = opts.campaign.clone();
                s.spawn(move || watchdog_loop(patience, pulse, done, campaign.as_deref(), target))
            });
            let handles: Vec<_> = (0..cfg.threads)
                .map(|slot| {
                    let pulse = &pulse;
                    s.spawn(move || {
                        let mut hist = LatencyHistogram::new();
                        let mut counts = OpCounts::default();
                        let mut lives = 0u64;
                        match scenario.churn {
                            None => {
                                let (h, c) = run_life(
                                    target,
                                    scenario,
                                    cfg,
                                    opts,
                                    slot,
                                    life_seed(cfg.seed, slot, 0),
                                    0,
                                    cfg.ops_per_thread,
                                    epoch_start,
                                    pulse,
                                );
                                hist.merge(&h);
                                counts.merge(&c);
                                lives = 1;
                            }
                            Some(churn) => {
                                let per_life = churn.ops_per_life.max(1);
                                let mut done = 0u64;
                                while done < cfg.ops_per_thread {
                                    let ops = per_life.min(cfg.ops_per_thread - done);
                                    let seed = life_seed(cfg.seed, slot, lives);
                                    // A real OS thread per life: its exit is
                                    // what hands epoch garbage to the orphan
                                    // stack.
                                    let (h, c) = std::thread::scope(|life| {
                                        life.spawn(move || {
                                            run_life(
                                                target,
                                                scenario,
                                                cfg,
                                                opts,
                                                slot,
                                                seed,
                                                done,
                                                ops,
                                                epoch_start,
                                                pulse,
                                            )
                                        })
                                        .join()
                                        .expect("worker life panicked")
                                    });
                                    hist.merge(&h);
                                    counts.merge(&c);
                                    // Churn hook: adopt + reclaim the exited
                                    // life's orphaned garbage now.
                                    ts_register::reclaim::flush();
                                    done += ops;
                                    lives += 1;
                                }
                            }
                        }
                        (hist, counts, lives)
                    })
                })
                .collect();
            // Set `done` even when a worker's join panics and this closure
            // unwinds — otherwise the watchdog thread would keep the scope
            // alive forever while the panic waits to propagate.
            struct DoneGuard<'a>(&'a AtomicBool);
            impl Drop for DoneGuard<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::SeqCst);
                }
            }
            let _done_guard = DoneGuard(&done);
            let per_slot: Vec<(LatencyHistogram, OpCounts, u64)> = handles
                .into_iter()
                .map(|h| h.join().expect("worker slot panicked"))
                .collect();
            // The run's wall time ends when the last worker finishes — not
            // when the watchdog thread wakes from its coarse poll sleep
            // (patience/10, seconds at bench patience) to observe `done`.
            // Measuring after that join would quantize every watchdog-armed
            // run's elapsed time (and deflate its throughput) to the poll
            // interval.
            let run_elapsed = epoch_start.elapsed();
            done.store(true, Ordering::SeqCst);
            if let Some(w) = watchdog {
                w.join().expect("watchdog panicked");
            }
            (per_slot, run_elapsed)
        });
    if let Some(campaign) = &opts.campaign {
        // Release any stall gate still pending (a schedule tail the run
        // never reached) so nothing leaks into the next run.
        campaign.finish();
    }
    let elapsed_secs = run_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut latency = LatencyHistogram::new();
    let mut counts = OpCounts::default();
    let mut lives = 0u64;
    for (h, c, l) in &per_slot {
        latency.merge(h);
        counts.merge(c);
        lives += l;
    }
    ScenarioReport {
        object: target.object(),
        backend: target.backend(),
        scenario: scenario.name,
        threads: cfg.threads,
        lives,
        counts,
        elapsed_secs,
        throughput_ops_per_sec: counts.total() as f64 / elapsed_secs,
        latency,
    }
}
