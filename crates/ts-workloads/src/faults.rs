//! Fault campaigns: seeded, deterministic crash/partition/stall
//! schedules driven alongside any scenario.
//!
//! A [`FaultSchedule`] is a list of [`TimedFault`]s, each firing when
//! the run's **global completed-op counter** crosses its threshold —
//! not at a wall-clock instant. Events are applied *in-band* by
//! whichever worker thread completes the crossing op (there is no
//! controller thread), so a single-threaded run applies every event at
//! exactly the same op on every replay: campaigns are deterministic
//! per `(seed, schedule)` the same way the router's fault plan is.
//!
//! Event kinds map onto the cluster and gate knobs grown elsewhere:
//!
//! * `Crash`/`Restart` — [`Cluster::crash`](ts_replica::Cluster::crash)
//!   and [`Cluster::restart`](ts_replica::Cluster::restart) (with a
//!   [`RestartMode`]);
//! * `Partition`/`Heal` — the router's partition knobs;
//! * `Stall`/`Resume` — park worker `slot` at its next op boundary on
//!   a [`StepGate`] until resumed.
//!   `Stall` carries a `for_ops` duration that expands into an
//!   implicit `Resume` at `at_op + for_ops`, fired by the *other*
//!   workers' progress.
//!
//! [`FaultSchedule::random`] generates seeded schedules that keep the
//! service available throughout: at most `f` replicas unreachable
//! (crashed plus partitioned) and at least one worker left running, so
//! an infallible workload target survives the whole campaign —
//! degraded, never down. Hand-written schedules are free to violate
//! this (e.g. to drive `try_*` clients into `Unavailable`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ts_core::workload::StepGate;
use ts_replica::{Cluster, RestartMode};

/// One fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash-stop replica `replica`.
    Crash {
        /// The replica to take down.
        replica: u32,
    },
    /// Restart a crashed replica (resync included).
    Restart {
        /// The replica to bring back.
        replica: u32,
        /// Whether its state is wiped first.
        wipe: bool,
    },
    /// Partition `replicas` away from everyone else.
    Partition {
        /// The isolated set.
        replicas: Vec<u32>,
    },
    /// Heal all partitions.
    Heal,
    /// Park worker `slot` at its next op boundary.
    Stall {
        /// The worker slot to park.
        slot: usize,
        /// Implicit resume after this many further global ops.
        for_ops: u64,
    },
    /// Un-park worker `slot` (explicit resume; `Stall` also expands
    /// into one of these).
    Resume {
        /// The worker slot to release.
        slot: usize,
    },
}

/// A fault firing when the global completed-op counter reaches
/// `at_op`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFault {
    /// Global completed-op threshold.
    pub at_op: u64,
    /// What happens.
    pub event: FaultEvent,
}

/// Shape parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy)]
pub struct CampaignShape {
    /// Cluster fault tolerance (`2f + 1` replicas).
    pub f: usize,
    /// Worker slots the scenario will run.
    pub threads: usize,
    /// Total ops the run will complete (`threads × ops_per_thread`).
    pub total_ops: u64,
    /// Fault events to aim for (the generator may emit fewer when the
    /// state machine has no legal move, plus implicit repairs).
    pub events: usize,
}

/// An ordered, deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Events sorted by `at_op` (stable for equal thresholds).
    pub events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// A schedule from explicit events (sorts them by `at_op`,
    /// expanding each `Stall` into its implicit `Resume`).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        let mut resumes: Vec<TimedFault> = events
            .iter()
            .filter_map(|t| match t.event {
                FaultEvent::Stall { slot, for_ops } => Some(TimedFault {
                    at_op: t.at_op.saturating_add(for_ops),
                    event: FaultEvent::Resume { slot },
                }),
                _ => None,
            })
            .collect();
        events.append(&mut resumes);
        events.sort_by_key(|t| t.at_op);
        Self { events }
    }

    /// Generates a seeded availability-preserving schedule: crashed
    /// plus partitioned replicas never exceed `f`, stalled workers
    /// never reach `threads`, every crash is eventually restarted and
    /// every partition healed *within* the run. Identical for
    /// identical `(seed, shape)` — the campaign determinism seam.
    pub fn random(seed: u64, shape: &CampaignShape) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (2 * shape.f + 1) as u32;
        let span = shape.total_ops.max(4);
        // Fire inside the middle of the run so repairs fit before it
        // ends; thresholds strictly increase so application order is
        // total.
        let mut at = span / 10 + 1;
        let headroom = |at: u64| at < span.saturating_mul(4) / 5;
        let mut crashed: Vec<u32> = Vec::new();
        let mut isolated: Vec<u32> = Vec::new();
        let mut stalled: Vec<usize> = Vec::new();
        let mut events: Vec<TimedFault> = Vec::new();
        let mut emitted = 0usize;
        while emitted < shape.events && headroom(at) {
            let down = crashed.len() + isolated.len();
            // Candidate moves legal in the current state.
            let mut moves: Vec<u8> = Vec::new();
            if down < shape.f {
                moves.push(0); // crash
                if isolated.is_empty() {
                    moves.push(1); // partition
                }
            }
            if !crashed.is_empty() {
                moves.push(2); // restart
            }
            if !isolated.is_empty() {
                moves.push(3); // heal
            }
            if shape.threads > 1 && stalled.len() < shape.threads - 1 {
                moves.push(4); // stall
            }
            if moves.is_empty() {
                break;
            }
            let mv = moves[rng.random_range(0..moves.len())];
            let event = match mv {
                0 => {
                    let up: Vec<u32> = (0..n)
                        .filter(|r| !crashed.contains(r) && !isolated.contains(r))
                        .collect();
                    let replica = up[rng.random_range(0..up.len())];
                    crashed.push(replica);
                    FaultEvent::Crash { replica }
                }
                1 => {
                    let up: Vec<u32> = (0..n).filter(|r| !crashed.contains(r)).collect();
                    let width = 1 + rng.random_range(0..(shape.f - down).max(1));
                    let mut set: Vec<u32> = Vec::new();
                    for _ in 0..width.min(up.len()) {
                        let pick = up[rng.random_range(0..up.len())];
                        if !set.contains(&pick) {
                            set.push(pick);
                        }
                    }
                    set.sort_unstable();
                    isolated = set.clone();
                    FaultEvent::Partition { replicas: set }
                }
                2 => {
                    let replica = crashed.remove(rng.random_range(0..crashed.len()));
                    // A wipe needs a live quorum of others; with every
                    // other replica up that always holds, but partitions
                    // can thin the live set — retain when in doubt.
                    let wipe = isolated.is_empty() && rng.random_range(0..2u32) == 0;
                    FaultEvent::Restart { replica, wipe }
                }
                3 => {
                    isolated.clear();
                    FaultEvent::Heal
                }
                _ => {
                    let free: Vec<usize> = (0..shape.threads)
                        .filter(|s| !stalled.contains(s))
                        .collect();
                    let slot = free[rng.random_range(0..free.len())];
                    stalled.push(slot);
                    let for_ops = 1 + rng.random_range(0..span / 8 + 1);
                    FaultEvent::Stall { slot, for_ops }
                }
            };
            events.push(TimedFault { at_op: at, event });
            emitted += 1;
            at += 1 + rng.random_range(0..span / (shape.events as u64 + 1) + 1);
        }
        // Repair everything still broken so the run ends healthy.
        for replica in crashed {
            events.push(TimedFault {
                at_op: at,
                event: FaultEvent::Restart {
                    replica,
                    wipe: false,
                },
            });
            at += 1;
        }
        if !isolated.is_empty() {
            events.push(TimedFault {
                at_op: at,
                event: FaultEvent::Heal,
            });
        }
        // Stalls auto-expand to resumes in new(); stalled-set bookkeeping
        // above only bounds concurrency, conservatively ignoring that
        // expansion (a resumed slot still counts as stalled for
        // generation — stricter, never looser).
        Self::new(events)
    }

    /// Highest `at_op` threshold (0 for an empty schedule).
    pub fn last_op(&self) -> u64 {
        self.events.last().map_or(0, |t| t.at_op)
    }
}

/// One applied event, for the post-run log: which event fired, and the
/// global op count observed when it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// Index into [`FaultSchedule::events`].
    pub index: usize,
    /// Global completed ops at application time (>= the threshold; in
    /// a single-threaded run, exactly the threshold).
    pub at_op: u64,
}

/// A schedule bound to the cluster it manipulates, plus the runtime
/// state the engine drives: the global op counter, per-slot stall
/// gates, and the applied-event log.
///
/// Build one per run ([`Campaign::new`]) and hand it to
/// [`run_scenario_with`](crate::run_scenario_with) via
/// [`EngineOptions`](crate::EngineOptions); inspect
/// [`Campaign::applied`] afterwards.
#[derive(Debug)]
pub struct Campaign {
    cluster: Arc<Cluster>,
    schedule: FaultSchedule,
    ops: AtomicU64,
    next: AtomicUsize,
    /// One pending-stall gate slot per worker: `Some(gate)` while the
    /// slot is stalled. Each stall gets a *fresh* gate, released
    /// wholesale on resume, so stall/resume cycles never leak credits
    /// into each other.
    stalls: Vec<Mutex<Option<Arc<StepGate>>>>,
    applied: Mutex<Vec<AppliedFault>>,
    /// Wall-clock nanoseconds spent applying *repair* events (restart
    /// resync sweeps and partition heals), accumulated in-band. This is
    /// the run's recovery cost: restarts replay the rejoin protocol
    /// synchronously inside the worker that crossed the threshold, so
    /// the time is real recovery work, not scheduling noise. Kept out
    /// of [`AppliedFault`] so the applied log stays comparable across
    /// runs (the determinism seam is op counts, never wall time).
    repair_nanos: AtomicU64,
}

impl Campaign {
    /// Binds `schedule` to `cluster` for a run with `slots` worker
    /// slots.
    pub fn new(cluster: Arc<Cluster>, schedule: FaultSchedule, slots: usize) -> Arc<Self> {
        for t in &schedule.events {
            if let FaultEvent::Stall { slot, .. } | FaultEvent::Resume { slot } = t.event {
                assert!(slot < slots, "stall slot {slot} out of range");
            }
        }
        Arc::new(Self {
            cluster,
            schedule,
            ops: AtomicU64::new(0),
            next: AtomicUsize::new(0),
            stalls: (0..slots).map(|_| Mutex::new(None)).collect(),
            applied: Mutex::new(Vec::new()),
            repair_nanos: AtomicU64::new(0),
        })
    }

    /// The bound cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The bound schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Global completed ops so far.
    pub fn ops_completed(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The applied-event log (complete once the run returns).
    pub fn applied(&self) -> Vec<AppliedFault> {
        self.applied.lock().expect("campaign lock").clone()
    }

    /// Total wall time spent applying repair events (restart resync
    /// sweeps + heals) — the campaign's recovery cost. Bench chaos
    /// cells report this as `recovery_ms`.
    pub fn repair_time(&self) -> Duration {
        Duration::from_nanos(self.repair_nanos.load(Ordering::Relaxed))
    }

    /// Whether every scheduled event fired during the run.
    pub fn fully_applied(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.schedule.events.len()
    }

    /// Worker slots currently parked by a stall.
    pub fn stalled_slots(&self) -> Vec<usize> {
        (0..self.stalls.len())
            .filter(|&s| self.stalls[s].lock().expect("campaign lock").is_some())
            .collect()
    }

    /// Engine hook, worker side, before each op: parks on the slot's
    /// stall gate if a stall is pending. Clones the gate out of the
    /// lock first so a concurrent resume (which swaps the slot to
    /// `None` and releases the gate) always unblocks this exact gate.
    pub(crate) fn before_op(&self, slot: usize) {
        let gate = self.stalls[slot].lock().expect("campaign lock").clone();
        if let Some(gate) = gate {
            gate.pause();
        }
    }

    /// Engine hook, worker side, after each completed op: advances the
    /// global counter and applies every event whose threshold the new
    /// count crosses. Claiming is a CAS on the event index, so under
    /// multi-threaded completion races each event fires exactly once.
    pub(crate) fn after_op(&self) {
        let count = self.ops.fetch_add(1, Ordering::AcqRel) + 1;
        loop {
            let idx = self.next.load(Ordering::Acquire);
            let Some(timed) = self.schedule.events.get(idx) else {
                return;
            };
            if timed.at_op > count {
                return;
            }
            if self
                .next
                .compare_exchange(idx, idx + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue; // another worker claimed it
            }
            self.apply(idx, count);
        }
    }

    /// Drains any events the run never reached (counter ended below
    /// their threshold) *without* applying them, then releases every
    /// still-parked stall gate so workers can drain. Called by the
    /// engine after all workers finish.
    pub(crate) fn finish(&self) {
        for slot in &self.stalls {
            if let Some(gate) = slot.lock().expect("campaign lock").take() {
                gate.release_all();
            }
        }
    }

    fn apply(&self, index: usize, count: u64) {
        match &self.schedule.events[index].event {
            FaultEvent::Crash { replica } => self.cluster.crash(*replica),
            FaultEvent::Restart { replica, wipe } => {
                let t0 = Instant::now();
                self.cluster.restart(
                    *replica,
                    if *wipe {
                        RestartMode::Wipe
                    } else {
                        RestartMode::Retain
                    },
                );
                self.repair_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            FaultEvent::Partition { replicas } => self.cluster.router().partition(replicas),
            FaultEvent::Heal => {
                let t0 = Instant::now();
                self.cluster.router().heal();
                self.repair_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            FaultEvent::Stall { slot, .. } => {
                let gate = Arc::new(StepGate::new());
                *self.stalls[*slot].lock().expect("campaign lock") = Some(gate);
            }
            FaultEvent::Resume { slot } => {
                if let Some(gate) = self.stalls[*slot].lock().expect("campaign lock").take() {
                    gate.release_all();
                }
            }
        }
        self.applied
            .lock()
            .expect("campaign lock")
            .push(AppliedFault {
                index,
                at_op: count,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_replica::ClusterConfig;

    fn shape() -> CampaignShape {
        CampaignShape {
            f: 1,
            threads: 4,
            total_ops: 400,
            events: 8,
        }
    }

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let a = FaultSchedule::random(42, &shape());
        let b = FaultSchedule::random(42, &shape());
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let c = FaultSchedule::random(43, &shape());
        assert_ne!(a, c, "different seeds explore different campaigns");
    }

    #[test]
    fn random_schedules_preserve_availability() {
        for seed in 0..50 {
            let schedule = FaultSchedule::random(seed, &shape());
            let mut crashed: Vec<u32> = Vec::new();
            let mut isolated = 0usize;
            let mut stalled: Vec<usize> = Vec::new();
            let mut last_at = 0;
            for t in &schedule.events {
                assert!(t.at_op >= last_at, "sorted by threshold");
                last_at = t.at_op;
                match &t.event {
                    FaultEvent::Crash { replica } => crashed.push(*replica),
                    FaultEvent::Restart { replica, .. } => {
                        crashed.retain(|r| r != replica);
                    }
                    FaultEvent::Partition { replicas } => isolated = replicas.len(),
                    FaultEvent::Heal => isolated = 0,
                    FaultEvent::Stall { slot, .. } => stalled.push(*slot),
                    FaultEvent::Resume { slot } => stalled.retain(|s| s != slot),
                }
                assert!(
                    crashed.len() + isolated <= 1,
                    "seed {seed}: more than f replicas unreachable"
                );
                assert!(crashed.len() <= 1);
                assert!(stalled.len() < 4, "seed {seed}: every worker stalled");
            }
            assert!(crashed.is_empty(), "seed {seed}: run ends with a crash");
            assert_eq!(isolated, 0, "seed {seed}: run ends partitioned");
            assert!(
                schedule.last_op() <= 400 + 400 / 8 + 2,
                "seed {seed}: events (incl. implicit resumes) overrun the run"
            );
        }
    }

    #[test]
    fn stall_expands_into_an_implicit_resume() {
        let s = FaultSchedule::new(vec![TimedFault {
            at_op: 10,
            event: FaultEvent::Stall {
                slot: 2,
                for_ops: 5,
            },
        }]);
        assert_eq!(s.events.len(), 2);
        assert_eq!(
            s.events[1],
            TimedFault {
                at_op: 15,
                event: FaultEvent::Resume { slot: 2 },
            }
        );
    }

    #[test]
    fn campaign_applies_events_at_exact_op_thresholds() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let schedule = FaultSchedule::new(vec![
            TimedFault {
                at_op: 3,
                event: FaultEvent::Crash { replica: 2 },
            },
            TimedFault {
                at_op: 6,
                event: FaultEvent::Restart {
                    replica: 2,
                    wipe: true,
                },
            },
        ]);
        let campaign = Campaign::new(Arc::clone(&cluster), schedule, 1);
        for i in 1..=8u64 {
            campaign.before_op(0);
            campaign.after_op();
            match i {
                1..=2 => assert!(cluster.crashed().is_empty()),
                3..=5 => assert_eq!(cluster.crashed(), vec![2]),
                _ => assert!(cluster.crashed().is_empty()),
            }
        }
        assert!(campaign.fully_applied());
        let applied = campaign.applied();
        assert_eq!(applied.len(), 2);
        assert_eq!((applied[0].index, applied[0].at_op), (0, 3));
        assert_eq!((applied[1].index, applied[1].at_op), (1, 6));
        assert_eq!(cluster.replica(2).wipes(), 1);
        assert!(
            campaign.repair_time() > Duration::ZERO,
            "the wipe restart's resync sweep was timed as recovery work"
        );
    }

    #[test]
    fn stall_parks_the_slot_until_a_peer_resumes_it() {
        use std::sync::atomic::AtomicBool;
        let cluster = Cluster::new(ClusterConfig::new(1));
        let schedule = FaultSchedule::new(vec![TimedFault {
            at_op: 1,
            event: FaultEvent::Stall {
                slot: 0,
                for_ops: 2,
            },
        }]);
        let campaign = Campaign::new(Arc::clone(&cluster), schedule, 2);
        let parked_passed = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Slot 0: first op fires the stall, second op parks.
                campaign.before_op(0);
                campaign.after_op(); // op 1 -> stall armed
                campaign.before_op(0); // parks here
                parked_passed.store(true, Ordering::SeqCst);
                campaign.after_op();
            });
            // Slot 1 keeps completing ops; its second completion
            // crosses the resume threshold (1 + 2 = 3).
            while campaign.ops_completed() < 1 {
                std::thread::yield_now();
            }
            assert!(campaign.stalled_slots().contains(&0));
            campaign.before_op(1);
            campaign.after_op(); // op 2
            assert!(!parked_passed.load(Ordering::SeqCst), "still parked");
            campaign.before_op(1);
            campaign.after_op(); // op 3 -> resume fires
        });
        assert!(parked_passed.load(Ordering::SeqCst));
        assert!(campaign.stalled_slots().is_empty());
        assert!(campaign.fully_applied());
    }
}
