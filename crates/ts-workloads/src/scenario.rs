//! Traffic-shape descriptions: arrival processes, op mixes, churn.
//!
//! A [`Scenario`] is everything about a run except the object under
//! test and the thread count: how operations arrive (closed loop vs
//! open loop with bursts), which kinds of operations are issued (a
//! weighted [`OpMix`], typically Zipf-skewed so one kind dominates),
//! and whether worker threads churn (exit and get replaced mid-run,
//! exercising the epoch backend's orphan-garbage handoff).
//!
//! [`catalog`] returns the standard shapes every benchmark run covers;
//! deliberately deferred shapes are listed in ROADMAP.md (NUMA pinning,
//! adversarial schedules replayed from `ts-model` traces).

use rand::rngs::StdRng;
use rand::Rng;

use ts_core::workload::WorkloadOp;

/// How operations arrive at the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Each worker issues its next op as soon as the previous one
    /// returns; latency is pure service time.
    ClosedLoop,
    /// Operations are *scheduled* at an aggregate rate, arriving in
    /// bursts; latency is measured from the scheduled arrival, so queue
    /// buildup behind a slow op is charged to the ops that waited
    /// (no coordinated omission).
    OpenLoop {
        /// Aggregate arrival rate across all workers, ops per second.
        rate_hz: u64,
        /// Arrivals come `burst` at a time (1 = evenly paced).
        burst: u32,
    },
}

/// Thread churn: workers live for a bounded number of ops, then their
/// OS thread exits and a replacement takes over the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Churn {
    /// Ops each worker life performs before the thread exits.
    pub ops_per_life: u64,
}

/// A weighted mix over the three [`WorkloadOp`] kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weights indexed by [`WorkloadOp::index`].
    pub weights: [u32; 3],
}

impl OpMix {
    /// 100% `GetTs`.
    pub fn get_ts_only() -> Self {
        Self { weights: [1, 0, 0] }
    }

    /// Uniform across all three kinds.
    pub fn uniform() -> Self {
        Self { weights: [1, 1, 1] }
    }

    /// Zipf-distributed weights over a preference order: the op ranked
    /// `r` (1-based) gets weight `⌊1000 / r^s⌋`. With `s ≈ 1` the top
    /// op dominates without starving the tail — the classic skewed-mix
    /// shape ("getTS-heavy", "scan-heavy", ...).
    ///
    /// # Panics
    ///
    /// Panics if `ranked` repeats an op (some op would get no weight).
    pub fn zipf(ranked: [WorkloadOp; 3], s: f64) -> Self {
        let mut weights = [0u32; 3];
        for (rank0, op) in ranked.into_iter().enumerate() {
            assert_eq!(weights[op.index()], 0, "op {op:?} ranked twice");
            let w = (1000.0 / ((rank0 + 1) as f64).powf(s)).floor() as u32;
            weights[op.index()] = w.max(1);
        }
        Self { weights }
    }

    /// Samples one op kind (weights must not all be zero).
    pub fn sample(&self, rng: &mut StdRng) -> WorkloadOp {
        let total: u32 = self.weights.iter().sum();
        assert!(total > 0, "op mix has no weight");
        let mut roll = rng.random_range(0..total);
        for op in WorkloadOp::ALL {
            let w = self.weights[op.index()];
            if roll < w {
                return op;
            }
            roll -= w;
        }
        unreachable!("roll < sum of weights")
    }
}

/// One complete traffic shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Report label ("closed_getts", "open_bursty", ...).
    pub name: &'static str,
    /// Arrival process.
    pub arrival: Arrival,
    /// Operation mix.
    pub mix: OpMix,
    /// Thread churn, if any.
    pub churn: Option<Churn>,
}

/// The standard scenario catalog — the shapes `bench_workloads` runs
/// for every (object × backend × thread-count) cell:
///
/// | name | arrival | mix | churn |
/// |---|---|---|---|
/// | `closed_getts` | closed loop | getTS only | — |
/// | `closed_getts_heavy` | closed loop | Zipf: getTS ≫ scan ≫ compare | — |
/// | `closed_scan_heavy` | closed loop | Zipf: scan ≫ getTS ≫ compare | — |
/// | `open_bursty` | open loop, bursts of 32 | Zipf: getTS-heavy | — |
/// | `churn` | closed loop | getTS only | exit/replace every `ops_per_life` |
/// | `writer_storm` | closed loop | getTS only | — |
///
/// `writer_storm` is the scan-ladder scenario: it runs only against the
/// role-sliced `helping_scan` targets (slot 0 scans, every other slot
/// writes as fast as the closed loop allows), so the op mix is a
/// formality — workers substitute their role's operation regardless of
/// the sampled kind. It exists as a distinct catalog entry so the
/// adaptive-vs-classic scan comparison has first-class grid cells.
///
/// `rate_hz` is the aggregate open-loop arrival rate; `ops_per_life`
/// bounds each churn life. Callers scale both to the machine (smoke
/// runs shrink them).
pub fn catalog(rate_hz: u64, ops_per_life: u64) -> Vec<Scenario> {
    let getts_heavy = OpMix::zipf(
        [WorkloadOp::GetTs, WorkloadOp::Scan, WorkloadOp::Compare],
        1.2,
    );
    let scan_heavy = OpMix::zipf(
        [WorkloadOp::Scan, WorkloadOp::GetTs, WorkloadOp::Compare],
        1.2,
    );
    vec![
        Scenario {
            name: "closed_getts",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::get_ts_only(),
            churn: None,
        },
        Scenario {
            name: "closed_getts_heavy",
            arrival: Arrival::ClosedLoop,
            mix: getts_heavy,
            churn: None,
        },
        Scenario {
            name: "closed_scan_heavy",
            arrival: Arrival::ClosedLoop,
            mix: scan_heavy,
            churn: None,
        },
        Scenario {
            name: "open_bursty",
            arrival: Arrival::OpenLoop { rate_hz, burst: 32 },
            mix: getts_heavy,
            churn: None,
        },
        Scenario {
            name: "churn",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::get_ts_only(),
            churn: Some(Churn { ops_per_life }),
        },
        Scenario {
            name: "writer_storm",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::get_ts_only(),
            churn: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_weights_are_ordered_by_rank() {
        let mix = OpMix::zipf(
            [WorkloadOp::Scan, WorkloadOp::GetTs, WorkloadOp::Compare],
            1.2,
        );
        let w = mix.weights;
        assert!(w[WorkloadOp::Scan.index()] > w[WorkloadOp::GetTs.index()]);
        assert!(w[WorkloadOp::GetTs.index()] > w[WorkloadOp::Compare.index()]);
        assert!(w.iter().all(|&x| x >= 1));
    }

    #[test]
    #[should_panic(expected = "ranked twice")]
    fn zipf_rejects_duplicate_ranks() {
        let _ = OpMix::zipf(
            [WorkloadOp::GetTs, WorkloadOp::GetTs, WorkloadOp::Compare],
            1.0,
        );
    }

    #[test]
    fn sample_tracks_weights() {
        let mix = OpMix::zipf(
            [WorkloadOp::GetTs, WorkloadOp::Scan, WorkloadOp::Compare],
            1.2,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 20_000;
        for _ in 0..n {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        // Expected shares: 1000 : 435 : 268 of 1703.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        let share0 = counts[0] as f64 / n as f64;
        assert!((0.55..0.65).contains(&share0), "getTS share {share0}");
    }

    #[test]
    fn get_ts_only_never_samples_other_ops() {
        let mix = OpMix::get_ts_only();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), WorkloadOp::GetTs);
        }
    }

    #[test]
    fn catalog_covers_the_required_shapes() {
        let cat = catalog(10_000, 500);
        assert!(cat.len() >= 4, "acceptance needs >= 4 scenario shapes");
        assert!(cat.iter().any(|s| s.churn.is_some()), "churn shape missing");
        assert!(
            cat.iter()
                .any(|s| matches!(s.arrival, Arrival::OpenLoop { .. })),
            "open-loop shape missing"
        );
        let names: std::collections::HashSet<_> = cat.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
    }
}
