//! Workload scenario engine for the timestamp suite.
//!
//! The paper (Helmi–Higham–Pacheco–Woelfel, PODC 2011) studies
//! timestamp objects under *adversarial process behavior* — the
//! `ts-model` crate formalizes that as schedules chosen by an
//! adversary. This crate drives the **real concurrent objects** under
//! the operational analogues of those behaviors: bursty arrivals,
//! skewed operation mixes, and thread churn (workers exiting mid-run,
//! which exercises the epoch backend's orphan-garbage handoff).
//!
//! Four layers:
//!
//! - [`LatencyHistogram`] — log-bucketed (HDR-style) latency recording,
//!   allocation-free on the hot path, with p50/p99/p999/max readouts
//!   and cross-thread merging;
//! - [`Scenario`] / [`catalog`] — traffic shapes: closed loop, open
//!   loop with bursty arrivals (latency measured from *scheduled*
//!   arrival, so there is no coordinated omission), Zipf-skewed op
//!   mixes, and churn;
//! - [`run_scenario`] — the engine: `N` threads drive any
//!   [`WorkloadTarget`](ts_core::workload::WorkloadTarget) (timestamp
//!   objects from `ts-core`, lock consumers from `ts-apps`, on either
//!   register backend) and merge per-thread histograms into a
//!   [`ScenarioReport`]; [`run_scenario_with`] adds a fault
//!   [`Campaign`] (seeded crash/partition/stall schedules from the
//!   [`faults`] module, applied at deterministic op thresholds) and a
//!   liveness watchdog;
//! - [`replay`] — adversarial schedule replay: drives real objects
//!   along `ts-model` Explorer/PCT traces (including minimized
//!   counterexamples) with one OS thread per trace process, released
//!   step-by-step through the
//!   [`StepGate`](ts_core::workload::StepGate) barrier.
//!
//! The `bench_workloads` binary in `ts-bench` sweeps the full
//! (object × backend × scenario × threads) grid and records the rows
//! in `BENCH_workloads.json`.
//!
//! # Example
//!
//! ```
//! use ts_core::CollectMax;
//! use ts_workloads::{run_scenario, Arrival, OpMix, RunConfig, Scenario};
//!
//! let target = CollectMax::new(2);
//! let scenario = Scenario {
//!     name: "quick_closed",
//!     arrival: Arrival::ClosedLoop,
//!     mix: OpMix::uniform(),
//!     churn: None,
//! };
//! let cfg = RunConfig { threads: 2, ops_per_thread: 100, seed: 1 };
//! let report = run_scenario(&target, &scenario, &cfg);
//! assert_eq!(report.counts.total(), 200);
//! assert_eq!(report.latency.count(), 200);
//! assert!(report.throughput_ops_per_sec > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod faults;
pub mod histogram;
pub mod replay;
pub mod scenario;
pub mod service;

pub use engine::{
    run_scenario, run_scenario_with, EngineOptions, OpCounts, RunConfig, ScenarioReport,
};
pub use faults::{AppliedFault, Campaign, CampaignShape, FaultEvent, FaultSchedule, TimedFault};
pub use histogram::{LatencyHistogram, NUM_BUCKETS, SUB_BUCKETS};
pub use replay::{replay_trace, ReplayReport, ReplayViolation, ReplayedOp};
pub use scenario::{catalog, Arrival, Churn, OpMix, Scenario};
pub use service::ServiceTarget;
