//! Log-bucketed latency histogram (HDR-style), allocation-free on the
//! recording path.
//!
//! Values (nanoseconds) are binned into buckets whose width grows with
//! magnitude: each power of two is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so the relative quantization error is bounded by
//! `1/SUB_BUCKETS` (6.25%) across the whole `u64` range. The bucket
//! array is fixed-size and heap-allocated once at construction;
//! [`LatencyHistogram::record`] is a shift, a mask and an increment —
//! no allocation, no branching on magnitude beyond the `< 16` fast
//! path — so per-thread histograms can sit on the workload hot path.
//!
//! Per-thread histograms [`merge`](LatencyHistogram::merge) into one
//! for reporting; percentiles walk the bucket array once.
//!
//! # Example
//!
//! ```
//! use ts_workloads::histogram::LatencyHistogram;
//!
//! let mut a = LatencyHistogram::new();
//! let mut b = LatencyHistogram::new();
//! for ns in [100, 200, 400, 800] {
//!     a.record(ns);
//! }
//! b.record(10_000); // one slow outlier on another thread
//! a.merge(&b);
//! assert_eq!(a.count(), 5);
//! // Log-bucketing quantizes within 6.25%: the p99 bucket holds the
//! // outlier, far above the p50 bucket.
//! assert!(a.percentile(99.0) >= 4 * a.percentile(50.0));
//! ```

/// log2 of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power of two (16 → ≤ 6.25% relative error).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count: values `< SUB_BUCKETS` get exact buckets
/// (group 0); each exponent `SUB_BITS..=63` contributes one group of
/// `SUB_BUCKETS`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Bucket index for a value: exact below [`SUB_BUCKETS`], otherwise
/// `(exponent, top SUB_BITS mantissa bits)`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exponent = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = (exponent - SUB_BITS + 1) as usize;
    let mantissa = ((value >> (exponent - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    group * SUB_BUCKETS + mantissa
}

/// Smallest value mapping to `index` (the bucket's representative in
/// percentile reports).
fn bucket_lower_bound(index: usize) -> u64 {
    let group = index / SUB_BUCKETS;
    let mantissa = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        return mantissa;
    }
    let exponent = group as u32 + SUB_BITS - 1;
    (1u64 << exponent) + (mantissa << (exponent - SUB_BITS))
}

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds).
///
/// Cache-line padded ([`CachePadded`](ts_register::CachePadded)): the
/// engine keeps one histogram per worker thread, each hammered on every
/// recorded op, so both the inline counters and the heap bucket array
/// are 128-byte aligned — neighbouring threads' histograms never share
/// a line, and the controller reading one worker's progress cannot
/// invalidate another worker's counters.
///
/// # Example
///
/// ```
/// use ts_workloads::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 40_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max_ns(), 40_000);
/// assert!(h.percentile(50.0) <= 200);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    inner: ts_register::CachePadded<Hist>,
}

#[derive(Clone)]
struct Hist {
    buckets: Box<ts_register::CachePadded<[u64; NUM_BUCKETS]>>,
    count: u64,
    total: u64,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram (one 7.6 KiB allocation, the last it
    /// will ever make).
    pub fn new() -> Self {
        Self {
            inner: ts_register::CachePadded::new(Hist {
                buckets: Box::new(ts_register::CachePadded::new([0; NUM_BUCKETS])),
                count: 0,
                total: 0,
                max: 0,
                min: u64::MAX,
            }),
        }
    }

    /// Records one sample. Saturating: the running total clamps at
    /// `u64::MAX` instead of wrapping, and every representable `u64`
    /// falls into some bucket (the top bucket covers the last
    /// `2^59`-wide slice), so this never panics.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let h = &mut *self.inner;
        h.buckets[bucket_index(value)] += 1;
        h.count += 1;
        h.total = h.total.saturating_add(value);
        if value > h.max {
            h.max = value;
        }
        if value < h.min {
            h.min = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.inner.count == 0 {
            0
        } else {
            self.inner.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.inner.count == 0 {
            0
        } else {
            self.inner.min
        }
    }

    /// Mean of recorded samples, rounded down (0 when empty; saturated
    /// if the running total clamped).
    pub fn mean_ns(&self) -> u64 {
        if self.inner.count == 0 {
            0
        } else {
            self.inner.total / self.inner.count
        }
    }

    /// The value at percentile `p` (in `0.0..=100.0`): the lower bound
    /// of the bucket holding the `⌈p/100 · count⌉`-th smallest sample.
    ///
    /// Quantized: the result is at most the true order statistic and
    /// within `1/16` relative error of it. Returns 0 for an empty
    /// histogram; `p = 0` means the first sample's bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.inner.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.inner.count as f64).ceil() as u64).clamp(1, self.inner.count);
        let mut seen = 0u64;
        for (index, &n) in self.inner.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(index);
            }
        }
        // Unreachable while count == sum(buckets); keep a sane answer.
        self.max_ns()
    }

    /// Adds every sample of `other` into `self` (per-thread histograms
    /// → one report).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        let h = &mut *self.inner;
        let o = &*other.inner;
        for (a, b) in h.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
        h.count += o.count;
        h.total = h.total.saturating_add(o.total);
        h.max = h.max.max(o.max);
        h.min = h.min.min(o.min);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.inner.count)
            .field("min_ns", &self.min_ns())
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sixteen() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_and_lower_bound_are_consistent_everywhere() {
        // lower_bound(index(v)) <= v < lower_bound(index(v) + 1), and
        // the quantization error is bounded by 1/16.
        let probes: Vec<u64> = (0..64)
            .flat_map(|e| {
                let base = 1u64 << e;
                [base, base + base / 3, base + base / 2, (base - 1).max(1)]
            })
            .chain([0, u64::MAX, u64::MAX - 1])
            .collect();
        for v in probes {
            let idx = bucket_index(v);
            let lb = bucket_lower_bound(idx);
            assert!(lb <= v, "lower bound {lb} above value {v}");
            if idx + 1 < NUM_BUCKETS {
                assert!(
                    bucket_lower_bound(idx + 1) > v,
                    "value {v} not below next bucket"
                );
            }
            let err = (v - lb) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "error {err} at {v}");
        }
    }

    #[test]
    fn group_boundaries_land_on_powers_of_two() {
        // The first bucket of each group starts exactly at 2^e.
        for e in SUB_BITS..64 {
            let group = (e - SUB_BITS + 1) as usize;
            assert_eq!(bucket_index(1u64 << e), group * SUB_BUCKETS);
            assert_eq!(bucket_lower_bound(group * SUB_BUCKETS), 1u64 << e);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.9), 0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(7); // exact bucket below 16
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), 7);
        assert_eq!(h.max_ns(), 7);
        assert_eq!(h.mean_ns(), 7);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 7, "p{p}");
        }
    }

    #[test]
    fn percentile_math_on_a_known_distribution() {
        // 1000 samples: 900 at 10ns, 90 at 1000ns, 10 at 100_000ns.
        let mut h = LatencyHistogram::new();
        for _ in 0..900 {
            h.record(10);
        }
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(90.0), 10); // rank 900 is still a 10
        let p99 = h.percentile(99.0); // rank 990: a 1000ns sample
        assert!((960..=1000).contains(&p99), "p99 = {p99}");
        let p999 = h.percentile(99.9); // rank 999: a 100_000ns sample
        assert!((98_304..=100_000).contains(&p999), "p999 = {p999}");
        assert_eq!(h.max_ns(), 100_000);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for (i, v) in [3u64, 17, 900, 31_000, 5, 2_000_000].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*v);
            all.record(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        assert_eq!(a.min_ns(), all.min_ns());
        assert_eq!(a.mean_ns(), all.mean_ns());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(42);
        let before_p50 = a.percentile(50.0);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min_ns(), 42);
        assert_eq!(a.percentile(50.0), before_p50);
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.min_ns(), 42);
    }

    #[test]
    fn saturating_max_bucket_accepts_u64_max() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX); // total would overflow: must clamp, not wrap
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(h.percentile(100.0), bucket_lower_bound(NUM_BUCKETS - 1));
        assert!(h.mean_ns() >= u64::MAX / 3, "saturated mean collapsed");
    }
}
