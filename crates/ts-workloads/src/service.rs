//! Workload adapter for the `ts-service` timestamp service.
//!
//! [`ServiceTarget`] puts a [`ShardedCollectMax`] behind the
//! [`WorkloadTarget`] seam so every scenario family (closed loops,
//! skewed mixes, bursty open loops, thread churn) can drive the service
//! exactly like it drives the paper objects. One target is one *grid
//! cell configuration*: a shard count, a slot budget and an
//! [`IssueMode`].
//!
//! # Op semantics (what one engine op measures)
//!
//! - [`IssueMode::Single`] / [`IssueMode::Combining`] — one `GetTs` op
//!   issues **one** stamp (directly, or through the shard's
//!   flat-combining array).
//! - [`IssueMode::Batch(k)`](IssueMode::Batch) — one `GetTs` op is one
//!   *service call* that issues the **whole batch** of `k` stamps.
//!   `ops/sec` therefore counts issue calls; the per-stamp figure
//!   comparable with single-issue objects is the row's
//!   `stamps_per_sec` (from the service's [`ServiceStats`],
//!   `≈ k × ops/sec`) — this
//!   is the batching amortization made visible, not hidden in an op
//!   definition.
//! - `Scan` — a read-only collect over every shard's register bank
//!   ([`read_max`](ts_service::ShardedCollectMax::read_max)).
//! - `Compare` — the shared-memory-free lexicographic comparison on
//!   the worker's two most recent stamps.
//!
//! # Identity, slots and churn
//!
//! Every worker life mints a fresh [`ClientSession`] — a fresh virtual
//! pid — so the target reports unbounded
//! [`slots`](WorkloadTarget::slots): the engine may drive any thread
//! count and any churn schedule over a *fixed* physical register space,
//! which is precisely the vpid-multiplexing claim. A churn run with
//! `threads × lives > shards × slots_per_shard` is the `M` clients over
//! `n` slots configuration; the per-worker monotonicity asserts (each
//! session's stamps strictly increase) hold throughout, and
//! [`lease_waits`](ts_core::ServiceStats::lease_waits) counts how often
//! the multiplexing actually blocked.

use std::hint::black_box;

use ts_core::workload::{OpHistory, WorkloadOp, WorkloadTarget, WorkloadWorker};
use ts_core::{PackedBackend, RegisterBackend, ServiceStats, ShardedTimestamp};
use ts_service::{ClientSession, IssueMode, ServiceConfig, ShardedCollectMax};

/// A [`ShardedCollectMax`] plus an [`IssueMode`], driveable by the
/// scenario engine. See the module docs for op semantics.
///
/// # Example
///
/// ```
/// use ts_core::workload::{WorkloadOp, WorkloadTarget};
/// use ts_service::{IssueMode, ServiceConfig};
/// use ts_workloads::service::ServiceTarget;
///
/// let target = ServiceTarget::new(
///     "sharded_s4_batch16",
///     ServiceConfig::new(4, 2),
///     IssueMode::Batch(16),
/// );
/// let mut worker = target.worker(0);
/// assert_eq!(worker.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
/// let stats = target.service_stats().unwrap();
/// assert_eq!(stats.stamps, 16, "one batch op issued the whole batch");
/// ```
#[derive(Debug)]
pub struct ServiceTarget<B: RegisterBackend<u64> = PackedBackend> {
    service: ShardedCollectMax<B>,
    mode: IssueMode,
    label: &'static str,
}

impl ServiceTarget<PackedBackend> {
    /// A target on the default packed register backend.
    pub fn new(label: &'static str, config: ServiceConfig, mode: IssueMode) -> Self {
        Self::with_backend(label, config, mode)
    }
}

impl<B: RegisterBackend<u64>> ServiceTarget<B> {
    /// A target on backend `B`. `label` is the report's object column
    /// and should encode the cell configuration (e.g.
    /// `"sharded_s4_batch16"`).
    pub fn with_backend(label: &'static str, config: ServiceConfig, mode: IssueMode) -> Self {
        if let IssueMode::Batch(k) = mode {
            assert!(k >= 1, "batch mode needs k >= 1");
        }
        Self {
            service: ShardedCollectMax::with_backend(config),
            mode,
            label,
        }
    }

    /// The wrapped service (for post-run assertions).
    pub fn service(&self) -> &ShardedCollectMax<B> {
        &self.service
    }

    /// The cell's issue mode.
    pub fn mode(&self) -> IssueMode {
        self.mode
    }
}

struct ServiceWorker<'a, B: RegisterBackend<u64>> {
    session: ClientSession<'a, B>,
    service: &'a ShardedCollectMax<B>,
    mode: IssueMode,
    history: OpHistory<ShardedTimestamp>,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for ServiceWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let (first, last) = match self.mode {
                    IssueMode::Single => {
                        let t = self.session.get_ts();
                        (t, t)
                    }
                    IssueMode::Batch(k) => {
                        let batch = self.session.get_ts_batch(k);
                        (batch.first_stamp(), batch.last_stamp())
                    }
                    IssueMode::Combining => {
                        let t = self.session.get_ts_combined();
                        (t, t)
                    }
                };
                if let Some(p) = self.history.last() {
                    // The service's per-client guarantee: every stamp a
                    // session obtains exceeds its previous one, across
                    // batches, combining passes and migrations.
                    assert!(
                        ShardedTimestamp::compare(&p, &first),
                        "service violated per-client monotonicity: {p} !< {first}"
                    );
                }
                self.history.push(last);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.service.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(ShardedTimestamp::compare(&a, &b)),
                        "service history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    // Cross-client, cross-shard ordering is exactly what the service
    // relaxes, so `last_ts` stays `None`: replay controllers check
    // order, not outputs.
}

impl<B: RegisterBackend<u64>> WorkloadTarget for ServiceTarget<B> {
    fn object(&self) -> &'static str {
        self.label
    }

    fn backend(&self) -> &'static str {
        self.service.backend_name()
    }

    /// Unbounded: identity is a vpid, storage is leased per call —
    /// any thread count and churn schedule fits the fixed register
    /// space.
    fn slots(&self) -> usize {
        usize::MAX
    }

    fn worker<'a>(&'a self, _slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        Box::new(ServiceWorker {
            session: self.service.session(),
            service: &self.service,
            mode: self.mode,
            history: OpHistory::new(),
        })
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        Some(self.service.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_scenario, RunConfig};
    use crate::scenario::{Arrival, Churn, OpMix, Scenario};

    fn target(shards: usize, slots: usize, mode: IssueMode) -> ServiceTarget {
        ServiceTarget::new("sharded_test", ServiceConfig::new(shards, slots), mode)
    }

    #[test]
    fn worker_runs_every_op_kind() {
        let t = target(2, 2, IssueMode::Single);
        let mut w = t.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        // Two issue calls hit the service: the explicit GetTs and the
        // one substituted for the first (history-starved) Compare.
        assert_eq!(t.service_stats().unwrap().calls, 2);
    }

    #[test]
    fn batch_mode_issues_k_stamps_per_op() {
        let t = target(1, 1, IssueMode::Batch(8));
        let mut w = t.worker(0);
        for _ in 0..3 {
            w.step(WorkloadOp::GetTs);
        }
        let stats = t.service_stats().unwrap();
        assert_eq!(stats.calls, 3);
        assert_eq!(stats.stamps, 24);
        assert_eq!(stats.avg_batch_fill(), Some(8.0));
    }

    #[test]
    fn engine_drives_every_mode_under_contention() {
        for mode in [IssueMode::Single, IssueMode::Batch(4), IssueMode::Combining] {
            let t = target(2, 2, mode);
            let scenario = Scenario {
                name: "svc_closed",
                arrival: Arrival::ClosedLoop,
                mix: OpMix::get_ts_only(),
                churn: None,
            };
            let cfg = RunConfig {
                threads: 4,
                ops_per_thread: 100,
                seed: 7,
            };
            let report = run_scenario(&t, &scenario, &cfg);
            assert_eq!(report.counts.get_ts, 400);
            let stats = t.service_stats().unwrap();
            assert_eq!(stats.calls, 400);
            assert_eq!(stats.stamps, 400 * mode.stamps_per_call());
        }
    }

    #[test]
    fn churn_multiplexes_many_sessions_over_few_slots() {
        // M = 8 threads x 8 lives = 64 sessions over n = 2 shards x 4
        // slots = 8 physical register slots.
        let t = target(2, 4, IssueMode::Single);
        let scenario = Scenario {
            name: "svc_churn",
            arrival: Arrival::ClosedLoop,
            mix: OpMix::get_ts_only(),
            churn: Some(Churn { ops_per_life: 25 }),
        };
        let cfg = RunConfig {
            threads: 8,
            ops_per_thread: 200,
            seed: 11,
        };
        let report = run_scenario(&t, &scenario, &cfg);
        assert_eq!(report.lives, 64, "64 churn lives = 64 client sessions");
        assert_eq!(t.service().sessions(), 64);
        let stats = t.service_stats().unwrap();
        assert_eq!(stats.stamps, 8 * 200);
        assert_eq!(
            t.service().registers(),
            16,
            "fixed register space (8 slots x 2-register pairs) despite 64 clients"
        );
    }
}
