//! Recorded histories: exact happens-before checking for real threads.
//!
//! The model checker verifies the timestamp property over simulated
//! schedules; this module brings the same check to *real* concurrent
//! executions. Every `getTS` call is bracketed by ticks of a global
//! atomic sequencer: if call `a`'s response tick precedes call `b`'s
//! invocation tick, then `a` really did happen before `b` (the
//! sequencer is monotone), so `compare` must order their outputs. The
//! converse direction is conservative — overlapping calls are simply
//! not constrained — which is exactly the paper's specification.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::GetTsError;
use crate::timestamp::Timestamp;

/// One recorded `getTS` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedCall {
    /// The calling process.
    pub pid: usize,
    /// Global tick taken immediately before the call.
    pub invoked: u64,
    /// Global tick taken immediately after the call returned.
    pub responded: u64,
    /// The returned timestamp.
    pub output: Timestamp,
}

impl RecordedCall {
    /// Whether this call provably happened before `other`.
    pub fn happens_before(&self, other: &RecordedCall) -> bool {
        self.responded < other.invoked
    }
}

/// A pair of recorded calls violating the timestamp property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedViolation {
    /// The earlier call.
    pub earlier: RecordedCall,
    /// The later call.
    pub later: RecordedCall,
}

impl fmt::Display for RecordedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p{} returned {} before p{} started, which returned {}",
            self.earlier.pid, self.earlier.output, self.later.pid, self.later.output
        )
    }
}

/// Records real-time `getTS` intervals and checks the timestamp
/// property post-hoc.
///
/// # Example
///
/// ```
/// use ts_core::{HistoryRecorder, OneShotTimestamp, SimpleOneShot};
///
/// let ts = SimpleOneShot::new(2);
/// let recorder = HistoryRecorder::new();
/// recorder.record(0, || ts.get_ts(0)).unwrap();
/// recorder.record(1, || ts.get_ts(1)).unwrap();
/// assert!(recorder.violations().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    calls: Mutex<Vec<RecordedCall>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `call` for process `pid`, bracketing it with global ticks.
    ///
    /// # Errors
    ///
    /// Propagates the inner call's error (nothing is recorded then).
    pub fn record(
        &self,
        pid: usize,
        call: impl FnOnce() -> Result<Timestamp, GetTsError>,
    ) -> Result<Timestamp, GetTsError> {
        let invoked = self.clock.fetch_add(1, Ordering::SeqCst);
        let output = call()?;
        let responded = self.clock.fetch_add(1, Ordering::SeqCst);
        self.calls
            .lock()
            .expect("recorder mutex")
            .push(RecordedCall {
                pid,
                invoked,
                responded,
                output,
            });
        Ok(output)
    }

    /// Records an infallible call (e.g. [`crate::GrowableTimestamp`]).
    pub fn record_infallible(&self, pid: usize, call: impl FnOnce() -> Timestamp) -> Timestamp {
        self.record(pid, || Ok(call())).expect("infallible call")
    }

    /// All recorded calls so far (in response order).
    pub fn calls(&self) -> Vec<RecordedCall> {
        self.calls.lock().expect("recorder mutex").clone()
    }

    /// Number of recorded calls.
    pub fn len(&self) -> usize {
        self.calls.lock().expect("recorder mutex").len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every pair of provably-ordered calls whose outputs `compare`
    /// wrongly (empty for correct objects).
    pub fn violations(&self) -> Vec<RecordedViolation> {
        let calls = self.calls();
        let mut out = Vec::new();
        for a in &calls {
            for b in &calls {
                if a.happens_before(b) {
                    let forward = Timestamp::compare(&a.output, &b.output);
                    let backward = Timestamp::compare(&b.output, &a.output);
                    if !forward || backward {
                        out.push(RecordedViolation {
                            earlier: *a,
                            later: *b,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broken::BrokenConstant;
    use crate::simple::SimpleOneShot;
    use crate::traits::OneShotTimestamp;
    use std::sync::Arc;

    #[test]
    fn sequential_calls_are_ordered_and_clean() {
        let ts = SimpleOneShot::new(3);
        let rec = HistoryRecorder::new();
        for p in 0..3 {
            rec.record(p, || ts.get_ts(p)).unwrap();
        }
        assert_eq!(rec.len(), 3);
        assert!(rec.violations().is_empty());
        let calls = rec.calls();
        assert!(calls[0].happens_before(&calls[1]));
        assert!(!calls[1].happens_before(&calls[0]));
    }

    #[test]
    fn broken_object_is_flagged() {
        let ts = BrokenConstant::new(2);
        let rec = HistoryRecorder::new();
        rec.record(0, || ts.get_ts(0)).unwrap();
        rec.record(1, || ts.get_ts(1)).unwrap();
        let violations = rec.violations();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("p0"));
    }

    #[test]
    fn failed_calls_are_not_recorded() {
        let ts = SimpleOneShot::new(1);
        let rec = HistoryRecorder::new();
        rec.record(0, || ts.get_ts(0)).unwrap();
        assert!(rec.record(0, || ts.get_ts(0)).is_err());
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn concurrent_recording_finds_no_false_positives() {
        let n = 16;
        let ts = Arc::new(SimpleOneShot::new(n));
        let rec = Arc::new(HistoryRecorder::new());
        crossbeam::scope(|s| {
            for p in 0..n {
                let ts = Arc::clone(&ts);
                let rec = Arc::clone(&rec);
                s.spawn(move |_| {
                    rec.record(p, || ts.get_ts(p)).unwrap();
                });
            }
        })
        .unwrap();
        assert!(rec.violations().is_empty());
        assert_eq!(rec.len(), n);
        assert!(!rec.is_empty());
    }
}
