//! Long-lived collect-max baseline (`n` SWMR registers) with a
//! cached-max fast path.
//!
//! The matching upper bound for Theorem 1.1 cited by the paper is the
//! `n−1`-register wait-free algorithm of Ellen, Fatourou and Ruppert
//! (Distributed Computing 2008). That construction lives in a different
//! paper; we substitute the folklore `n`-register algorithm with the same
//! asymptotics and progress guarantee (see DESIGN.md §5): every process
//! owns one single-writer register; `getTS()` collects all registers,
//! picks `max + 1`, writes it to its own register and returns it.
//!
//! Register contents are bounded counters, so the object defaults to the
//! word-inlined [`PackedBackend`] (one hardware atomic per register
//! operation). The packed value budget is 32 bits — comfortably more
//! than 4 × 10⁹ `getTS` calls; workloads beyond that should use
//! [`EpochCollectMax`].
//!
//! # The cached-max fast path
//!
//! The full collect costs `n` reads of `n` cache lines, most of them
//! freshly invalidated under write contention. This module keeps a
//! shared *cached maximum* — one padded `AtomicU64` — beside the
//! register array and gives [`CollectMax::get_ts`] a fallback ladder:
//!
//! 1. **fast path**: one `Acquire` load of the cache, then one CAS
//!    advancing it from `m` to `m + 1`; on success the process writes
//!    `m + 1` to its own register and returns it — three shared
//!    accesses total, independent of `n`;
//! 2. **validation failure** (the CAS lost a race): fall back to the
//!    classic full collect — seeded with the cache value the failed CAS
//!    observed — write `max + 1` to the own register, then publish it
//!    into the cache with a `fetch_max` retry chain.
//!
//! Correctness rests on four invariants, spelled out at
//! [`CollectMax::get_ts_fast_paused`]; the fast path is model-checked
//! by `ts_core::model::CollectMaxFastModel` (Explorer + PCT sweeps in
//! `tests/model_check.rs`) and replayed against this implementation
//! from the checked-in trace corpus.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ts_register::{
    ArrayLayout, CachePadded, EpochBackend, PackedBackend, RegisterArray, RegisterBackend,
    SpaceMeter,
};

use crate::error::GetTsError;
use crate::stats::ServiceStats;
use crate::timestamp::Timestamp;
use crate::traits::LongLivedTimestamp;

/// A reservation of `k` consecutive timestamps from one
/// [`CollectMax::get_ts_batch`] call — an iterator yielding
/// `first..=last` as [`Timestamp`]s.
///
/// The whole range was reserved by a single successful CAS on the
/// cached maximum, so distinct batches (and fast-path singles) never
/// overlap; see `get_ts_batch` for the exact uniqueness contract.
#[derive(Debug, Clone)]
pub struct StampBatch {
    next: u64,
    last: u64,
}

impl StampBatch {
    fn new(first: u64, last: u64) -> Self {
        Self { next: first, last }
    }

    /// The smallest stamp in the batch (named to avoid shadowing
    /// [`Iterator::last`], which consumes the iterator).
    pub fn first_stamp(&self) -> Timestamp {
        Timestamp::scalar(self.next)
    }

    /// The largest stamp in the batch (what the issuer published to its
    /// register).
    pub fn last_stamp(&self) -> Timestamp {
        Timestamp::scalar(self.last)
    }

    /// Stamps remaining to be yielded.
    pub fn remaining(&self) -> usize {
        (self.last + 1 - self.next) as usize
    }
}

impl Iterator for StampBatch {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.next > self.last {
            return None;
        }
        let t = Timestamp::scalar(self.next);
        self.next += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for StampBatch {}

/// Long-lived timestamp object over `n` single-writer registers, generic
/// over the register storage backend.
///
/// Wait-free; timestamps are scalars ordered by `<`. If two concurrent
/// calls return equal values the object is still correct: the timestamp
/// property only constrains non-overlapping calls, and a call that starts
/// after another finishes always observes its effect and returns a
/// strictly larger value.
///
/// `get_ts` serves most calls from the cached-max fast path (one load +
/// one CAS instead of an `n`-read collect — see the module docs);
/// [`CollectMax::fast_path_hits`] reports how often.
///
/// # Example
///
/// ```
/// use ts_core::{CollectMax, LongLivedTimestamp, Timestamp};
///
/// let ts = CollectMax::new(4);
/// let a = ts.get_ts(0).unwrap();
/// let b = ts.get_ts(0).unwrap(); // long-lived: same process again
/// assert!(Timestamp::compare(&a, &b));
/// assert!(ts.fast_path_hits() >= 1);
/// ```
pub struct CollectMax<B: RegisterBackend<u64> = PackedBackend> {
    /// One SWMR register per process, padded by default (each register
    /// has exactly one writer, the textbook false-sharing victim).
    /// Held in a [`RegisterArray`] since the adaptive-scan PR, so every
    /// register write feeds the array's write-summary and block dirty
    /// words and [`read_max_scan`](CollectMax::read_max_scan) can ride
    /// the same validated-collect ladder as the `ts-snapshot` scan.
    registers: RegisterArray<u64, B>,
    /// Cached maximum: `>=` the value of every *completed* `getTS`
    /// call, advanced only by CAS/fetch-max (hence monotone). Padded so
    /// fast-path CASes never share a line with any register.
    cached_max: CachePadded<AtomicU64>,
    meter: SpaceMeter,
    calls: AtomicU64,
    fast_hits: AtomicU64,
    batches: AtomicU64,
    batched_stamps: AtomicU64,
    scan_recollects: AtomicU64,
}

/// [`CollectMax`] over epoch-reclaimed heap-cell registers — same
/// algorithm, heavier substrate; supports counters beyond the packed
/// 32-bit budget and anchors the `bench_contention` comparison.
pub type EpochCollectMax = CollectMax<EpochBackend>;

impl CollectMax<PackedBackend> {
    /// Creates an object for `processes` processes using `n` word-inlined
    /// registers (the default backend), cache-line padded.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn new(processes: usize) -> Self {
        Self::with_backend(processes)
    }
}

impl<B: RegisterBackend<u64>> CollectMax<B> {
    /// Creates an object for `processes` processes using `n` registers on
    /// the backend `B`, in the default padded layout.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn with_backend(processes: usize) -> Self {
        Self::with_layout(processes, ArrayLayout::Padded)
    }

    /// Creates an object with an explicit register [`ArrayLayout`]
    /// (compact exists for the padded-vs-unpadded contention
    /// comparison in `ts-workloads`/`ts-bench`).
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn with_layout(processes: usize, layout: ArrayLayout) -> Self {
        assert!(processes > 0, "need at least one process");
        let meter = SpaceMeter::new(processes);
        Self {
            // The array meters its own register traffic, so the
            // explicit record_* calls of the pre-array implementation
            // are gone from the getTS paths.
            registers: RegisterArray::with_layout_and_meter(processes, 0, layout, meter.clone()),
            cached_max: CachePadded::new(AtomicU64::new(0)),
            meter,
            calls: AtomicU64::new(0),
            fast_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_stamps: AtomicU64::new(0),
            scan_recollects: AtomicU64::new(0),
        }
    }

    /// The register memory layout this object was built with.
    pub fn layout(&self) -> ArrayLayout {
        self.registers.layout()
    }

    fn register_count(&self) -> usize {
        self.registers.capacity()
    }

    fn read_register(&self, index: usize) -> u64 {
        self.registers.read(index).expect("index in range")
    }

    fn write_register(&self, index: usize, value: u64) {
        self.registers.write(index, value).expect("index in range");
    }

    /// The meter recording this object's register traffic (the cached
    /// maximum is auxiliary state, not one of the `n` registers, so its
    /// accesses are not metered).
    pub fn meter(&self) -> &SpaceMeter {
        &self.meter
    }

    /// Total `getTS` calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// `getTS` calls served by the cached-max fast path (one load + one
    /// CAS, no collect). `calls() - fast_path_hits()` took the full
    /// collect fallback.
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_hits.load(Ordering::Relaxed)
    }

    /// Unified hot-path counter snapshot (the [`ServiceStats`] fold of
    /// the PR-5 `fast_path_hits` pattern): calls, stamps, fast hits and
    /// batch fill in one struct, so reports show *ratios* instead of
    /// opaque throughput. Combining counters stay zero — this object
    /// has no combiner; `shard_stamps` is the single-shard vector.
    pub fn stats(&self) -> ServiceStats {
        let calls = self.calls.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_stamps.load(Ordering::Relaxed);
        // Non-batch calls issue one stamp each (saturating: a racing
        // snapshot may observe a call's batch bump before its call
        // bump — the counters are Relaxed by design).
        let stamps = calls.saturating_sub(batches) + batched;
        ServiceStats {
            calls,
            stamps,
            fast_hits: self.fast_hits.load(Ordering::Relaxed),
            batches,
            batched_stamps: batched,
            shard_stamps: vec![stamps],
            dirty_recollects: self.scan_recollects.load(Ordering::Relaxed),
            ..Default::default()
        }
    }

    /// Reserves `k` **consecutive** timestamps with a single successful
    /// CAS on the cached maximum — the batched `getTS` amortization:
    /// one atomic RMW (plus one register write) hands out `k` stamps,
    /// so the per-stamp contention cost shrinks by `k`.
    ///
    /// The call CAS-loops `m -> m + k` on the cached maximum (the loop
    /// is the only retry — there is no collect fallback on this path),
    /// then writes `m + k` to the caller's register and returns the
    /// batch `m+1 ..= m+k`.
    ///
    /// # Uniqueness and ordering
    ///
    /// Every reservation wins its interval `(m, m+k]` with a CAS from
    /// `m`: no two successful CASes share a starting value, and the
    /// cache is monotone (I1), so intervals from *all* batch calls and
    /// all fast-path singles are pairwise disjoint — the stamps they
    /// issue are globally unique, not merely ordered. Only the
    /// collect fallback of [`get_ts`](LongLivedTimestamp::get_ts) (and
    /// the replay-only classic path) can duplicate a concurrent
    /// reservation's value, exactly as two concurrent collect calls
    /// could before; the timestamp property is indifferent to it.
    ///
    /// The invariants I1–I4 of
    /// [`get_ts_fast_paused`](Self::get_ts_fast_paused) carry over with
    /// `k` in place of 1: completion publishes (the winning CAS itself
    /// made the cache `>= m+k`, I2), the register covers the batch top
    /// (I3; the write is monotone because the reservation base `m` is
    /// at least the cache value this process's previous call
    /// published), so a `getTS` starting after this call returns
    /// strictly more than `m + k` — every stamp in the batch is
    /// ordered before it.
    ///
    /// # Errors
    ///
    /// [`GetTsError::PidOutOfRange`] if `pid >= processes`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (an empty reservation is a caller bug).
    pub fn get_ts_batch(&self, pid: usize, k: u32) -> Result<StampBatch, GetTsError> {
        let n = self.register_count();
        if pid >= n {
            return Err(GetTsError::PidOutOfRange { pid, processes: n });
        }
        assert!(k >= 1, "batch reservation needs k >= 1");
        let k = u64::from(k);
        let mut m = self.cached_max.load(Ordering::Acquire);
        let mut first_attempt = true;
        loop {
            match self
                .cached_max
                .compare_exchange(m, m + k, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => {
                    m = now;
                    first_attempt = false;
                }
            }
        }
        self.write_register(pid, m + k);
        self.calls.fetch_add(1, Ordering::Relaxed);
        if first_attempt {
            self.fast_hits.fetch_add(1, Ordering::Relaxed);
        }
        if k > 1 {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.batched_stamps.fetch_add(k, Ordering::Relaxed);
        }
        Ok(StampBatch::new(m + 1, m + k))
    }

    /// `getTS` along the **classic collect path** with a pause hook:
    /// `pause` runs immediately before every announced shared-memory
    /// access (each of the `n` register reads, then the write of the
    /// process's own register).
    ///
    /// This is the step-barrier seam of the schedule-replay harness: a
    /// controller whose `pause` blocks on a
    /// [`StepGate`](crate::workload::StepGate) can hold this call
    /// between any two accesses — e.g. keep the final write pending
    /// while other processes complete, the paper's stalled-writer
    /// adversary. With a no-op hook this is the collect fallback of
    /// `get_ts` (the closure inlines away). Its model twin is
    /// `ts_core::model::CollectMaxModel`, and the checked-in trace
    /// corpus depends on its announced-access sequence staying exactly
    /// `n` reads + 1 write.
    ///
    /// One access is deliberately *not* announced: after the own-register
    /// write, the call publishes its value into the cached maximum with
    /// a silent `fetch_max`. The cache never feeds back into this path
    /// (it is read only by the fast path), so the silent access cannot
    /// change any announced access's observation or this call's output —
    /// announcing it would desynchronize every pre-fast-path trace for
    /// no replay fidelity gain. It must happen, though: a later
    /// *fast-path* call is entitled to see this call's value in the
    /// cache (invariant I2 below).
    ///
    /// # Errors
    ///
    /// [`GetTsError::PidOutOfRange`] if `pid >= processes`.
    pub fn get_ts_paused(
        &self,
        pid: usize,
        mut pause: impl FnMut(),
    ) -> Result<Timestamp, GetTsError> {
        let n = self.register_count();
        if pid >= n {
            return Err(GetTsError::PidOutOfRange { pid, processes: n });
        }
        let mut max = 0u64;
        for i in 0..n {
            pause();
            max = max.max(self.read_register(i));
        }
        let t = max + 1;
        pause();
        self.write_register(pid, t);
        // Silent cache publication (see above): not an announced
        // sub-step, but required so fast-path readers observe this
        // call's value once it completes.
        self.cached_max.fetch_max(t, Ordering::AcqRel);
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(Timestamp::scalar(t))
    }

    /// `getTS` along the **cached-max fast path** (what
    /// [`get_ts`](LongLivedTimestamp::get_ts) runs), with a pause hook
    /// before every shared-memory access — the replay seam for the fast
    /// path's model twin, `ts_core::model::CollectMaxFastModel`.
    ///
    /// Access sequence (each preceded by one `pause()`):
    /// cache load; cache CAS; then either the own-register write (CAS
    /// succeeded) or the `n`-read collect, the own-register write, and
    /// the fetch-max retry chain (one cache load, then one CAS per
    /// retry).
    ///
    /// # Why the fast path never returns a stale max
    ///
    /// Four invariants carry the timestamp property across both paths:
    ///
    /// - **I1 (monotone cache)**: the cached maximum is only ever
    ///   advanced — by the fast path's `CAS(m → m+1)` and the slow
    ///   path's `fetch_max` — so its value never decreases.
    /// - **I2 (completion publishes)**: every call that returns `t`
    ///   made the cache `>= t` before returning (the fast path's own
    ///   successful CAS; the slow path's fetch-max chain, which only
    ///   stops once the cache is `>= t`).
    /// - **I3 (registers cover completions)**: every call that returns
    ///   `t` wrote `t` to its own register before returning, and each
    ///   process's register values are strictly increasing (both paths
    ///   return values strictly above the process's previous value, by
    ///   I1/I2 for the fast path and by the collect including the own
    ///   register for the slow path).
    /// - **I4 (cache observations are floors)**: the slow path seeds
    ///   its collect with the cache value its failed CAS observed, so
    ///   a call along *either* branch returns strictly more than any
    ///   cache value it observed — which is what makes
    ///   [`read_max`](Self::read_max) a sound lower bound even while
    ///   the cache transiently exceeds every register (a fast-path
    ///   call parked between its CAS and its register write).
    ///
    /// If call `A` (returning `t_A`) completes before call `B` begins:
    /// a fast-path `B` loads the cache after `A` made it `>= t_A` (I1,
    /// I2) and returns at least `t_A + 1`; a slow-path or classic
    /// [`get_ts_paused`](Self::get_ts_paused) `B` collects `A`'s
    /// register, which still holds
    /// `>= t_A` (I3), and returns at least `t_A + 1`. Overlapping calls
    /// are unconstrained by the timestamp property, exactly as in the
    /// collect-only algorithm.
    ///
    /// # Errors
    ///
    /// [`GetTsError::PidOutOfRange`] if `pid >= processes`.
    pub fn get_ts_fast_paused(
        &self,
        pid: usize,
        mut pause: impl FnMut(),
    ) -> Result<Timestamp, GetTsError> {
        let n = self.register_count();
        if pid >= n {
            return Err(GetTsError::PidOutOfRange { pid, processes: n });
        }
        pause();
        let m = self.cached_max.load(Ordering::Acquire);
        let t = m + 1;
        pause();
        let observed =
            match self
                .cached_max
                .compare_exchange(m, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // Fast path: we advanced the cache m -> m+1 ourselves,
                    // so t is fresh. Publish it in our register for
                    // collectors (I3).
                    pause();
                    self.write_register(pid, t);
                    self.fast_hits.fetch_add(1, Ordering::Relaxed);
                    self.calls.fetch_add(1, Ordering::Relaxed);
                    return Ok(Timestamp::scalar(t));
                }
                Err(now) => now,
            };
        // Validation failed — someone advanced the cache under us. Fall
        // back to the classic collect, seeded with the cache value the
        // failed CAS observed (I4: the cache can transiently exceed
        // every register, and folding it in keeps every observed cache
        // value a floor for later outputs), then publish into the cache
        // (I2) with a CAS retry chain (fetch_max spelled out so every
        // access has a pause point).
        let mut max = observed;
        for i in 0..n {
            pause();
            max = max.max(self.read_register(i));
        }
        let t = max + 1;
        pause();
        self.write_register(pid, t);
        pause();
        let mut cur = self.cached_max.load(Ordering::Acquire);
        while cur < t {
            pause();
            match self
                .cached_max
                .compare_exchange(cur, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(Timestamp::scalar(t))
    }

    /// Read-only observation: the cached maximum, as a timestamp, from
    /// a single `Acquire` load.
    ///
    /// Contract (invariants I1/I2/I4 of
    /// [`get_ts_fast_paused`](Self::get_ts_fast_paused)): the result is
    /// monotone across reads, `>=` the value of every `get_ts` call
    /// completed before the read, and a strict lower bound on every
    /// timestamp a *later* [`get_ts`](LongLivedTimestamp::get_ts) call
    /// can return — both its branches start from a cache observation at
    /// least this large. One documented exemption: the replay-only
    /// classic path [`get_ts_paused`](Self::get_ts_paused) collects
    /// registers without consulting the cache (its announced-access
    /// sequence is pinned by the trace corpus), so while the cache runs
    /// ahead of the registers — fast-path callers parked between their
    /// CAS and their register write — a concurrent-with-them classic
    /// call may return less than an earlier `read_max`. Completed calls
    /// are always covered, on every path.
    pub fn read_max(&self) -> Timestamp {
        Timestamp::scalar(self.cached_max.load(Ordering::Acquire))
    }

    /// Read-only full collect: the maximum value currently in any
    /// register, without consulting the cache. Costs `n` metered reads;
    /// kept for diagnostics and for benchmarking against
    /// [`read_max`](Self::read_max).
    pub fn read_max_collect(&self) -> Timestamp {
        let mut max = 0u64;
        for i in 0..self.register_count() {
            max = max.max(self.read_register(i));
        }
        Timestamp::scalar(max)
    }

    /// Read-only **validated** collect: the maximum value in a
    /// linearizable view of the register bank, obtained through the
    /// adaptive scan ladder of `ts-snapshot` (summary short-circuit,
    /// then dirty-block recollect passes). Unlike
    /// [`read_max_collect`](Self::read_max_collect), whose sweep can
    /// interleave with writes and mix values from different instants,
    /// the view this max is taken from was simultaneously present.
    ///
    /// Dirty-block retry passes are counted into the
    /// `dirty_recollects` field of [`stats`](Self::stats).
    pub fn read_max_scan(&self) -> Timestamp {
        let (view, outcome) = ts_snapshot::adaptive_scan(&self.registers);
        self.scan_recollects
            .fetch_add(outcome.recollect_passes, Ordering::Relaxed);
        Timestamp::scalar(view.entries().iter().map(|s| s.value).max().unwrap_or(0))
    }
}

impl<B: RegisterBackend<u64>> LongLivedTimestamp for CollectMax<B> {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        self.get_ts_fast_paused(pid, || {})
    }

    fn processes(&self) -> usize {
        self.register_count()
    }

    fn registers(&self) -> usize {
        self.register_count()
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for CollectMax<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectMax")
            .field("processes", &self.register_count())
            .field("layout", &self.layout())
            .field("calls", &self.calls())
            .field("fast_path_hits", &self.fast_path_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_calls_increase() {
        let ts = CollectMax::new(3);
        let mut last = Timestamp::scalar(0);
        for round in 0..5 {
            for p in 0..3 {
                let t = ts.get_ts(p).unwrap();
                assert!(
                    Timestamp::compare(&last, &t),
                    "round {round} p{p}: {last} !< {t}"
                );
                last = t;
            }
        }
        assert_eq!(ts.calls(), 15);
        // Solo, every CAS succeeds: all 15 calls take the fast path.
        assert_eq!(ts.fast_path_hits(), 15);
    }

    #[test]
    fn epoch_backend_behaves_identically_sequentially() {
        let ts = EpochCollectMax::with_backend(3);
        let mut last = Timestamp::scalar(0);
        for p in [0usize, 1, 2, 0, 1, 2] {
            let t = ts.get_ts(p).unwrap();
            assert!(Timestamp::compare(&last, &t));
            last = t;
        }
        assert_eq!(ts.calls(), 6);
    }

    #[test]
    fn compact_layout_behaves_identically() {
        let ts = CollectMax::<PackedBackend>::with_layout(2, ArrayLayout::Compact);
        assert_eq!(ts.layout(), ArrayLayout::Compact);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(1).unwrap();
        assert!(Timestamp::compare(&a, &b));
    }

    #[test]
    fn same_process_repeats_fine() {
        let ts = CollectMax::new(1);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(0).unwrap();
        assert!(Timestamp::compare(&a, &b));
    }

    #[test]
    fn out_of_range_pid_is_rejected() {
        let ts = CollectMax::new(2);
        assert!(ts.get_ts(2).is_err());
        assert!(ts.get_ts_paused(2, || {}).is_err());
        assert!(ts.get_ts_fast_paused(2, || {}).is_err());
    }

    #[test]
    fn uses_exactly_n_registers() {
        let ts = CollectMax::new(5);
        for p in 0..5 {
            ts.get_ts(p).unwrap();
        }
        assert_eq!(ts.meter().snapshot().registers_written(), 5);
    }

    #[test]
    fn classic_path_still_orders_and_feeds_the_fast_path() {
        let ts = CollectMax::new(2);
        // Classic collect path completes with 3...
        let a = ts.get_ts_paused(0, || {}).unwrap();
        let b = ts.get_ts_paused(1, || {}).unwrap();
        // ...and the silent fetch_max must make the fast path see it.
        let c = ts.get_ts(0).unwrap();
        assert!(Timestamp::compare(&a, &b));
        assert!(
            Timestamp::compare(&b, &c),
            "fast path returned a max stale against the classic path: {b} !< {c}"
        );
        assert_eq!(ts.read_max(), c);
    }

    #[test]
    fn read_max_covers_every_completed_call() {
        let ts = CollectMax::new(3);
        let mut top = Timestamp::scalar(0);
        for p in [0usize, 2, 1, 0] {
            top = ts.get_ts(p).unwrap();
            let seen = ts.read_max();
            assert!(
                !Timestamp::compare(&seen, &top),
                "read_max {seen} fell below completed call {top}"
            );
        }
        assert_eq!(ts.read_max_collect(), top);
        assert_eq!(ts.read_max(), top);
    }

    #[test]
    fn fast_paused_announces_the_documented_access_sequence() {
        let ts = CollectMax::new(2);
        let mut pauses = 0u32;
        let t = ts.get_ts_fast_paused(0, || pauses += 1).unwrap();
        assert_eq!(t, Timestamp::scalar(1));
        // Solo fast path: cache load, CAS, own write.
        assert_eq!(pauses, 3);
        assert_eq!(ts.fast_path_hits(), 1);
    }

    #[test]
    fn barrier_separated_rounds_are_ordered_across_threads() {
        fn run<B: RegisterBackend<u64>>() {
            let n = 8;
            let ts = Arc::new(CollectMax::<B>::with_backend(n));
            let mut round_maxima = Vec::new();
            for _round in 0..4 {
                let outs: Vec<Timestamp> = crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..n)
                        .map(|p| {
                            let ts = Arc::clone(&ts);
                            s.spawn(move |_| ts.get_ts(p).unwrap())
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .unwrap();
                let max = outs.iter().copied().max().unwrap();
                let min = outs.iter().copied().min().unwrap();
                if let Some(prev_max) = round_maxima.last() {
                    assert!(
                        Timestamp::compare(prev_max, &min),
                        "cross-round ordering broken: {prev_max} !< {min}"
                    );
                }
                round_maxima.push(max);
            }
        }
        run::<PackedBackend>();
        run::<EpochBackend>();
    }

    #[test]
    fn batch_reserves_consecutive_stamps_after_the_current_max() {
        let ts = CollectMax::new(2);
        let a = ts.get_ts(0).unwrap(); // 1
        let batch: Vec<Timestamp> = ts.get_ts_batch(1, 4).unwrap().collect();
        assert_eq!(
            batch,
            (2..=5).map(Timestamp::scalar).collect::<Vec<_>>(),
            "batch must be consecutive starting above the completed call"
        );
        assert!(Timestamp::compare(&a, &batch[0]));
        // A later single call starts above the whole batch.
        let b = ts.get_ts(0).unwrap();
        assert_eq!(b, Timestamp::scalar(6));
        assert_eq!(ts.calls(), 3);
        let stats = ts.stats();
        assert_eq!(stats.stamps, 6);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.avg_batch_fill(), Some(4.0));
        assert_eq!(stats.fast_hit_ratio(), Some(1.0), "solo: every CAS wins");
    }

    #[test]
    fn batch_of_one_matches_single_issue_semantics() {
        let ts = CollectMax::new(1);
        let only: Vec<Timestamp> = ts.get_ts_batch(0, 1).unwrap().collect();
        assert_eq!(only, vec![Timestamp::scalar(1)]);
        // k = 1 is not counted as a batch (no amortization happened).
        assert_eq!(ts.stats().batches, 0);
        assert_eq!(ts.read_max(), Timestamp::scalar(1));
    }

    #[test]
    fn batch_rejects_bad_pid_and_publishes_its_top() {
        let ts = CollectMax::new(2);
        assert!(ts.get_ts_batch(2, 4).is_err());
        let batch = ts.get_ts_batch(0, 3).unwrap();
        assert_eq!(batch.first_stamp(), Timestamp::scalar(1));
        assert_eq!(batch.last_stamp(), Timestamp::scalar(3));
        assert_eq!(batch.remaining(), 3);
        // The register and cache both cover the batch top, so a
        // collector started after the call sees all three stamps.
        assert_eq!(ts.read_max(), Timestamp::scalar(3));
        assert_eq!(ts.read_max_collect(), Timestamp::scalar(3));
    }

    #[test]
    fn concurrent_batches_never_overlap() {
        use std::collections::HashSet;
        let n = 4;
        let per_thread = 200u32;
        let ts = Arc::new(CollectMax::<PackedBackend>::with_backend(n));
        let all: Vec<Vec<u64>> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let ts = Arc::clone(&ts);
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        for i in 0..per_thread {
                            let k = 1 + ((p as u32 + i) % 5);
                            got.extend(ts.get_ts_batch(p, k).unwrap().map(|t| t.rnd));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let flat: Vec<u64> = all.into_iter().flatten().collect();
        let unique: HashSet<u64> = flat.iter().copied().collect();
        assert_eq!(unique.len(), flat.len(), "batch reservations overlapped");
    }

    #[test]
    fn mixed_fast_and_classic_paths_stay_ordered_across_threads() {
        // Half the threads use the fast path, half the classic collect;
        // barrier-separated rounds must stay ordered regardless of
        // which path produced which value.
        let n = 6;
        let ts = Arc::new(CollectMax::<PackedBackend>::with_backend(n));
        let mut prev_round_max: Option<Timestamp> = None;
        for _round in 0..8 {
            let outs: Vec<Timestamp> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|p| {
                        let ts = Arc::clone(&ts);
                        s.spawn(move |_| {
                            if p % 2 == 0 {
                                ts.get_ts(p).unwrap()
                            } else {
                                ts.get_ts_paused(p, || {}).unwrap()
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            let max = *outs.iter().max().unwrap();
            let min = *outs.iter().min().unwrap();
            if let Some(prev) = prev_round_max {
                assert!(
                    Timestamp::compare(&prev, &min),
                    "mixed-path ordering broken: {prev} !< {min}"
                );
            }
            prev_round_max = Some(max);
        }
    }
}
