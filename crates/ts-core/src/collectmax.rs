//! Long-lived collect-max baseline (`n` SWMR registers).
//!
//! The matching upper bound for Theorem 1.1 cited by the paper is the
//! `n−1`-register wait-free algorithm of Ellen, Fatourou and Ruppert
//! (Distributed Computing 2008). That construction lives in a different
//! paper; we substitute the folklore `n`-register algorithm with the same
//! asymptotics and progress guarantee (see DESIGN.md §5): every process
//! owns one single-writer register; `getTS()` collects all registers,
//! picks `max + 1`, writes it to its own register and returns it.
//!
//! Register contents are bounded counters, so the object defaults to the
//! word-inlined [`PackedBackend`] (one hardware atomic per register
//! operation). The packed value budget is 32 bits — comfortably more
//! than 4 × 10⁹ `getTS` calls; workloads beyond that should use
//! [`EpochCollectMax`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ts_register::{BackendRegister, EpochBackend, PackedBackend, RegisterBackend, SpaceMeter};

use crate::error::GetTsError;
use crate::timestamp::Timestamp;
use crate::traits::LongLivedTimestamp;

/// Long-lived timestamp object over `n` single-writer registers, generic
/// over the register storage backend.
///
/// Wait-free; timestamps are scalars ordered by `<`. If two concurrent
/// calls return equal values the object is still correct: the timestamp
/// property only constrains non-overlapping calls, and a call that starts
/// after another finishes always observes its write and returns a
/// strictly larger value.
///
/// # Example
///
/// ```
/// use ts_core::{CollectMax, LongLivedTimestamp, Timestamp};
///
/// let ts = CollectMax::new(4);
/// let a = ts.get_ts(0).unwrap();
/// let b = ts.get_ts(0).unwrap(); // long-lived: same process again
/// assert!(Timestamp::compare(&a, &b));
/// ```
pub struct CollectMax<B: RegisterBackend<u64> = PackedBackend> {
    registers: Vec<B::Reg>,
    meter: SpaceMeter,
    calls: AtomicU64,
}

/// [`CollectMax`] over epoch-reclaimed heap-cell registers — same
/// algorithm, heavier substrate; supports counters beyond the packed
/// 32-bit budget and anchors the `bench_contention` comparison.
pub type EpochCollectMax = CollectMax<EpochBackend>;

impl CollectMax<PackedBackend> {
    /// Creates an object for `processes` processes using `n` word-inlined
    /// registers (the default backend).
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn new(processes: usize) -> Self {
        Self::with_backend(processes)
    }
}

impl<B: RegisterBackend<u64>> CollectMax<B> {
    /// Creates an object for `processes` processes using `n` registers on
    /// the backend `B`.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn with_backend(processes: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        Self {
            registers: (0..processes).map(|_| B::Reg::with_initial(0)).collect(),
            meter: SpaceMeter::new(processes),
            calls: AtomicU64::new(0),
        }
    }

    /// The meter recording this object's register traffic.
    pub fn meter(&self) -> &SpaceMeter {
        &self.meter
    }

    /// Total `getTS` calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// `getTS` with a pause hook: `pause` runs immediately before every
    /// shared-memory access (each of the `n` register reads, then the
    /// write of the process's own register).
    ///
    /// This is the step-barrier seam of the schedule-replay harness: a
    /// controller whose `pause` blocks on a
    /// [`StepGate`](crate::workload::StepGate) can hold this call
    /// between any two accesses — e.g. keep the final write pending
    /// while other processes complete, the paper's stalled-writer
    /// adversary. With a no-op hook this *is* `get_ts` (the closure
    /// inlines away).
    ///
    /// # Errors
    ///
    /// [`GetTsError::PidOutOfRange`] if `pid >= processes`.
    pub fn get_ts_paused(
        &self,
        pid: usize,
        mut pause: impl FnMut(),
    ) -> Result<Timestamp, GetTsError> {
        let n = self.registers.len();
        if pid >= n {
            return Err(GetTsError::PidOutOfRange { pid, processes: n });
        }
        let mut max = 0u64;
        for i in 0..n {
            pause();
            self.meter.record_read(i);
            max = max.max(ts_register::Register::read(&self.registers[i]));
        }
        let t = max + 1;
        pause();
        self.meter.record_write(pid);
        ts_register::Register::write(&self.registers[pid], t);
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(Timestamp::scalar(t))
    }

    /// Read-only collect: the maximum value currently in any register,
    /// as a timestamp, without writing anything.
    ///
    /// This is the observation half of `getTS` (the workload engine's
    /// *scan* operation); the returned timestamp is a lower bound on
    /// every timestamp a later `get_ts` call can return.
    pub fn read_max(&self) -> Timestamp {
        let mut max = 0u64;
        for i in 0..self.registers.len() {
            self.meter.record_read(i);
            max = max.max(ts_register::Register::read(&self.registers[i]));
        }
        Timestamp::scalar(max)
    }
}

impl<B: RegisterBackend<u64>> LongLivedTimestamp for CollectMax<B> {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        self.get_ts_paused(pid, || {})
    }

    fn processes(&self) -> usize {
        self.registers.len()
    }

    fn registers(&self) -> usize {
        self.registers.len()
    }
}

impl<B: RegisterBackend<u64>> fmt::Debug for CollectMax<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectMax")
            .field("processes", &self.registers.len())
            .field("calls", &self.calls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_calls_increase() {
        let ts = CollectMax::new(3);
        let mut last = Timestamp::scalar(0);
        for round in 0..5 {
            for p in 0..3 {
                let t = ts.get_ts(p).unwrap();
                assert!(
                    Timestamp::compare(&last, &t),
                    "round {round} p{p}: {last} !< {t}"
                );
                last = t;
            }
        }
        assert_eq!(ts.calls(), 15);
    }

    #[test]
    fn epoch_backend_behaves_identically_sequentially() {
        let ts = EpochCollectMax::with_backend(3);
        let mut last = Timestamp::scalar(0);
        for p in [0usize, 1, 2, 0, 1, 2] {
            let t = ts.get_ts(p).unwrap();
            assert!(Timestamp::compare(&last, &t));
            last = t;
        }
        assert_eq!(ts.calls(), 6);
    }

    #[test]
    fn same_process_repeats_fine() {
        let ts = CollectMax::new(1);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(0).unwrap();
        assert!(Timestamp::compare(&a, &b));
    }

    #[test]
    fn out_of_range_pid_is_rejected() {
        let ts = CollectMax::new(2);
        assert!(ts.get_ts(2).is_err());
    }

    #[test]
    fn uses_exactly_n_registers() {
        let ts = CollectMax::new(5);
        for p in 0..5 {
            ts.get_ts(p).unwrap();
        }
        assert_eq!(ts.meter().snapshot().registers_written(), 5);
    }

    #[test]
    fn barrier_separated_rounds_are_ordered_across_threads() {
        fn run<B: RegisterBackend<u64>>() {
            let n = 8;
            let ts = Arc::new(CollectMax::<B>::with_backend(n));
            let mut round_maxima = Vec::new();
            for _round in 0..4 {
                let outs: Vec<Timestamp> = crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..n)
                        .map(|p| {
                            let ts = Arc::clone(&ts);
                            s.spawn(move |_| ts.get_ts(p).unwrap())
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .unwrap();
                let max = outs.iter().copied().max().unwrap();
                let min = outs.iter().copied().min().unwrap();
                if let Some(prev_max) = round_maxima.last() {
                    assert!(
                        Timestamp::compare(prev_max, &min),
                        "cross-round ordering broken: {prev_max} !< {min}"
                    );
                }
                round_maxima.push(max);
            }
        }
        run::<PackedBackend>();
        run::<EpochBackend>();
    }
}
