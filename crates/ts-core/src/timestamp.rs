//! Timestamps and the `compare` method (Algorithm 3).

use std::fmt;

/// A timestamp `(rnd, turn)` as returned by Algorithm 4.
///
/// `compare` (Algorithm 3 of the paper) orders timestamps
/// lexicographically without accessing shared memory:
/// `(rnd1, turn1) < (rnd2, turn2)` iff `rnd1 < rnd2`, or `rnd1 = rnd2`
/// and `turn1 < turn2`.
///
/// Timestamps of the other algorithms in this crate (sums, counter
/// values) are embedded as `(value, 0)` so that every implementation
/// returns the same public type.
///
/// # Example
///
/// ```
/// use ts_core::Timestamp;
///
/// let a = Timestamp::new(2, 1);
/// let b = Timestamp::new(3, 0);
/// assert!(Timestamp::compare(&a, &b));
/// assert!(!Timestamp::compare(&b, &a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp {
    /// The phase/round number.
    pub rnd: u64,
    /// The turn within the round (0 for round-opening timestamps).
    pub turn: u64,
}

impl Timestamp {
    /// Creates a timestamp with the given round and turn.
    pub fn new(rnd: u64, turn: u64) -> Self {
        Self { rnd, turn }
    }

    /// Embeds a scalar timestamp (from the simple or collect-max
    /// algorithms) as `(value, 0)`.
    pub fn scalar(value: u64) -> Self {
        Self {
            rnd: value,
            turn: 0,
        }
    }

    /// Algorithm 3: `compare((rnd1, turn1), (rnd2, turn2))`.
    ///
    /// Returns `(rnd1 < rnd2) ∨ ((rnd1 = rnd2) ∧ (turn1 < turn2))`.
    /// No shared memory is accessed.
    pub fn compare(t1: &Timestamp, t2: &Timestamp) -> bool {
        (t1.rnd < t2.rnd) || (t1.rnd == t2.rnd && t1.turn < t2.turn)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rnd, self.turn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_is_lexicographic() {
        assert!(Timestamp::compare(
            &Timestamp::new(1, 9),
            &Timestamp::new(2, 0)
        ));
        assert!(Timestamp::compare(
            &Timestamp::new(2, 0),
            &Timestamp::new(2, 1)
        ));
        assert!(!Timestamp::compare(
            &Timestamp::new(2, 1),
            &Timestamp::new(2, 0)
        ));
    }

    #[test]
    fn compare_is_irreflexive() {
        let t = Timestamp::new(4, 2);
        assert!(!Timestamp::compare(&t, &t));
    }

    #[test]
    fn compare_agrees_with_derived_ord() {
        for (a, b) in [
            (Timestamp::new(0, 0), Timestamp::new(0, 1)),
            (Timestamp::new(1, 5), Timestamp::new(2, 0)),
            (Timestamp::new(3, 3), Timestamp::new(3, 3)),
        ] {
            assert_eq!(Timestamp::compare(&a, &b), a < b);
        }
    }

    #[test]
    fn scalar_embedding_orders_by_value() {
        assert!(Timestamp::compare(
            &Timestamp::scalar(1),
            &Timestamp::scalar(2)
        ));
        assert!(!Timestamp::compare(
            &Timestamp::scalar(2),
            &Timestamp::scalar(2)
        ));
    }

    #[test]
    fn display_formats_pair() {
        assert_eq!(Timestamp::new(3, 1).to_string(), "(3, 1)");
    }
}
