//! Timestamps and the `compare` method (Algorithm 3).

use std::fmt;

/// A timestamp `(rnd, turn)` as returned by Algorithm 4.
///
/// `compare` (Algorithm 3 of the paper) orders timestamps
/// lexicographically without accessing shared memory:
/// `(rnd1, turn1) < (rnd2, turn2)` iff `rnd1 < rnd2`, or `rnd1 = rnd2`
/// and `turn1 < turn2`.
///
/// Timestamps of the other algorithms in this crate (sums, counter
/// values) are embedded as `(value, 0)` so that every implementation
/// returns the same public type.
///
/// # Example
///
/// ```
/// use ts_core::Timestamp;
///
/// let a = Timestamp::new(2, 1);
/// let b = Timestamp::new(3, 0);
/// assert!(Timestamp::compare(&a, &b));
/// assert!(!Timestamp::compare(&b, &a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp {
    /// The phase/round number.
    pub rnd: u64,
    /// The turn within the round (0 for round-opening timestamps).
    pub turn: u64,
}

impl Timestamp {
    /// Creates a timestamp with the given round and turn.
    pub fn new(rnd: u64, turn: u64) -> Self {
        Self { rnd, turn }
    }

    /// Embeds a scalar timestamp (from the simple or collect-max
    /// algorithms) as `(value, 0)`.
    pub fn scalar(value: u64) -> Self {
        Self {
            rnd: value,
            turn: 0,
        }
    }

    /// Algorithm 3: `compare((rnd1, turn1), (rnd2, turn2))`.
    ///
    /// Returns `(rnd1 < rnd2) ∨ ((rnd1 = rnd2) ∧ (turn1 < turn2))`.
    /// No shared memory is accessed.
    pub fn compare(t1: &Timestamp, t2: &Timestamp) -> bool {
        (t1.rnd < t2.rnd) || (t1.rnd == t2.rnd && t1.turn < t2.turn)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rnd, self.turn)
    }
}

/// A sharded-service timestamp `(epoch, local, shard)` as issued by
/// `ts-service`'s `ShardedCollectMax`.
///
/// The service partitions the timestamp space into `S` independent
/// shards, each advancing its own packed `(epoch, local)` word. Stamps
/// are ordered **lexicographically** by `(epoch, local, shard)`:
///
/// - `epoch` is the shard epoch — a coarse phase counter that only
///   advances (on administrative rebalances, on per-epoch `local`
///   exhaustion, and when a migrating client folds a higher-epoch floor
///   into its new shard);
/// - `local` is the stamp index within `(epoch, shard)`, reserved by a
///   single CAS on the shard word and hence unique per shard;
/// - `shard` is the issuing shard — a tie-breaker that makes the order
///   *total* on issued stamps: `(epoch, local)` pairs can coincide
///   across shards, the full triple cannot.
///
/// This is the same shape as a distributed register's
/// `(seqno, client_id)` timestamp: lexicographic order over a counter
/// plus an origin id. The order is total, antisymmetric and transitive
/// on the type (it is exactly the derived [`Ord`]), which the proptest
/// suite in `tests/service_properties.rs` checks alongside per-client
/// monotonicity across shard migrations.
///
/// **What the order means.** Within one shard, non-overlapping `getTS`
/// calls are ordered exactly as [`Timestamp`] calls on a `CollectMax`
/// are. *Across* shards, the service guarantees the timestamp property
/// **per client**: each client carries its last stamp as a floor, and
/// every later stamp it obtains — on any shard, after any migration —
/// is strictly larger. Two different clients on different shards whose
/// calls never exchange a floor are ordered only by the (arbitrary but
/// total) lexicographic rule; that relaxation is what lets the shard
/// words scale independently instead of racing on one global maximum.
///
/// # Example
///
/// ```
/// use ts_core::ShardedTimestamp;
///
/// let a = ShardedTimestamp::new(1, 9, 3);
/// let b = ShardedTimestamp::new(2, 0, 0);
/// assert!(ShardedTimestamp::compare(&a, &b)); // epoch dominates
/// let c = ShardedTimestamp::new(2, 0, 1);
/// assert!(ShardedTimestamp::compare(&b, &c)); // shard tie-breaks
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardedTimestamp {
    /// The shard epoch (monotone, coarse).
    pub epoch: u32,
    /// The stamp index within `(epoch, shard)` (unique per shard).
    pub local: u32,
    /// The issuing shard (tie-breaker; makes issued stamps unique).
    pub shard: u32,
}

impl ShardedTimestamp {
    /// Creates a stamp with the given epoch, local index and shard.
    pub fn new(epoch: u32, local: u32, shard: u32) -> Self {
        Self {
            epoch,
            local,
            shard,
        }
    }

    /// Lexicographic comparison, shared-memory-free like
    /// [`Timestamp::compare`]: `(e1, l1, s1) < (e2, l2, s2)`.
    pub fn compare(t1: &ShardedTimestamp, t2: &ShardedTimestamp) -> bool {
        t1 < t2
    }

    /// The packed `epoch << 32 | local` word the service shards CAS on.
    /// Word order equals `(epoch, local)` order, which is why a single
    /// `fetch_max`/CAS on the word implements the floor fold.
    pub fn word(&self) -> u64 {
        (u64::from(self.epoch) << 32) | u64::from(self.local)
    }

    /// Rebuilds a stamp from a packed shard word plus the issuing shard.
    pub fn from_word(word: u64, shard: u32) -> Self {
        Self {
            epoch: (word >> 32) as u32,
            local: word as u32,
            shard,
        }
    }

    /// Embeds the ordered `(epoch, local)` prefix as a flat
    /// [`Timestamp`] for consumers that only understand pairs (the
    /// workload engine's per-worker monotonicity asserts). The shard
    /// tie-breaker is dropped: per-client stamp sequences strictly
    /// increase in `(epoch, local)` alone, so the embedding preserves
    /// exactly the order those asserts rely on.
    pub fn flatten(&self) -> Timestamp {
        Timestamp::new(u64::from(self.epoch), u64::from(self.local))
    }
}

impl fmt::Display for ShardedTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})@s{}", self.epoch, self.local, self.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_is_lexicographic() {
        assert!(Timestamp::compare(
            &Timestamp::new(1, 9),
            &Timestamp::new(2, 0)
        ));
        assert!(Timestamp::compare(
            &Timestamp::new(2, 0),
            &Timestamp::new(2, 1)
        ));
        assert!(!Timestamp::compare(
            &Timestamp::new(2, 1),
            &Timestamp::new(2, 0)
        ));
    }

    #[test]
    fn compare_is_irreflexive() {
        let t = Timestamp::new(4, 2);
        assert!(!Timestamp::compare(&t, &t));
    }

    #[test]
    fn compare_agrees_with_derived_ord() {
        for (a, b) in [
            (Timestamp::new(0, 0), Timestamp::new(0, 1)),
            (Timestamp::new(1, 5), Timestamp::new(2, 0)),
            (Timestamp::new(3, 3), Timestamp::new(3, 3)),
        ] {
            assert_eq!(Timestamp::compare(&a, &b), a < b);
        }
    }

    #[test]
    fn scalar_embedding_orders_by_value() {
        assert!(Timestamp::compare(
            &Timestamp::scalar(1),
            &Timestamp::scalar(2)
        ));
        assert!(!Timestamp::compare(
            &Timestamp::scalar(2),
            &Timestamp::scalar(2)
        ));
    }

    #[test]
    fn display_formats_pair() {
        assert_eq!(Timestamp::new(3, 1).to_string(), "(3, 1)");
    }

    #[test]
    fn sharded_compare_is_lexicographic_with_shard_tiebreak() {
        let cases = [
            (
                ShardedTimestamp::new(1, 9, 9),
                ShardedTimestamp::new(2, 0, 0),
            ),
            (
                ShardedTimestamp::new(2, 0, 5),
                ShardedTimestamp::new(2, 1, 0),
            ),
            (
                ShardedTimestamp::new(2, 1, 0),
                ShardedTimestamp::new(2, 1, 1),
            ),
        ];
        for (a, b) in cases {
            assert!(ShardedTimestamp::compare(&a, &b), "{a} !< {b}");
            assert!(!ShardedTimestamp::compare(&b, &a), "{b} < {a}");
        }
        let t = ShardedTimestamp::new(3, 3, 3);
        assert!(!ShardedTimestamp::compare(&t, &t), "irreflexive");
    }

    #[test]
    fn sharded_word_round_trips_and_orders_like_the_pair() {
        let a = ShardedTimestamp::new(7, 42, 3);
        assert_eq!(ShardedTimestamp::from_word(a.word(), 3), a);
        let b = ShardedTimestamp::new(8, 0, 3);
        // Word order must equal (epoch, local) order — the fetch_max
        // floor fold depends on it.
        assert!(a.word() < b.word());
        let c = ShardedTimestamp::new(7, 43, 3);
        assert!(a.word() < c.word() && c.word() < b.word());
    }

    #[test]
    fn flatten_preserves_epoch_local_order() {
        let a = ShardedTimestamp::new(1, 9, 2);
        let b = ShardedTimestamp::new(2, 0, 0);
        assert!(Timestamp::compare(&a.flatten(), &b.flatten()));
        assert!(!Timestamp::compare(&b.flatten(), &a.flatten()));
    }

    #[test]
    fn sharded_display_shows_shard() {
        assert_eq!(ShardedTimestamp::new(2, 7, 1).to_string(), "(2, 7)@s1");
    }
}
