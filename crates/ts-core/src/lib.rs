//! Timestamp algorithms from *"The Space Complexity of Long-lived and
//! One-Shot Timestamp Implementations"* (Helmi, Higham, Pacheco, Woelfel,
//! PODC 2011).
//!
//! An *unbounded timestamp object* supports `getTS()` (returns a
//! timestamp) and `compare(t1, t2)`: if a `getTS` returning `t1` finishes
//! before another returning `t2` starts, then `compare(t1, t2)` is `true`
//! and `compare(t2, t1)` is `false`. A *one-shot* object allows each
//! process a single `getTS()`; a *long-lived* one allows arbitrarily
//! many.
//!
//! The paper proves long-lived objects need Ω(n) registers while one-shot
//! objects need only Θ(√n), and exhibits matching algorithms. This crate
//! implements them all, twice: as real thread-safe objects over the
//! `ts-register` substrate, and as deterministic step machines over the
//! `ts-model` formal model (for model checking and the lower-bound
//! constructions).
//!
//! | Type | Paper artifact | Registers |
//! |---|---|---|
//! | [`SimpleOneShot`] | Algorithms 1–2 (Section 5) | `⌈n/2⌉` |
//! | [`BoundedTimestamp`] | Algorithms 3–4 (Section 6) | `⌈2√M⌉` |
//! | [`CollectMax`] | long-lived baseline (cf. EFR 2008) | `n` |
//! | [`GrowableTimestamp`] | Section 7 extension | grows on demand |
//!
//! # Example
//!
//! ```
//! use ts_core::{BoundedTimestamp, OneShotTimestamp, Timestamp};
//!
//! // A one-shot timestamp object for 16 processes: ⌈2√16⌉ = 8 registers.
//! let ts = BoundedTimestamp::one_shot(16);
//! let t0 = ts.get_ts(0).unwrap();
//! let t1 = ts.get_ts(1).unwrap();
//! assert!(Timestamp::compare(&t0, &t1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
mod broken;
mod collectmax;
mod error;
mod growable;
mod ids;
pub mod model;
mod recorder;
mod simple;
mod stats;
mod timestamp;
mod traits;
pub mod workload;

pub use bounded::{BoundedTimestamp, OverwritePolicy, PhaseStats};
pub use broken::{BrokenConstant, BrokenCounter, BrokenStaleRead};
pub use collectmax::{CollectMax, EpochCollectMax, StampBatch};
pub use error::{GetTsError, UsedError};
pub use growable::GrowableTimestamp;
pub use ids::GetTsId;
pub use recorder::{HistoryRecorder, RecordedCall, RecordedViolation};
pub use simple::{EpochSimpleOneShot, SimpleOneShot};
pub use stats::ServiceStats;
pub use timestamp::{ShardedTimestamp, Timestamp};
pub use traits::{LongLivedTimestamp, OneShotTimestamp};
pub use workload::{
    CollectMaxFast, GateError, GateProgress, GrowableWorkload, HelpingScanWorkload, OneShotPool,
    OpHistory, ReplayGranularity, ScanMode, StepGate, VpidAllocator, WorkloadOp, WorkloadTarget,
    WorkloadWorker,
};

// Re-exported so downstream constructors can name backends and layouts
// without a direct `ts-register` dependency.
pub use ts_register::{ArrayLayout, CachePadded, EpochBackend, PackedBackend, RegisterBackend};
