//! Unified hot-path statistics for timestamp issuers.
//!
//! PR 5 gave `CollectMax` an ad-hoc `fast_path_hits()` counter so the
//! cached-max fast path could be observed instead of inferred from
//! throughput. The service layer multiplies the number of interesting
//! counters — batch reservations, flat-combining passes, per-shard
//! issue counts — so this module folds them all into one snapshot
//! struct, [`ServiceStats`], that every
//! [`WorkloadTarget`](crate::workload::WorkloadTarget) can surface via
//! [`service_stats`](crate::workload::WorkloadTarget::service_stats).
//! Bench rows then report *ratios* (fast-hit rate, mean batch fill,
//! shard imbalance) next to throughput, instead of opaque ops/sec.

/// A point-in-time snapshot of an issuer's hot-path counters.
///
/// All counts are cumulative since object creation. Counters that an
/// object does not have (e.g. `combine_passes` on a plain
/// [`CollectMax`](crate::CollectMax)) stay zero; the derived-ratio
/// methods return `None` when their denominator is zero, so reports
/// can distinguish "no batching configured" from "batch fill of 0".
///
/// # Example
///
/// ```
/// use ts_core::{CollectMax, LongLivedTimestamp};
///
/// let ts = CollectMax::new(2);
/// ts.get_ts(0).unwrap();
/// ts.get_ts_batch(0, 4).unwrap().count();
/// let stats = ts.stats();
/// assert_eq!(stats.calls, 2);
/// assert_eq!(stats.stamps, 5);
/// assert_eq!(stats.avg_batch_fill(), Some(4.0));
/// assert_eq!(stats.fast_hit_ratio(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Issue operations served (one per `getTS`/batch/combined call).
    pub calls: u64,
    /// Timestamps issued (`>= calls` once batching is in play).
    pub stamps: u64,
    /// Calls served by a one-CAS fast path: the cached-max CAS for
    /// `CollectMax`, a first-attempt shard-word reservation for the
    /// service.
    pub fast_hits: u64,
    /// Batch reservations (`get_ts_batch` calls that reserved `k > 1`).
    pub batches: u64,
    /// Stamps issued through batch reservations.
    pub batched_stamps: u64,
    /// Requests whose stamps were issued by a *combiner pass* (the
    /// flat-combining publication-array drain), including the
    /// combiner's own request.
    pub combined_ops: u64,
    /// Combiner passes that served at least one request.
    pub combine_passes: u64,
    /// Calls that had to wait for a slot lease before issuing (the
    /// vpid-multiplexing contention signal: `M` clients over `n` slots).
    pub lease_waits: u64,
    /// Stamps issued per shard (a single-element vec for unsharded
    /// issuers). The spread is the shard-imbalance signal.
    pub shard_stamps: Vec<u64>,
    /// Quorum round-trips performed by a replicated backend: one per
    /// protocol phase that gathered a quorum of replies (a plain ABD
    /// read is one round, a read that repaired is two, a write is two).
    pub quorum_rounds: u64,
    /// Read-repair write-backs: quorum reads whose replies disagreed
    /// and had to push the maximum back onto a write quorum before
    /// returning. The replica-divergence signal.
    pub quorum_repairs: u64,
    /// Retransmission attempts by quorum clients whose pending round
    /// ran out of deliverable messages (dropped, duplicated-away or
    /// partitioned traffic). The fault-pressure signal.
    pub quorum_retries: u64,
    /// Scans that resolved by adopting a writer-published helped view
    /// instead of validating their own collect (the wait-free escape
    /// hatch of `ts-snapshot`'s helping scan). The scanner-starvation
    /// signal.
    pub helped_scans: u64,
    /// Dirty-block recollect passes performed across all scans — each
    /// re-read only the registers of blocks whose dirty word moved.
    /// `dirty_recollects / scans` is the contention-per-scan signal;
    /// zero means every first collect validated.
    pub dirty_recollects: u64,
    /// Quorum phases that exhausted their step deadline without
    /// gathering a quorum of replies (each produced one `Unavailable`).
    pub quorum_timeouts: u64,
    /// Client-local steps spent in retry backoff waits — the
    /// fault-induced latency signal.
    pub quorum_backoff_steps: u64,
    /// Quorum phases that completed only after at least one
    /// retransmission: the service was degraded, not down.
    pub quorum_degraded: u64,
    /// Operations surfaced to the caller as unavailable (deadline
    /// exhausted; same events as `quorum_timeouts`, counted at the
    /// client-result level).
    pub quorum_unavailable: u64,
    /// Messages the network dropped outright.
    pub net_dropped: u64,
    /// Messages the network duplicated.
    pub net_duplicated: u64,
    /// Messages held back by a nonzero delivery delay.
    pub net_delayed: u64,
    /// Deliveries that jumped the FIFO order under the reorder knob.
    pub net_reordered: u64,
}

impl ServiceStats {
    /// Fraction of calls served by the one-CAS fast path, or `None`
    /// before any call.
    pub fn fast_hit_ratio(&self) -> Option<f64> {
        (self.calls > 0).then(|| self.fast_hits as f64 / self.calls as f64)
    }

    /// Mean stamps per batch reservation, or `None` if no batch was
    /// ever reserved.
    pub fn avg_batch_fill(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.batched_stamps as f64 / self.batches as f64)
    }

    /// Mean requests served per combiner pass, or `None` without
    /// combining. A fill near the thread count means one CAS is
    /// amortized over a full complement of waiting peers.
    pub fn avg_combine_fill(&self) -> Option<f64> {
        (self.combine_passes > 0).then(|| self.combined_ops as f64 / self.combine_passes as f64)
    }

    /// Hottest shard's issue count over the per-shard mean (1.0 =
    /// perfectly balanced), or `None` until some shard issued a stamp.
    pub fn shard_imbalance(&self) -> Option<f64> {
        let total: u64 = self.shard_stamps.iter().sum();
        if total == 0 || self.shard_stamps.is_empty() {
            return None;
        }
        let max = *self.shard_stamps.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.shard_stamps.len() as f64;
        Some(max / mean)
    }

    /// Mean quorum round-trips per issue call, or `None` for
    /// non-replicated issuers (no rounds recorded).
    pub fn rounds_per_call(&self) -> Option<f64> {
        (self.quorum_rounds > 0 && self.calls > 0)
            .then(|| self.quorum_rounds as f64 / self.calls as f64)
    }

    /// Fraction of quorum rounds that were read-repair write-backs, or
    /// `None` without any rounds.
    pub fn repair_ratio(&self) -> Option<f64> {
        (self.quorum_rounds > 0).then(|| self.quorum_repairs as f64 / self.quorum_rounds as f64)
    }

    /// Folds another snapshot into this one (summing counters and
    /// concatenating shard counts) — used when a service aggregates
    /// per-shard snapshots.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.calls += other.calls;
        self.stamps += other.stamps;
        self.fast_hits += other.fast_hits;
        self.batches += other.batches;
        self.batched_stamps += other.batched_stamps;
        self.combined_ops += other.combined_ops;
        self.combine_passes += other.combine_passes;
        self.lease_waits += other.lease_waits;
        self.shard_stamps.extend_from_slice(&other.shard_stamps);
        self.quorum_rounds += other.quorum_rounds;
        self.quorum_repairs += other.quorum_repairs;
        self.quorum_retries += other.quorum_retries;
        self.helped_scans += other.helped_scans;
        self.dirty_recollects += other.dirty_recollects;
        self.quorum_timeouts += other.quorum_timeouts;
        self.quorum_backoff_steps += other.quorum_backoff_steps;
        self.quorum_degraded += other.quorum_degraded;
        self.quorum_unavailable += other.quorum_unavailable;
        self.net_dropped += other.net_dropped;
        self.net_duplicated += other.net_duplicated;
        self.net_delayed += other.net_delayed;
        self.net_reordered += other.net_reordered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_none_without_denominators() {
        let empty = ServiceStats::default();
        assert_eq!(empty.fast_hit_ratio(), None);
        assert_eq!(empty.avg_batch_fill(), None);
        assert_eq!(empty.avg_combine_fill(), None);
        assert_eq!(empty.shard_imbalance(), None);
        assert_eq!(empty.rounds_per_call(), None);
        assert_eq!(empty.repair_ratio(), None);
    }

    #[test]
    fn ratios_divide_the_right_counters() {
        let stats = ServiceStats {
            calls: 10,
            stamps: 40,
            fast_hits: 8,
            batches: 4,
            batched_stamps: 32,
            combined_ops: 6,
            combine_passes: 2,
            lease_waits: 1,
            shard_stamps: vec![30, 10],
            quorum_rounds: 20,
            quorum_repairs: 5,
            quorum_retries: 2,
            helped_scans: 0,
            dirty_recollects: 0,
            quorum_timeouts: 0,
            quorum_backoff_steps: 0,
            quorum_degraded: 0,
            quorum_unavailable: 0,
            net_dropped: 0,
            net_duplicated: 0,
            net_delayed: 0,
            net_reordered: 0,
        };
        assert_eq!(stats.fast_hit_ratio(), Some(0.8));
        assert_eq!(stats.avg_batch_fill(), Some(8.0));
        assert_eq!(stats.avg_combine_fill(), Some(3.0));
        // max 30 over mean 20.
        assert_eq!(stats.shard_imbalance(), Some(1.5));
        assert_eq!(stats.rounds_per_call(), Some(2.0));
        assert_eq!(stats.repair_ratio(), Some(0.25));
    }

    #[test]
    fn absorb_sums_counters_and_concatenates_shards() {
        let mut a = ServiceStats {
            calls: 1,
            stamps: 2,
            shard_stamps: vec![2],
            ..Default::default()
        };
        let b = ServiceStats {
            calls: 3,
            stamps: 4,
            fast_hits: 3,
            shard_stamps: vec![4],
            helped_scans: 2,
            dirty_recollects: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.calls, 4);
        assert_eq!(a.stamps, 6);
        assert_eq!(a.fast_hits, 3);
        assert_eq!(a.shard_stamps, vec![2, 4]);
        assert_eq!(a.helped_scans, 2);
        assert_eq!(a.dirty_recollects, 5);
    }

    #[test]
    fn perfectly_balanced_shards_report_one() {
        let stats = ServiceStats {
            stamps: 20,
            shard_stamps: vec![5, 5, 5, 5],
            ..Default::default()
        };
        assert_eq!(stats.shard_imbalance(), Some(1.0));
    }
}
