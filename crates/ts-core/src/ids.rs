//! getTS-ids: identifiers of individual `getTS` invocations.

use std::fmt;

/// The paper's getTS-id `p.k`: the `k`-th invocation by process `p`.
///
/// When specialized to one-shot timestamps, the id is just the invoking
/// process's identifier (`k = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GetTsId {
    /// The invoking process.
    pub pid: u32,
    /// The invocation index within that process (0-based).
    pub seq: u32,
}

impl GetTsId {
    /// The id of process `pid`'s one-shot invocation.
    pub fn one_shot(pid: u32) -> Self {
        Self { pid, seq: 0 }
    }

    /// The id of process `pid`'s `seq`-th invocation.
    pub fn new(pid: u32, seq: u32) -> Self {
        Self { pid, seq }
    }
}

impl fmt::Display for GetTsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}", self.pid, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_id_has_zero_seq() {
        let id = GetTsId::one_shot(3);
        assert_eq!(id, GetTsId::new(3, 0));
        assert_eq!(id.to_string(), "p3.0");
    }

    #[test]
    fn ids_order_by_pid_then_seq() {
        assert!(GetTsId::new(1, 5) < GetTsId::new(2, 0));
        assert!(GetTsId::new(1, 0) < GetTsId::new(1, 1));
    }
}
