//! Errors returned by timestamp objects.

use std::error::Error;
use std::fmt;

/// Error from a `getTS()` call on a concrete timestamp object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GetTsError {
    /// The process id is not within `0..n`.
    PidOutOfRange {
        /// The offending process id.
        pid: usize,
        /// The number of processes the object was created for.
        processes: usize,
    },
    /// A one-shot object was asked for a second timestamp by the same
    /// process.
    AlreadyUsed {
        /// The process that already holds a timestamp.
        pid: usize,
    },
    /// The object's invocation budget `M` is exhausted.
    BudgetExhausted {
        /// The configured maximum number of `getTS()` calls.
        budget: usize,
    },
}

impl fmt::Display for GetTsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GetTsError::PidOutOfRange { pid, processes } => {
                write!(f, "process id {pid} out of range (n = {processes})")
            }
            GetTsError::AlreadyUsed { pid } => {
                write!(f, "process {pid} already obtained its one-shot timestamp")
            }
            GetTsError::BudgetExhausted { budget } => {
                write!(f, "getTS budget of {budget} invocations exhausted")
            }
        }
    }
}

impl Error for GetTsError {}

/// Legacy alias kept for the one-shot-specific error surface.
pub type UsedError = GetTsError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        assert!(GetTsError::PidOutOfRange {
            pid: 7,
            processes: 4
        }
        .to_string()
        .contains("7"));
        assert!(GetTsError::AlreadyUsed { pid: 2 }.to_string().contains("2"));
        assert!(GetTsError::BudgetExhausted { budget: 9 }
            .to_string()
            .contains("9"));
    }
}
