//! Deliberately incorrect timestamp objects (failure injection).
//!
//! These exist so the test suite can demonstrate that its checkers — the
//! model explorer, the happens-before stress tests, the property tests —
//! actually *fail* on broken implementations rather than passing
//! vacuously. They are exported (rather than test-only) because the
//! benchmark harness also uses them to calibrate the checker's detection
//! latency.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use ts_register::WordRegister;

use crate::error::GetTsError;
use crate::timestamp::Timestamp;
use crate::traits::OneShotTimestamp;

fn one_shot_guard(used: &[AtomicBool], pid: usize) -> Result<(), GetTsError> {
    if pid >= used.len() {
        return Err(GetTsError::PidOutOfRange {
            pid,
            processes: used.len(),
        });
    }
    if used[pid].swap(true, Ordering::AcqRel) {
        return Err(GetTsError::AlreadyUsed { pid });
    }
    Ok(())
}

/// Broken object: every call returns `(0, 0)`.
///
/// Violates the property at the very first ordered pair.
pub struct BrokenConstant {
    used: Vec<AtomicBool>,
}

impl BrokenConstant {
    /// Creates an instance for `processes` processes.
    pub fn new(processes: usize) -> Self {
        Self {
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl OneShotTimestamp for BrokenConstant {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        one_shot_guard(&self.used, pid)?;
        Ok(Timestamp::new(0, 0))
    }

    fn processes(&self) -> usize {
        self.used.len()
    }

    fn registers(&self) -> usize {
        0
    }
}

impl fmt::Debug for BrokenConstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokenConstant")
            .field("processes", &self.used.len())
            .finish()
    }
}

/// Broken object: reads a shared counter and returns it *without*
/// writing.
///
/// Two sequential calls observe the same counter and return equal
/// timestamps — an ordered pair that `compare` cannot separate. This is
/// the minimal "forgot to leave a trace" bug; the paper's lower bounds
/// are precisely about how much trace (register space) a correct object
/// *must* leave.
pub struct BrokenStaleRead {
    register: WordRegister,
    used: Vec<AtomicBool>,
}

impl BrokenStaleRead {
    /// Creates an instance for `processes` processes.
    pub fn new(processes: usize) -> Self {
        Self {
            register: WordRegister::new(0),
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl OneShotTimestamp for BrokenStaleRead {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        one_shot_guard(&self.used, pid)?;
        Ok(Timestamp::scalar(self.register.read()))
    }

    fn processes(&self) -> usize {
        self.used.len()
    }

    fn registers(&self) -> usize {
        1
    }
}

impl fmt::Debug for BrokenStaleRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokenStaleRead")
            .field("processes", &self.used.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_violates_on_first_ordered_pair() {
        let ts = BrokenConstant::new(2);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(1).unwrap(); // strictly after a
        assert!(
            !Timestamp::compare(&a, &b),
            "sanity: the broken object must actually be broken"
        );
    }

    #[test]
    fn stale_read_violates_on_first_ordered_pair() {
        let ts = BrokenStaleRead::new(2);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(1).unwrap();
        assert!(!Timestamp::compare(&a, &b));
    }

    #[test]
    fn broken_objects_still_enforce_one_shot_discipline() {
        let ts = BrokenConstant::new(1);
        ts.get_ts(0).unwrap();
        assert_eq!(ts.get_ts(0), Err(GetTsError::AlreadyUsed { pid: 0 }));
        let ts = BrokenStaleRead::new(1);
        ts.get_ts(0).unwrap();
        assert!(ts.get_ts(0).is_err());
    }
}
