//! Deliberately incorrect timestamp objects (failure injection).
//!
//! These exist so the test suite can demonstrate that its checkers — the
//! model explorer, the happens-before stress tests, the property tests —
//! actually *fail* on broken implementations rather than passing
//! vacuously. They are exported (rather than test-only) because the
//! benchmark harness also uses them to calibrate the checker's detection
//! latency.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use ts_register::WordRegister;

use crate::error::GetTsError;
use crate::timestamp::Timestamp;
use crate::traits::OneShotTimestamp;

fn one_shot_guard(used: &[AtomicBool], pid: usize) -> Result<(), GetTsError> {
    if pid >= used.len() {
        return Err(GetTsError::PidOutOfRange {
            pid,
            processes: used.len(),
        });
    }
    if used[pid].swap(true, Ordering::AcqRel) {
        return Err(GetTsError::AlreadyUsed { pid });
    }
    Ok(())
}

/// Broken object: every call returns `(0, 0)`.
///
/// Violates the property at the very first ordered pair.
pub struct BrokenConstant {
    used: Vec<AtomicBool>,
}

impl BrokenConstant {
    /// Creates an instance for `processes` processes.
    pub fn new(processes: usize) -> Self {
        Self {
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl OneShotTimestamp for BrokenConstant {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        one_shot_guard(&self.used, pid)?;
        Ok(Timestamp::new(0, 0))
    }

    fn processes(&self) -> usize {
        self.used.len()
    }

    fn registers(&self) -> usize {
        0
    }
}

impl fmt::Debug for BrokenConstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokenConstant")
            .field("processes", &self.used.len())
            .finish()
    }
}

/// Broken object: reads a shared counter and returns it *without*
/// writing.
///
/// Two sequential calls observe the same counter and return equal
/// timestamps — an ordered pair that `compare` cannot separate. This is
/// the minimal "forgot to leave a trace" bug; the paper's lower bounds
/// are precisely about how much trace (register space) a correct object
/// *must* leave.
pub struct BrokenStaleRead {
    register: WordRegister,
    used: Vec<AtomicBool>,
}

impl BrokenStaleRead {
    /// Creates an instance for `processes` processes.
    pub fn new(processes: usize) -> Self {
        Self {
            register: WordRegister::new(0),
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl OneShotTimestamp for BrokenStaleRead {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        one_shot_guard(&self.used, pid)?;
        Ok(Timestamp::scalar(self.register.read()))
    }

    fn processes(&self) -> usize {
        self.used.len()
    }

    fn registers(&self) -> usize {
        1
    }
}

impl fmt::Debug for BrokenStaleRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokenStaleRead")
            .field("processes", &self.used.len())
            .finish()
    }
}

/// Broken object: read-increment-write on one shared register, with no
/// collect — the real twin of the model crate's toy counter.
///
/// `getTS()` reads the register, writes `read + 1`, and returns the
/// written value. Correct for up to three one-shot processes; **broken
/// for four or more**: a process stalled between its read and its write
/// can roll the register back after two others have taken strictly
/// larger timestamps, letting a fourth, strictly later call return a
/// non-larger value. Unlike [`BrokenConstant`] and [`BrokenStaleRead`],
/// this bug *requires an adversarial interleaving* — sequential runs
/// are clean — which makes it the canonical target for the schedule
/// replay harness: the model explorer finds the interleaving on the
/// twin ([`BrokenCounterModel`](crate::model::BrokenCounterModel)), and
/// replaying the minimized schedule against this object reproduces the
/// violation on real threads.
///
/// [`get_ts_paused`](BrokenCounter::get_ts_paused) exposes the
/// read/write phase boundary so a replay controller can hold the
/// stalled writer exactly where the counterexample needs it.
///
/// Its [`WorkloadTarget`](crate::workload::WorkloadTarget) impl is
/// **replay-only**: each slot supports exactly one `GetTs` (matching
/// the one-shot twin), and a second op panics. To drive it with the
/// scenario engine, wrap it in
/// [`OneShotPool`](crate::workload::OneShotPool) like the other
/// one-shot objects.
pub struct BrokenCounter {
    register: WordRegister,
    used: Vec<AtomicBool>,
}

impl BrokenCounter {
    /// Creates an instance for `processes` processes.
    pub fn new(processes: usize) -> Self {
        Self {
            register: WordRegister::new(0),
            used: (0..processes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// `getTS` with a pause hook: `pause` runs immediately before the
    /// shared read and again before the shared write (the step-barrier
    /// seam used by schedule replay).
    ///
    /// # Errors
    ///
    /// [`GetTsError::PidOutOfRange`] or [`GetTsError::AlreadyUsed`]
    /// exactly as [`OneShotTimestamp::get_ts`].
    pub fn get_ts_paused(
        &self,
        pid: usize,
        mut pause: impl FnMut(),
    ) -> Result<Timestamp, GetTsError> {
        one_shot_guard(&self.used, pid)?;
        pause();
        let v = self.register.read();
        pause();
        self.register.write(v + 1);
        Ok(Timestamp::scalar(v + 1))
    }
}

impl OneShotTimestamp for BrokenCounter {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        self.get_ts_paused(pid, || {})
    }

    fn processes(&self) -> usize {
        self.used.len()
    }

    fn registers(&self) -> usize {
        1
    }
}

impl fmt::Debug for BrokenCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokenCounter")
            .field("processes", &self.used.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_violates_on_first_ordered_pair() {
        let ts = BrokenConstant::new(2);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(1).unwrap(); // strictly after a
        assert!(
            !Timestamp::compare(&a, &b),
            "sanity: the broken object must actually be broken"
        );
    }

    #[test]
    fn stale_read_violates_on_first_ordered_pair() {
        let ts = BrokenStaleRead::new(2);
        let a = ts.get_ts(0).unwrap();
        let b = ts.get_ts(1).unwrap();
        assert!(!Timestamp::compare(&a, &b));
    }

    #[test]
    fn broken_counter_is_sequentially_clean() {
        // The counter's bug needs an adversarial interleaving; any
        // sequential order is correct — that's what makes it the replay
        // harness's canary rather than a trivially broken object.
        let ts = BrokenCounter::new(4);
        let mut last = Timestamp::scalar(0);
        for p in 0..4 {
            let t = ts.get_ts(p).unwrap();
            assert!(Timestamp::compare(&last, &t), "{last} !< {t}");
            last = t;
        }
    }

    #[test]
    fn broken_counter_stalled_writer_rolls_back() {
        // Drive the rollback by hand through the pause hook: p0 reads 0
        // and stalls before its write; p1 and p2 finish (register
        // reaches 2, t1 = 1, t2 = 2); p0's pending write lands 1,
        // rolling the register back; p3's strictly-later call returns 2
        // again — equal to t2, violating the property.
        use std::sync::mpsc;
        let ts = BrokenCounter::new(4);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (arrived_tx, arrived_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            let ts = &ts;
            let handle = s.spawn(move || {
                ts.get_ts_paused(0, || {
                    arrived_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                })
                .unwrap()
            });
            arrived_rx.recv().unwrap(); // p0 poised on its read
            release_tx.send(()).unwrap();
            arrived_rx.recv().unwrap(); // p0 read 0, poised to write 1
            let t1 = ts.get_ts(1).unwrap();
            let t2 = ts.get_ts(2).unwrap();
            assert!(Timestamp::compare(&t1, &t2));
            release_tx.send(()).unwrap(); // p0's stale write rolls back
            let t0 = handle.join().unwrap();
            assert_eq!(t0, Timestamp::scalar(1));
            let t3 = ts.get_ts(3).unwrap(); // strictly after p2 responded
            assert!(
                !Timestamp::compare(&t2, &t3),
                "expected the rollback to break ordering: t2={t2} t3={t3}"
            );
        });
    }

    #[test]
    fn broken_objects_still_enforce_one_shot_discipline() {
        let ts = BrokenConstant::new(1);
        ts.get_ts(0).unwrap();
        assert_eq!(ts.get_ts(0), Err(GetTsError::AlreadyUsed { pid: 0 }));
        let ts = BrokenStaleRead::new(1);
        ts.get_ts(0).unwrap();
        assert!(ts.get_ts(0).is_err());
    }
}
