//! Object-level traits for the concrete (thread-safe) implementations.

use crate::error::GetTsError;
use crate::timestamp::Timestamp;

/// A one-shot unbounded timestamp object: each process may call
/// [`get_ts`](OneShotTimestamp::get_ts) at most once.
///
/// All implementations return the common [`Timestamp`] type and order it
/// with [`Timestamp::compare`] (Algorithm 3), so objects are
/// interchangeable in the experiment harness.
pub trait OneShotTimestamp: Send + Sync {
    /// Returns a new timestamp for process `pid`.
    ///
    /// # Errors
    ///
    /// - [`GetTsError::PidOutOfRange`] if `pid >= n`;
    /// - [`GetTsError::AlreadyUsed`] if `pid` already called `get_ts`.
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError>;

    /// Number of processes the object serves.
    fn processes(&self) -> usize;

    /// Number of shared registers the object allocated.
    fn registers(&self) -> usize;

    /// `compare(t1, t2)` — no shared memory access.
    fn compare(t1: &Timestamp, t2: &Timestamp) -> bool
    where
        Self: Sized,
    {
        Timestamp::compare(t1, t2)
    }
}

/// A long-lived unbounded timestamp object: each process may call
/// [`get_ts`](LongLivedTimestamp::get_ts) arbitrarily many times.
pub trait LongLivedTimestamp: Send + Sync {
    /// Returns a new timestamp for process `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`GetTsError::PidOutOfRange`] if `pid >= n`.
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError>;

    /// Number of processes the object serves.
    fn processes(&self) -> usize;

    /// Number of shared registers the object allocated.
    fn registers(&self) -> usize;

    /// `compare(t1, t2)` — no shared memory access.
    fn compare(t1: &Timestamp, t2: &Timestamp) -> bool
    where
        Self: Sized,
    {
        Timestamp::compare(t1, t2)
    }
}
