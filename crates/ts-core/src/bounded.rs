//! Algorithm 4: the `⌈2√M⌉`-register bounded-concurrency timestamp
//! object (Section 6 of the paper).
//!
//! For a bound `M` on the total number of `getTS()` invocations, the
//! object uses `m = ⌈2√M⌉` multi-writer registers `R[1..m]`, each holding
//! `⊥` or a pair `⟨seq, rnd⟩` where `seq` is a sequence of getTS-ids and
//! `rnd` a positive integer. Specialized to one-shot timestamps
//! (`M = n`) this realizes Theorem 1.3 and matches the `√(2n) − log n`
//! lower bound of Theorem 1.2 asymptotically.
//!
//! The execution proceeds in *phases*. During phase `k` registers
//! `R[1..k−1]` are non-`⊥`; a `getTS` whose while-loop measures
//! `myrnd = k − 1` either finds a *valid* register `R[j]` (its last
//! writer equals the `j`-th entry recorded in `R[k−1]`... see line 7),
//! invalidates it and returns `(k − 1, j)`-style turn timestamps, or
//! discovers every register invalid, scans, opens phase `k` by writing
//! `R[k]` and returns `(k, 0)`.
//!
//! This module also carries the paper's accounting instrumentation
//! (Section 6.3): phases, invalidation writes, and register usage are
//! counted so the bounds `Φ < 2√M` (Lemma 6.5) and `≤ 2M` invalidation
//! writes (Claim 6.13) can be checked against real executions.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ts_register::{RegisterArray, SpaceMeter};
use ts_snapshot::double_collect_scan;

use crate::error::GetTsError;
use crate::ids::GetTsId;
use crate::timestamp::Timestamp;
use crate::traits::OneShotTimestamp;

/// Register contents: `⊥` or `⟨seq, rnd⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The initial value `⊥`.
    Bot,
    /// A written pair `⟨seq, rnd⟩` (shared so clones are cheap).
    Val(Arc<SlotVal>),
}

impl Slot {
    /// Builds a written slot.
    pub fn val(seq: Vec<GetTsId>, rnd: u64) -> Self {
        Slot::Val(Arc::new(SlotVal { seq, rnd }))
    }

    /// Whether the slot is `⊥`.
    pub fn is_bot(&self) -> bool {
        matches!(self, Slot::Bot)
    }

    /// `last(R.seq)` — the last getTS-id of the stored sequence.
    pub fn last(&self) -> Option<GetTsId> {
        match self {
            Slot::Bot => None,
            Slot::Val(v) => v.seq.last().copied(),
        }
    }

    /// `R.seq[j]` with the paper's 1-based indexing.
    pub fn seq_get(&self, j: usize) -> Option<GetTsId> {
        match self {
            Slot::Bot => None,
            Slot::Val(v) => v.seq.get(j.checked_sub(1)?).copied(),
        }
    }

    /// `R.rnd`, if written.
    pub fn rnd(&self) -> Option<u64> {
        match self {
            Slot::Bot => None,
            Slot::Val(v) => Some(v.rnd),
        }
    }
}

/// The pair `⟨seq, rnd⟩` stored in a written register.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotVal {
    /// Sequence of getTS-ids (length 1 for invalidation writes, length
    /// `k` for the write opening phase `k`).
    pub seq: Vec<GetTsId>,
    /// The round the write belongs to.
    pub rnd: u64,
}

/// What to do at lines 10–11 when a register is found invalid.
///
/// The paper overwrites only when the stale value's round is older than
/// the current one (`R[j].rnd < myrnd`) — enough to pin the register
/// invalid for the rest of the phase without wasting writes. The
/// alternatives exist for the E9 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverwritePolicy {
    /// Overwrite iff `R[j].rnd < myrnd` (the paper's Algorithm 4).
    #[default]
    Paper,
    /// Overwrite every invalid register ("simple repair" — correct but
    /// write-heavier).
    Always,
    /// Never overwrite (the bug discussed in Section 6.1: a stale
    /// phase-opening write can re-validate invalidated registers and
    /// invert timestamps).
    Never,
}

#[derive(Debug)]
struct Accounting {
    total_writes: AtomicU64,
    invalidation_writes: AtomicU64,
    line15_writes: AtomicU64,
    early_returns: AtomicU64,
    turn_returns: AtomicU64,
    scans: AtomicU64,
    /// Visible-phase epoch: incremented at each phase-opening write.
    epoch: AtomicU64,
    /// Epoch of the last write per register (u64::MAX = never written).
    last_write_epoch: Vec<AtomicU64>,
}

impl Accounting {
    fn new(m: usize) -> Self {
        Self {
            total_writes: AtomicU64::new(0),
            invalidation_writes: AtomicU64::new(0),
            line15_writes: AtomicU64::new(0),
            early_returns: AtomicU64::new(0),
            turn_returns: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            last_write_epoch: (0..m).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    fn record_write(&self, paper_index: usize, opens_phase: bool) {
        self.total_writes.fetch_add(1, Ordering::Relaxed);
        let epoch = if opens_phase {
            self.line15_writes.fetch_add(1, Ordering::Relaxed);
            // Racing scanners may both open the same phase k by writing
            // R[k]; the phase number is the highest register opened, not
            // the number of opening writes.
            self.epoch.fetch_max(paper_index as u64, Ordering::Relaxed);
            paper_index as u64
        } else {
            self.epoch.load(Ordering::Relaxed)
        };
        let slot = &self.last_write_epoch[paper_index - 1];
        if slot.swap(epoch, Ordering::Relaxed) != epoch {
            // First write to this register in the current (visible)
            // phase: an invalidation write in the paper's sense.
            self.invalidation_writes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Accounting snapshot for one [`BoundedTimestamp`]'s history.
///
/// Phases are counted at *visible* granularity (a phase is counted when
/// its opening register write lands, not at the opening scan), which
/// can only under-count invalidation writes relative to the paper's
/// definition; the paper's upper bounds still apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseStats {
    /// Register budget `m = ⌈2√M⌉`.
    pub m: usize,
    /// Invocation budget `M`.
    pub budget: usize,
    /// `getTS` calls served so far.
    pub calls: u64,
    /// Completed phases Φ (phase-opening writes).
    pub phases: u64,
    /// Invalidation writes (first write per register per visible phase).
    pub invalidation_writes: u64,
    /// All register writes.
    pub total_writes: u64,
    /// Double-collect scans executed.
    pub scans: u64,
    /// Calls that returned at line 12 (saw the next phase open early).
    pub early_returns: u64,
    /// Calls that returned a turn timestamp at line 9.
    pub turn_returns: u64,
    /// Registers written at least once.
    pub registers_written: usize,
}

impl PhaseStats {
    /// Claim 6.13: at most `2M` invalidation writes.
    pub fn invalidation_bound_holds(&self) -> bool {
        self.invalidation_writes <= 2 * self.budget as u64
    }

    /// Lemma 6.5: fewer than `2√M` phases.
    pub fn phase_bound_holds(&self) -> bool {
        (self.phases as f64) < 2.0 * (self.budget as f64).sqrt() + f64::EPSILON
    }

    /// Theorem 1.3 specialization: at most `⌈2√M⌉` registers written.
    pub fn space_bound_holds(&self) -> bool {
        self.registers_written <= self.m
    }
}

/// The bounded-concurrency timestamp object of Algorithm 4.
///
/// Wait-free for up to `M` `getTS()` invocations using `⌈2√M⌉`
/// registers; `compare` is Algorithm 3 ([`Timestamp::compare`]).
///
/// # Example
///
/// ```
/// use ts_core::{BoundedTimestamp, GetTsId, Timestamp};
///
/// // Budget of 9 calls from any mix of processes: ⌈2√9⌉ = 6 registers.
/// let ts = BoundedTimestamp::with_budget(9);
/// assert_eq!(ts.registers(), 6);
/// let a = ts.get_ts_with_id(GetTsId::new(0, 0)).unwrap();
/// let b = ts.get_ts_with_id(GetTsId::new(0, 1)).unwrap();
/// assert!(Timestamp::compare(&a, &b));
/// ```
pub struct BoundedTimestamp {
    regs: RegisterArray<Slot>,
    meter: SpaceMeter,
    m: usize,
    budget: usize,
    policy: OverwritePolicy,
    invocations: AtomicU64,
    /// One-shot guard, present when built with [`BoundedTimestamp::one_shot`].
    used: Option<Vec<AtomicBool>>,
    accounting: Accounting,
}

/// `⌈2√M⌉` computed exactly: the least `m` with `m² ≥ 4M`.
pub(crate) fn registers_for_budget(budget: usize) -> usize {
    let target = 4u128 * budget as u128;
    let mut m = (target as f64).sqrt() as u128;
    while m * m < target {
        m += 1;
    }
    while m > 0 && (m - 1) * (m - 1) >= target {
        m -= 1;
    }
    m as usize
}

impl BoundedTimestamp {
    /// Creates an object accepting at most `budget` `getTS()` calls,
    /// from any processes, identified by caller-supplied [`GetTsId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn with_budget(budget: usize) -> Self {
        Self::with_budget_and_policy(budget, OverwritePolicy::Paper)
    }

    /// Like [`BoundedTimestamp::with_budget`] with an explicit
    /// invalidation-overwrite policy (see [`OverwritePolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn with_budget_and_policy(budget: usize, policy: OverwritePolicy) -> Self {
        assert!(budget > 0, "budget must be positive");
        // One extra sentinel beyond the writable range is already part of
        // ⌈2√M⌉ (Φ < 2√M), but guard the degenerate tiny budgets where
        // the ceiling equals the phase count.
        let m = registers_for_budget(budget).max(2);
        let meter = SpaceMeter::new(m);
        Self {
            regs: RegisterArray::with_meter(m, Slot::Bot, meter.clone()),
            meter,
            m,
            budget,
            policy,
            invocations: AtomicU64::new(0),
            used: None,
            accounting: Accounting::new(m),
        }
    }

    /// Creates a one-shot object for `processes` processes (`M = n`),
    /// realizing Theorem 1.3 with `⌈2√n⌉` registers.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn one_shot(processes: usize) -> Self {
        Self::one_shot_with_policy(processes, OverwritePolicy::Paper)
    }

    /// One-shot constructor with an explicit overwrite policy.
    ///
    /// # Panics
    ///
    /// Panics if `processes == 0`.
    pub fn one_shot_with_policy(processes: usize, policy: OverwritePolicy) -> Self {
        let mut obj = Self::with_budget_and_policy(processes, policy);
        obj.used = Some((0..processes).map(|_| AtomicBool::new(false)).collect());
        obj
    }

    /// The register budget `m`.
    pub fn registers(&self) -> usize {
        self.m
    }

    /// The invocation budget `M`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The meter recording this object's register traffic.
    pub fn meter(&self) -> &SpaceMeter {
        &self.meter
    }

    /// A snapshot of the phase accounting (Section 6.3 quantities).
    pub fn phase_stats(&self) -> PhaseStats {
        PhaseStats {
            m: self.m,
            budget: self.budget,
            calls: self
                .invocations
                .load(Ordering::Relaxed)
                .min(self.budget as u64),
            phases: self.accounting.epoch.load(Ordering::Relaxed),
            invalidation_writes: self.accounting.invalidation_writes.load(Ordering::Relaxed),
            total_writes: self.accounting.total_writes.load(Ordering::Relaxed),
            scans: self.accounting.scans.load(Ordering::Relaxed),
            early_returns: self.accounting.early_returns.load(Ordering::Relaxed),
            turn_returns: self.accounting.turn_returns.load(Ordering::Relaxed),
            registers_written: self.meter.snapshot().registers_written(),
        }
    }

    /// Reads register `R[j]` (paper's 1-based indexing).
    fn read(&self, j: usize) -> Slot {
        self.regs
            .read(j - 1)
            .expect("paper register index within the array")
    }

    /// Writes register `R[j]` (paper's 1-based indexing).
    fn write(&self, j: usize, value: Slot, opens_phase: bool) {
        self.accounting.record_write(j, opens_phase);
        self.regs
            .write(j - 1, value)
            .expect("paper register index within the array");
    }

    /// Algorithm 4 `getTS(ID)` for an explicit getTS-id.
    ///
    /// # Errors
    ///
    /// Returns [`GetTsError::BudgetExhausted`] once `M` calls have been
    /// admitted.
    ///
    /// # Panics
    ///
    /// Panics if an execution exceeds the proven space bound (which
    /// would falsify Lemma 6.5) — this is an internal invariant check,
    /// not an expected failure mode.
    pub fn get_ts_with_id(&self, id: GetTsId) -> Result<Timestamp, GetTsError> {
        let admitted = self.invocations.fetch_add(1, Ordering::AcqRel);
        if admitted >= self.budget as u64 {
            return Err(GetTsError::BudgetExhausted {
                budget: self.budget,
            });
        }
        Ok(self.get_ts_inner(id))
    }

    fn get_ts_inner(&self, id: GetTsId) -> Timestamp {
        let m = self.m;

        // Lines 1–4: find the non-⊥ prefix, recording it in r[1..myrnd].
        let mut r: Vec<Slot> = vec![Slot::Bot; m + 1]; // r[1..=m]
        let mut j = 1usize;
        loop {
            let v = self.read(j);
            if v.is_bot() {
                break;
            }
            r[j] = v;
            j += 1;
            assert!(
                j <= m,
                "space bound violated: all {m} registers non-⊥ (Lemma 6.5 refuted)"
            );
        }
        let myrnd = j - 1;

        // Lines 5–12: look for the first valid register among R[1..myrnd-1].
        for j in 1..myrnd {
            // Line 6: has the next phase opened?
            if !self.read(myrnd + 1).is_bot() {
                // Line 12.
                self.accounting
                    .early_returns
                    .fetch_add(1, Ordering::Relaxed);
                return Timestamp::new((myrnd + 1) as u64, 0);
            }
            // Lines 7–11: one read of R[j] serves both the validity test
            // and the staleness test.
            let cur = self.read(j);
            let expected = r[myrnd].seq_get(j);
            if expected.is_some() && cur.last() == expected {
                // Lines 8–9: R[j] is valid — invalidate it, take turn j.
                self.write(j, Slot::val(vec![id], myrnd as u64), false);
                self.accounting.turn_returns.fetch_add(1, Ordering::Relaxed);
                return Timestamp::new(myrnd as u64, j as u64);
            }
            let overwrite = match self.policy {
                OverwritePolicy::Paper => {
                    // Line 10: only a write from an *older* phase can
                    // spuriously re-validate later; pin it down.
                    cur.rnd().is_some_and(|rnd| rnd < myrnd as u64)
                }
                OverwritePolicy::Always => true,
                OverwritePolicy::Never => false,
            };
            if overwrite {
                // Line 11.
                self.write(j, Slot::val(vec![id], myrnd as u64), false);
            }
        }

        // Line 13: linearizable view via double-collect scan.
        self.accounting.scans.fetch_add(1, Ordering::Relaxed);
        let view = double_collect_scan(&self.regs);

        // Line 14: r[myrnd + 1] == ⊥ ? (1-based paper index → 0-based array)
        if view[myrnd].value.is_bot() {
            // Line 15: open phase myrnd + 1.
            assert!(
                myrnd + 1 < m,
                "space bound violated: writing sentinel register R[{m}]"
            );
            let mut seq = Vec::with_capacity(myrnd + 1);
            for jj in 1..=myrnd {
                let last = view[jj - 1]
                    .value
                    .last()
                    .expect("scanned prefix registers are non-⊥ (Claim 6.1)");
                seq.push(last);
            }
            seq.push(id);
            self.write(myrnd + 1, Slot::val(seq, (myrnd + 1) as u64), true);
        }
        // Line 16.
        Timestamp::new((myrnd + 1) as u64, 0)
    }
}

impl OneShotTimestamp for BoundedTimestamp {
    fn get_ts(&self, pid: usize) -> Result<Timestamp, GetTsError> {
        let used = self.used.as_ref().expect(
            "get_ts(pid) requires a one-shot object; use get_ts_with_id on budgeted objects",
        );
        if pid >= used.len() {
            return Err(GetTsError::PidOutOfRange {
                pid,
                processes: used.len(),
            });
        }
        if used[pid].swap(true, Ordering::AcqRel) {
            return Err(GetTsError::AlreadyUsed { pid });
        }
        self.get_ts_with_id(GetTsId::one_shot(pid as u32))
    }

    fn processes(&self) -> usize {
        self.used.as_ref().map_or(self.budget, Vec::len)
    }

    fn registers(&self) -> usize {
        self.m
    }
}

impl fmt::Debug for BoundedTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedTimestamp")
            .field("m", &self.m)
            .field("budget", &self.budget)
            .field("policy", &self.policy)
            .field("stats", &self.phase_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_budget_formula_is_exact() {
        assert_eq!(registers_for_budget(1), 2);
        assert_eq!(registers_for_budget(4), 4);
        assert_eq!(registers_for_budget(9), 6);
        assert_eq!(registers_for_budget(16), 8);
        assert_eq!(registers_for_budget(10), 7); // 2√10 ≈ 6.32 → 7
        assert_eq!(registers_for_budget(100), 20);
        // Exact ceiling around perfect squares:
        assert_eq!(registers_for_budget(99), 20); // 2√99 ≈ 19.899
        assert_eq!(registers_for_budget(101), 21); // 2√101 ≈ 20.09
    }

    #[test]
    fn sequential_timestamps_strictly_increase() {
        let ts = BoundedTimestamp::with_budget(50);
        let mut last: Option<Timestamp> = None;
        for k in 0..50u32 {
            let t = ts.get_ts_with_id(GetTsId::new(0, k)).unwrap();
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "call {k}: {prev} !< {t}");
            }
            last = Some(t);
        }
    }

    #[test]
    fn sequential_pattern_matches_paper_walkthrough() {
        // The sequential run of Section 6.1: the opener of phase k
        // returns (k, 0); the j-th call after it returns (k, j).
        let ts = BoundedTimestamp::with_budget(10);
        let got: Vec<Timestamp> = (0..10u32)
            .map(|k| ts.get_ts_with_id(GetTsId::new(k, 0)).unwrap())
            .collect();
        let expected = [
            Timestamp::new(1, 0),
            Timestamp::new(2, 0),
            Timestamp::new(2, 1),
            Timestamp::new(3, 0),
            Timestamp::new(3, 1),
            Timestamp::new(3, 2),
            Timestamp::new(4, 0),
            Timestamp::new(4, 1),
            Timestamp::new(4, 2),
            Timestamp::new(4, 3),
        ];
        assert_eq!(got.as_slice(), expected.as_slice());
    }

    #[test]
    fn budget_is_enforced() {
        let ts = BoundedTimestamp::with_budget(2);
        ts.get_ts_with_id(GetTsId::new(0, 0)).unwrap();
        ts.get_ts_with_id(GetTsId::new(0, 1)).unwrap();
        assert_eq!(
            ts.get_ts_with_id(GetTsId::new(0, 2)),
            Err(GetTsError::BudgetExhausted { budget: 2 })
        );
    }

    #[test]
    fn one_shot_guard_rejects_repeats() {
        let ts = BoundedTimestamp::one_shot(4);
        ts.get_ts(1).unwrap();
        assert_eq!(ts.get_ts(1), Err(GetTsError::AlreadyUsed { pid: 1 }));
        assert!(matches!(
            ts.get_ts(9),
            Err(GetTsError::PidOutOfRange { .. })
        ));
    }

    #[test]
    fn space_bound_holds_sequentially() {
        for n in [4usize, 16, 64, 256] {
            let ts = BoundedTimestamp::one_shot(n);
            for p in 0..n {
                ts.get_ts(p).unwrap();
            }
            let stats = ts.phase_stats();
            assert!(stats.space_bound_holds(), "n={n}: {stats:?}");
            assert!(stats.phase_bound_holds(), "n={n}: {stats:?}");
            assert!(stats.invalidation_bound_holds(), "n={n}: {stats:?}");
        }
    }

    #[test]
    fn concurrent_rounds_respect_happens_before() {
        let n = 32;
        let ts = Arc::new(BoundedTimestamp::one_shot(n));
        let mut rounds: Vec<Vec<Timestamp>> = Vec::new();
        for round in 0..4 {
            let outs: Vec<Timestamp> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n / 4)
                    .map(|i| {
                        let ts = Arc::clone(&ts);
                        let pid = round * (n / 4) + i;
                        s.spawn(move |_| ts.get_ts(pid).unwrap())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            rounds.push(outs);
        }
        for earlier in 0..rounds.len() {
            for later in earlier + 1..rounds.len() {
                for a in &rounds[earlier] {
                    for b in &rounds[later] {
                        assert!(Timestamp::compare(a, b), "{a} !< {b}");
                        assert!(!Timestamp::compare(b, a), "{b} < {a}");
                    }
                }
            }
        }
        let stats = ts.phase_stats();
        assert!(stats.space_bound_holds(), "{stats:?}");
        assert!(stats.invalidation_bound_holds(), "{stats:?}");
    }

    #[test]
    fn always_overwrite_policy_is_also_correct_sequentially() {
        let ts = BoundedTimestamp::with_budget_and_policy(30, OverwritePolicy::Always);
        let mut last: Option<Timestamp> = None;
        for k in 0..30u32 {
            let t = ts.get_ts_with_id(GetTsId::new(k, 0)).unwrap();
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t));
            }
            last = Some(t);
        }
    }

    #[test]
    fn slot_accessors() {
        let bot = Slot::Bot;
        assert!(bot.is_bot());
        assert_eq!(bot.last(), None);
        assert_eq!(bot.rnd(), None);
        assert_eq!(bot.seq_get(1), None);
        let v = Slot::val(vec![GetTsId::new(1, 0), GetTsId::new(2, 0)], 3);
        assert_eq!(v.last(), Some(GetTsId::new(2, 0)));
        assert_eq!(v.seq_get(1), Some(GetTsId::new(1, 0)));
        assert_eq!(v.seq_get(2), Some(GetTsId::new(2, 0)));
        assert_eq!(v.seq_get(3), None);
        assert_eq!(v.seq_get(0), None);
        assert_eq!(v.rnd(), Some(3));
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        let ts = BoundedTimestamp::with_budget(20);
        for k in 0..20u32 {
            ts.get_ts_with_id(GetTsId::new(k, 0)).unwrap();
        }
        let stats = ts.phase_stats();
        assert_eq!(stats.calls, 20);
        assert!(stats.phases > 0);
        assert!(stats.total_writes >= stats.invalidation_writes);
        assert!(stats.scans >= stats.phases);
    }
}
