//! Uniform driving interface for the workload scenario engine.
//!
//! The `ts-workloads` crate drives timestamp objects (and their
//! consumers in `ts-apps`) under configurable traffic shapes — closed
//! and open loops, skewed op mixes, thread churn. To do that it needs
//! every object behind one interface, even though their native APIs
//! differ (one-shot vs long-lived, `pid` vs `GetTsId`, locks vs
//! timestamp sources). [`WorkloadTarget`] is that adapter seam:
//!
//! - a *target* is a shared, thread-safe object that can mint
//!   per-thread *workers*;
//! - a [`WorkloadWorker`] executes one operation at a time — the
//!   engine's unit of latency measurement — keeping whatever per-thread
//!   state the object needs (previous timestamps, pool cursors, call
//!   counters);
//! - operations come in three kinds ([`WorkloadOp`]): `GetTs` (the
//!   mutating call), `Scan` (a read-only observation pass) and
//!   `Compare` (the local, shared-memory-free comparison). A worker
//!   that cannot honor a kind substitutes `GetTs` and reports what it
//!   actually did, so op accounting stays truthful.
//!
//! This module provides targets for the `ts-core` objects:
//! [`CollectMax`] and [`GrowableWorkload`] (long-lived), and
//! [`OneShotPool`] (any [`OneShotTimestamp`] made long-runnable by
//! cycling pools of fresh objects). The `ts-apps` crate adds targets
//! for its lock consumers.
//!
//! Workers double as cheap invariant checkers: where two operations by
//! the same worker are guaranteed ordered (long-lived objects, same
//! process, non-overlapping calls — the timestamp property itself),
//! the worker asserts it, so every workload run is also a correctness
//! probe.

use std::hint::black_box;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ts_register::RegisterBackend;

use crate::collectmax::CollectMax;
use crate::error::GetTsError;
use crate::growable::GrowableTimestamp;
use crate::ids::GetTsId;
use crate::timestamp::Timestamp;
use crate::traits::{LongLivedTimestamp, OneShotTimestamp};

/// One kind of operation a workload worker can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadOp {
    /// The mutating timestamp acquisition (for locks: one
    /// acquire/release cycle, whose doorway takes the timestamp).
    GetTs,
    /// A read-only observation pass over the object's registers.
    Scan,
    /// The local comparison of two previously obtained timestamps.
    Compare,
}

impl WorkloadOp {
    /// All operation kinds, in the canonical mix-weight order.
    pub const ALL: [WorkloadOp; 3] = [WorkloadOp::GetTs, WorkloadOp::Scan, WorkloadOp::Compare];

    /// Canonical index into mix-weight arrays.
    pub fn index(self) -> usize {
        match self {
            WorkloadOp::GetTs => 0,
            WorkloadOp::Scan => 1,
            WorkloadOp::Compare => 2,
        }
    }
}

/// Two-deep history of values produced by a worker's operations — the
/// operands for [`WorkloadOp::Compare`].
///
/// Every worker keeps one: `Compare` needs the last two results, and
/// until both exist the convention (shared by all adapters) is to
/// substitute a `GetTs` op and report what actually ran.
#[derive(Debug, Clone, Copy)]
pub struct OpHistory<T> {
    prev2: Option<T>,
    prev: Option<T>,
}

impl<T: Copy> OpHistory<T> {
    /// Empty history.
    pub fn new() -> Self {
        Self {
            prev2: None,
            prev: None,
        }
    }

    /// Records the newest value, shifting the previous one down.
    pub fn push(&mut self, value: T) {
        self.prev2 = self.prev;
        self.prev = Some(value);
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<T> {
        self.prev
    }

    /// The `Compare` operands `(older, newer)` once two values exist;
    /// `None` means the worker must substitute `GetTs`.
    pub fn pair(&self) -> Option<(T, T)> {
        self.prev2.zip(self.prev)
    }
}

impl<T: Copy> Default for OpHistory<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread execution handle minted by a [`WorkloadTarget`].
///
/// Workers are created on the thread that drives them and are not
/// required to be `Send`; all cross-thread sharing lives in the target.
pub trait WorkloadWorker {
    /// Performs one operation, returning the kind actually executed
    /// (a worker substitutes [`WorkloadOp::GetTs`] for kinds it cannot
    /// honor yet, e.g. `Compare` before two timestamps exist).
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp;
}

/// An object the workload engine can drive: shared across threads,
/// minting one [`WorkloadWorker`] per driving thread (or per churn
/// life — a worker may be created and dropped many times per slot).
pub trait WorkloadTarget: Send + Sync {
    /// Object label for reports ("collect_max", "fcfs_lock", ...).
    fn object(&self) -> &'static str;

    /// Register-backend label for reports ("packed", "epoch").
    fn backend(&self) -> &'static str;

    /// Number of distinct worker slots the target supports
    /// (`usize::MAX` when unbounded). The engine drives slots
    /// `0..threads` and requires `threads <= slots()`.
    fn slots(&self) -> usize;

    /// Mints the worker for `slot`. At most one live worker per slot at
    /// a time (the engine guarantees this, including across churn
    /// lives).
    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a>;
}

// ---------------------------------------------------------------------
// CollectMax: the long-lived baseline, driven directly.
// ---------------------------------------------------------------------

struct CollectMaxWorker<'a, B: RegisterBackend<u64>> {
    obj: &'a CollectMax<B>,
    slot: usize,
    history: OpHistory<Timestamp>,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for CollectMaxWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.obj.get_ts(self.slot).expect("slot < processes");
                if let Some(p) = self.history.last() {
                    // Non-overlapping calls by one process: the
                    // timestamp property must order them.
                    assert!(
                        Timestamp::compare(&p, &t),
                        "collect_max violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.obj.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "collect_max history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }
}

impl<B: RegisterBackend<u64>> WorkloadTarget for CollectMax<B> {
    fn object(&self) -> &'static str {
        "collect_max"
    }

    fn backend(&self) -> &'static str {
        B::NAME
    }

    fn slots(&self) -> usize {
        LongLivedTimestamp::processes(self)
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots(), "slot {slot} out of range");
        Box::new(CollectMaxWorker {
            obj: self,
            slot,
            history: OpHistory::new(),
        })
    }
}

// ---------------------------------------------------------------------
// GrowableTimestamp: unbounded long-lived object; workers draw unique
// virtual process ids so churn replacements never reuse a GetTsId.
// ---------------------------------------------------------------------

/// [`GrowableTimestamp`] wrapped for the workload engine: hands every
/// worker (including churn replacements) a fresh virtual process id so
/// `GetTsId`s stay globally unique across worker lives.
#[derive(Debug, Default)]
pub struct GrowableWorkload {
    inner: GrowableTimestamp,
    next_vpid: AtomicU32,
}

impl GrowableWorkload {
    /// Creates an empty growable object ready for driving.
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped object (for post-run space assertions).
    pub fn inner(&self) -> &GrowableTimestamp {
        &self.inner
    }
}

struct GrowableWorker<'a> {
    obj: &'a GrowableTimestamp,
    vpid: u32,
    turn: u32,
    history: OpHistory<Timestamp>,
}

impl WorkloadWorker for GrowableWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.obj.get_ts_with_id(GetTsId::new(self.vpid, self.turn));
                self.turn += 1;
                if let Some(p) = self.history.last() {
                    assert!(
                        Timestamp::compare(&p, &t),
                        "growable violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.obj.probe_round());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "growable history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }
}

impl WorkloadTarget for GrowableWorkload {
    fn object(&self) -> &'static str {
        "growable"
    }

    fn backend(&self) -> &'static str {
        // The growable object's segmented registers are epoch-reclaimed
        // `StampedRegister`s; there is no packed variant (its slots are
        // unbounded sequences).
        "epoch"
    }

    fn slots(&self) -> usize {
        usize::MAX
    }

    fn worker<'a>(&'a self, _slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        let vpid = self.next_vpid.fetch_add(1, Ordering::Relaxed);
        Box::new(GrowableWorker {
            obj: &self.inner,
            vpid,
            turn: 0,
            history: OpHistory::new(),
        })
    }
}

// ---------------------------------------------------------------------
// One-shot objects: made long-runnable by cycling pools of fresh
// objects (each object serves each slot exactly once).
// ---------------------------------------------------------------------

/// Object factory for [`OneShotPool`].
pub type OneShotFactory<T> = Box<dyn Fn() -> T + Send + Sync>;

/// Optional read-only scan hook for [`OneShotPool`] (e.g.
/// [`SimpleOneShot::observed_sum`](crate::SimpleOneShot::observed_sum)).
pub type OneShotScan<T> = Box<dyn Fn(&T) + Send + Sync>;

struct PoolState<T> {
    generation: u64,
    objects: Arc<Vec<T>>,
    /// Per-slot progress through `objects`. Shared so a churn
    /// replacement resumes exactly where its predecessor (same slot)
    /// stopped instead of re-walking consumed objects. Only the slot's
    /// single live worker writes its entry (engine guarantee), so plain
    /// relaxed loads/stores suffice.
    cursors: Arc<Vec<AtomicUsize>>,
}

/// Drives any [`OneShotTimestamp`] continuously by cycling through a
/// pool of fresh objects: each worker takes its single timestamp from
/// each pooled object in order, and whichever worker exhausts the pool
/// first swaps in a new generation (laggards finish their old pool —
/// the `Arc` keeps it alive). Per-slot cursors live in the shared pool
/// state, so a churn replacement worker resumes where its predecessor
/// stopped instead of paying a re-walk over consumed objects.
///
/// Timestamps from *different* objects are incomparable, so unlike the
/// long-lived targets this one measures cost only; the one-shot
/// ordering guarantees are covered by the model checker and the
/// `ts-bench` happens-before harness instead.
pub struct OneShotPool<T> {
    object: &'static str,
    backend: &'static str,
    slots: usize,
    pool_size: usize,
    make: OneShotFactory<T>,
    scan: Option<OneShotScan<T>>,
    state: Mutex<PoolState<T>>,
}

impl<T: OneShotTimestamp> OneShotPool<T> {
    /// Creates a pool target serving `slots` worker slots with
    /// `pool_size` objects per generation; `make` must mint objects
    /// accepting pids `0..slots`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `pool_size == 0`.
    pub fn new(
        object: &'static str,
        backend: &'static str,
        slots: usize,
        pool_size: usize,
        make: OneShotFactory<T>,
    ) -> Self {
        assert!(slots > 0, "need at least one slot");
        assert!(pool_size > 0, "need at least one pooled object");
        let objects = Arc::new((0..pool_size).map(|_| make()).collect::<Vec<_>>());
        let cursors = Arc::new((0..slots).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        Self {
            object,
            backend,
            slots,
            pool_size,
            make,
            scan: None,
            state: Mutex::new(PoolState {
                generation: 0,
                objects,
                cursors,
            }),
        }
    }

    /// Installs a read-only scan hook; without one, `Scan` ops fall
    /// back to `GetTs`.
    pub fn with_scan(mut self, scan: OneShotScan<T>) -> Self {
        self.scan = Some(scan);
        self
    }

    fn refresh(&self, seen_generation: u64) -> PoolView<T> {
        let mut state = self.state.lock().expect("pool lock");
        if state.generation == seen_generation {
            state.objects = Arc::new((0..self.pool_size).map(|_| (self.make)()).collect());
            state.cursors = Arc::new((0..self.slots).map(|_| AtomicUsize::new(0)).collect());
            state.generation += 1;
        }
        PoolView {
            generation: state.generation,
            objects: Arc::clone(&state.objects),
            cursors: Arc::clone(&state.cursors),
        }
    }

    fn current(&self) -> PoolView<T> {
        let state = self.state.lock().expect("pool lock");
        PoolView {
            generation: state.generation,
            objects: Arc::clone(&state.objects),
            cursors: Arc::clone(&state.cursors),
        }
    }
}

/// A worker's snapshot of one pool generation.
struct PoolView<T> {
    generation: u64,
    objects: Arc<Vec<T>>,
    cursors: Arc<Vec<AtomicUsize>>,
}

impl<T: OneShotTimestamp> std::fmt::Debug for OneShotPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneShotPool")
            .field("object", &self.object)
            .field("slots", &self.slots)
            .field("pool_size", &self.pool_size)
            .finish()
    }
}

struct PoolWorker<'a, T> {
    pool: &'a OneShotPool<T>,
    slot: usize,
    view: PoolView<T>,
    history: OpHistory<Timestamp>,
}

impl<T: OneShotTimestamp> PoolWorker<'_, T> {
    /// This slot's progress through the current generation (shared with
    /// churn successors; only this worker writes it while alive).
    fn cursor(&self) -> usize {
        self.view.cursors[self.slot].load(Ordering::Relaxed)
    }

    fn get_ts(&mut self) -> Timestamp {
        loop {
            let cursor = self.cursor();
            if cursor >= self.view.objects.len() {
                self.view = self.pool.refresh(self.view.generation);
                continue;
            }
            self.view.cursors[self.slot].store(cursor + 1, Ordering::Relaxed);
            match self.view.objects[cursor].get_ts(self.slot) {
                Ok(t) => return t,
                // Unreachable while the shared cursor is advanced only
                // by this slot's worker; kept as a safety net so a
                // bookkeeping bug degrades to a skip, not a panic.
                Err(GetTsError::AlreadyUsed { .. }) => continue,
                Err(e) => panic!("one-shot pool get_ts failed: {e}"),
            }
        }
    }
}

impl<T: OneShotTimestamp> WorkloadWorker for PoolWorker<'_, T> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.get_ts();
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => match &self.pool.scan {
                Some(scan) => {
                    let idx = self.cursor().min(self.view.objects.len() - 1);
                    scan(&self.view.objects[idx]);
                    WorkloadOp::Scan
                }
                None => self.step(WorkloadOp::GetTs),
            },
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    // Timestamps come from different pooled objects, so
                    // only the comparison's cost is measured; its result
                    // carries no cross-object meaning.
                    black_box(Timestamp::compare(&a, &b));
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }
}

impl<T: OneShotTimestamp> WorkloadTarget for OneShotPool<T> {
    fn object(&self) -> &'static str {
        self.object
    }

    fn backend(&self) -> &'static str {
        self.backend
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots, "slot {slot} out of range");
        Box::new(PoolWorker {
            pool: self,
            slot,
            view: self.current(),
            history: OpHistory::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackedBackend, SimpleOneShot};

    #[test]
    fn collect_max_worker_runs_every_op_kind() {
        let obj = CollectMax::new(2);
        let mut w = obj.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        // First compare lacks two timestamps and substitutes GetTs.
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(obj.calls(), 2);
    }

    #[test]
    fn growable_workers_get_unique_vpids_across_lives() {
        let target = GrowableWorkload::new();
        for _life in 0..3 {
            let mut w = target.worker(0); // same slot, new life
            for _ in 0..5 {
                w.step(WorkloadOp::GetTs);
            }
        }
        assert_eq!(target.inner().calls(), 15);
        assert_eq!(target.next_vpid.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn one_shot_pool_cycles_generations() {
        let slots = 2;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            4,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        let mut w = pool.worker(0);
        // 10 ops > pool_size forces at least one generation swap.
        for _ in 0..10 {
            assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        }
        assert!(
            pool.current().generation >= 2,
            "pool generation never advanced"
        );
    }

    #[test]
    fn one_shot_pool_replacement_worker_resumes_at_the_shared_cursor() {
        let slots = 1;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            8,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        {
            let mut w = pool.worker(0);
            for _ in 0..3 {
                w.step(WorkloadOp::GetTs);
            }
        }
        // Replacement on the same slot resumes at object 3 — exactly 5
        // objects remain, consumed without triggering a refresh.
        assert_eq!(pool.current().cursors[0].load(Ordering::Relaxed), 3);
        let mut w = pool.worker(0);
        for _ in 0..5 {
            assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        }
        assert_eq!(
            pool.current().generation,
            0,
            "no refresh needed within one pool"
        );
        assert_eq!(pool.current().cursors[0].load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scan_without_hook_substitutes_getts() {
        let slots = 1;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            2,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        let mut w = pool.worker(0);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::GetTs);
        drop(w);
        let with_hook = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            2,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        )
        .with_scan(Box::new(|obj| {
            std::hint::black_box(obj.observed_sum());
        }));
        let mut w = with_hook.worker(0);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
    }
}
