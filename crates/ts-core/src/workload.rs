//! Uniform driving interface for the workload scenario engine.
//!
//! The `ts-workloads` crate drives timestamp objects (and their
//! consumers in `ts-apps`) under configurable traffic shapes — closed
//! and open loops, skewed op mixes, thread churn. To do that it needs
//! every object behind one interface, even though their native APIs
//! differ (one-shot vs long-lived, `pid` vs `GetTsId`, locks vs
//! timestamp sources). [`WorkloadTarget`] is that adapter seam:
//!
//! - a *target* is a shared, thread-safe object that can mint
//!   per-thread *workers*;
//! - a [`WorkloadWorker`] executes one operation at a time — the
//!   engine's unit of latency measurement — keeping whatever per-thread
//!   state the object needs (previous timestamps, pool cursors, call
//!   counters);
//! - operations come in three kinds ([`WorkloadOp`]): `GetTs` (the
//!   mutating call), `Scan` (a read-only observation pass) and
//!   `Compare` (the local, shared-memory-free comparison). A worker
//!   that cannot honor a kind substitutes `GetTs` and reports what it
//!   actually did, so op accounting stays truthful.
//!
//! This module provides targets for the `ts-core` objects:
//! [`CollectMax`] and [`GrowableWorkload`] (long-lived), and
//! [`OneShotPool`] (any [`OneShotTimestamp`] made long-runnable by
//! cycling pools of fresh objects). The `ts-apps` crate adds targets
//! for its lock consumers.
//!
//! Workers double as cheap invariant checkers: where two operations by
//! the same worker are guaranteed ordered (long-lived objects, same
//! process, non-overlapping calls — the timestamp property itself),
//! the worker asserts it, so every workload run is also a correctness
//! probe.
//!
//! The seam's second interface is *replay control*: every worker
//! supports [`WorkloadWorker::step_gated`], which announces the op's
//! sub-steps by pausing at a per-worker [`StepGate`] that a controller
//! releases one at a time (the protocol behind
//! `ts_workloads::replay`). Targets advertise how faithfully their
//! workers can follow a recorded schedule via
//! [`WorkloadTarget::replay_granularity`].
//!
//! # Example
//!
//! ```
//! use ts_core::workload::{WorkloadOp, WorkloadTarget};
//! use ts_core::CollectMax;
//!
//! let obj = CollectMax::new(2);
//! let mut worker = obj.worker(0);
//! // GetTs runs and self-checks the timestamp property; the first
//! // Compare lacks two operands and substitutes (and reports) GetTs.
//! assert_eq!(worker.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
//! assert_eq!(worker.step(WorkloadOp::Compare), WorkloadOp::GetTs);
//! assert_eq!(worker.step(WorkloadOp::Compare), WorkloadOp::Compare);
//! assert_eq!(obj.calls(), 2);
//! ```

use std::hint::black_box;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ts_register::{ArrayLayout, CachePadded, RegisterBackend};

use crate::broken::BrokenCounter;
use crate::collectmax::CollectMax;
use crate::error::GetTsError;
use crate::growable::GrowableTimestamp;
use crate::ids::GetTsId;
use crate::stats::ServiceStats;
use crate::timestamp::Timestamp;
use crate::traits::{LongLivedTimestamp, OneShotTimestamp};

/// Hands out globally unique virtual process ids (vpids).
///
/// This is the machinery behind `M` clients over `n` physical slots:
/// identity (the vpid, never reused, never bounded) is decoupled from
/// storage (the slot, leased while an operation runs). It started life
/// inline in [`GrowableWorkload`], which mints a fresh vpid per churn
/// life so `GetTsId`s stay unique across worker replacements; the
/// `ts-service` crate reuses it to key client sessions, so slot count
/// stops scaling with client count.
///
/// # Example
///
/// ```
/// use ts_core::workload::VpidAllocator;
///
/// let vpids = VpidAllocator::new();
/// let a = vpids.next();
/// let b = vpids.next();
/// assert_ne!(a, b);
/// assert_eq!(vpids.issued(), 2);
/// ```
#[derive(Debug, Default)]
pub struct VpidAllocator {
    next: AtomicU32,
}

impl VpidAllocator {
    /// Creates an allocator starting at vpid 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints the next vpid (never reused).
    pub fn next(&self) -> u32 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Vpids handed out so far.
    pub fn issued(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

/// One kind of operation a workload worker can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadOp {
    /// The mutating timestamp acquisition (for locks: one
    /// acquire/release cycle, whose doorway takes the timestamp).
    GetTs,
    /// A read-only observation pass over the object's registers.
    Scan,
    /// The local comparison of two previously obtained timestamps.
    Compare,
}

impl WorkloadOp {
    /// All operation kinds, in the canonical mix-weight order.
    pub const ALL: [WorkloadOp; 3] = [WorkloadOp::GetTs, WorkloadOp::Scan, WorkloadOp::Compare];

    /// Canonical index into mix-weight arrays.
    pub fn index(self) -> usize {
        match self {
            WorkloadOp::GetTs => 0,
            WorkloadOp::Scan => 1,
            WorkloadOp::Compare => 2,
        }
    }
}

/// Two-deep history of values produced by a worker's operations — the
/// operands for [`WorkloadOp::Compare`].
///
/// Every worker keeps one: `Compare` needs the last two results, and
/// until both exist the convention (shared by all adapters) is to
/// substitute a `GetTs` op and report what actually ran.
#[derive(Debug, Clone, Copy)]
pub struct OpHistory<T> {
    prev2: Option<T>,
    prev: Option<T>,
}

impl<T: Copy> OpHistory<T> {
    /// Empty history.
    pub fn new() -> Self {
        Self {
            prev2: None,
            prev: None,
        }
    }

    /// Records the newest value, shifting the previous one down.
    pub fn push(&mut self, value: T) {
        self.prev2 = self.prev;
        self.prev = Some(value);
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<T> {
        self.prev
    }

    /// The `Compare` operands `(older, newer)` once two values exist;
    /// `None` means the worker must substitute `GetTs`.
    pub fn pair(&self) -> Option<(T, T)> {
        self.prev2.zip(self.prev)
    }
}

impl<T: Copy> Default for OpHistory<T> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Step barrier: the pause/release protocol of schedule replay.
// ---------------------------------------------------------------------

/// Why a [`StepGate::release_next`] call gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// The worker did not finish the released sub-step within the
    /// timeout — it is stuck, dead, or announces fewer sub-steps than
    /// the controller's trace expects.
    Stalled,
    /// The worker called [`StepGate::finish`] before announcing the
    /// released sub-step: the trace expects more sub-steps than the
    /// worker has.
    FinishedEarly,
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Stalled => write!(f, "worker never finished the released sub-step"),
            GateError::FinishedEarly => {
                write!(f, "worker finished before the released sub-step")
            }
        }
    }
}

/// A snapshot of a gate's counters (for invariant checks and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateProgress {
    /// Sub-steps the controller has authorized.
    pub released: u64,
    /// Pauses the worker has announced (the `k`-th pause blocks until
    /// `released >= k`).
    pub announced: u64,
    /// Sub-steps the worker has finished.
    pub finished: u64,
    /// Whether the worker has called [`StepGate::finish`].
    pub done: bool,
}

#[derive(Debug, Default)]
struct GateState {
    released: u64,
    announced: u64,
    finished: u64,
    done: bool,
}

/// A per-worker step barrier: the worker announces sub-steps by pausing
/// at the gate, and a controller releases them one at a time.
///
/// This is the protocol behind adversarial schedule replay
/// (`ts_workloads::replay`): each worker thread calls
/// [`pause`](StepGate::pause) immediately before every announced
/// sub-step of an operation (at minimum once at op start; see
/// [`WorkloadWorker::step_gated`]) and [`finish`](StepGate::finish)
/// when it will announce no more. The controller calls
/// [`release_next`](StepGate::release_next) once per recorded step —
/// the call returns only after the worker has *finished* the released
/// sub-step (observed at its next pause or at `finish`), so the
/// controller always knows the sub-step's shared-memory effect is
/// visible before it releases any other worker.
///
/// Invariant (checked internally on every release): the worker never
/// runs ahead of its released step — `finished <= released` at all
/// times until [`release_all`](StepGate::release_all) abandons pacing.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ts_core::workload::StepGate;
///
/// let gate = StepGate::new();
/// let work_done = AtomicU64::new(0);
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         for _ in 0..3 {
///             gate.pause(); // announce; blocks until released
///             work_done.fetch_add(1, Ordering::SeqCst);
///         }
///         gate.finish();
///     });
///     for expected in 1..=3 {
///         gate.release_next(std::time::Duration::from_secs(5)).unwrap();
///         // release_next returned: sub-step `expected` has finished.
///         assert!(work_done.load(Ordering::SeqCst) >= expected);
///     }
/// });
/// ```
#[derive(Debug, Default)]
pub struct StepGate {
    /// Cache-line padded: replay keeps one gate per worker in a `Vec`,
    /// and each gate's released/finished counters are hammered by a
    /// different worker thread plus the controller — without padding,
    /// neighbouring workers' gate traffic bounces one shared line
    /// between every thread in the replay.
    state: CachePadded<Mutex<GateState>>,
    cv: Condvar,
}

impl StepGate {
    /// Creates a gate with nothing announced or released.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker side: announces the next sub-step and blocks until the
    /// controller releases it. Marks every earlier sub-step finished.
    pub fn pause(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.finished = state.announced;
        state.announced += 1;
        let waiting_for = state.announced;
        self.cv.notify_all();
        while state.released < waiting_for {
            state = self.cv.wait(state).expect("gate lock");
        }
    }

    /// Worker side: declares that no further sub-steps will be
    /// announced and that all announced work is finished.
    pub fn finish(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.finished = state.announced;
        state.done = true;
        self.cv.notify_all();
    }

    /// Controller side: releases the next sub-step and waits until the
    /// worker has finished it (arrived at its next pause, or called
    /// [`finish`](StepGate::finish)).
    ///
    /// # Errors
    ///
    /// [`GateError::Stalled`] if the worker does not finish within
    /// `timeout`; [`GateError::FinishedEarly`] if the worker finished
    /// without ever announcing this sub-step (a trace/implementation
    /// sub-step-count mismatch).
    pub fn release_next(&self, timeout: std::time::Duration) -> Result<(), GateError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("gate lock");
        state.released += 1;
        let target = state.released;
        self.cv.notify_all();
        while state.finished < target {
            if state.done {
                return Err(GateError::FinishedEarly);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(GateError::Stalled);
            }
            let (guard, _timeout_result) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("gate lock");
            state = guard;
        }
        // The run-ahead invariant: a worker can only have finished what
        // was released (release_all sets released = u64::MAX, which
        // trivially keeps the inequality).
        debug_assert!(
            state.finished <= state.released,
            "worker ran ahead of its released step"
        );
        Ok(())
    }

    /// Controller side, non-blocking: adds `n` release credits without
    /// waiting for the worker to consume any of them.
    ///
    /// This is the fault-campaign stall/resume knob: a worker paced
    /// purely by credits runs freely while credits remain, parks at its
    /// next pause when they dry up (a *stall* injected at an exact
    /// announced sub-step), and resumes the instant more are granted.
    /// Unlike [`release_next`](StepGate::release_next) there is no
    /// lock-step wait, so one controller can meter many workers.
    pub fn grant(&self, n: u64) {
        let mut state = self.state.lock().expect("gate lock");
        state.released = state.released.saturating_add(n);
        self.cv.notify_all();
    }

    /// Controller side: abandons pacing — every current and future
    /// pause is released immediately. Used to drain workers whose
    /// remaining sub-steps fall outside the replayed trace (e.g. a
    /// counterexample's stalled writer, left mid-operation when the
    /// trace ends).
    pub fn release_all(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.released = u64::MAX;
        self.cv.notify_all();
    }

    /// Current counters (for tests and diagnostics).
    pub fn progress(&self) -> GateProgress {
        let state = self.state.lock().expect("gate lock");
        GateProgress {
            released: state.released,
            announced: state.announced,
            finished: state.finished,
            done: state.done,
        }
    }
}

/// How faithfully a [`WorkloadTarget`]'s workers can follow a recorded
/// schedule (see [`WorkloadTarget::replay_granularity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayGranularity {
    /// One announced sub-step per operation (the op-start pause): a
    /// replay controller can sequence *operations* along the trace, but
    /// each op's shared-memory body runs without internal pauses at its
    /// invocation point. Reproduces the recorded invocation/response
    /// order; does not reproduce intra-op interleavings.
    Op,
    /// One announced sub-step per shared-memory access (plus the
    /// op-start pause): the controller serializes every register read
    /// and write in trace order, so the replay is fully deterministic —
    /// outputs must equal the model run's.
    MemoryAccess,
}

/// Per-thread execution handle minted by a [`WorkloadTarget`].
///
/// Workers are created on the thread that drives them and are not
/// required to be `Send`; all cross-thread sharing lives in the target.
pub trait WorkloadWorker {
    /// Performs one operation, returning the kind actually executed
    /// (a worker substitutes [`WorkloadOp::GetTs`] for kinds it cannot
    /// honor yet, e.g. `Compare` before two timestamps exist).
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp;

    /// Performs one operation under step-barrier control: the worker
    /// pauses at `gate` once at op start and again before every further
    /// sub-step it announces (see its target's
    /// [`replay_granularity`](WorkloadTarget::replay_granularity)).
    ///
    /// The default implementation announces exactly one sub-step — the
    /// op-start pause — and then runs [`step`](WorkloadWorker::step)
    /// unpaused, which is the [`ReplayGranularity::Op`] contract.
    /// Workers for objects that expose their shared-memory phases (e.g.
    /// `CollectMax::get_ts_paused`) override this to announce one
    /// sub-step per access.
    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        gate.pause();
        self.step(op)
    }

    /// The timestamp produced by this worker's most recent successful
    /// `GetTs`, if the adapter tracks one. Replay controllers use it to
    /// check the timestamp property across workers; `None` opts out
    /// (order is still replayed, outputs are not checked).
    fn last_ts(&self) -> Option<Timestamp> {
        None
    }
}

/// An object the workload engine can drive: shared across threads,
/// minting one [`WorkloadWorker`] per driving thread (or per churn
/// life — a worker may be created and dropped many times per slot).
pub trait WorkloadTarget: Send + Sync {
    /// Object label for reports ("collect_max", "fcfs_lock", ...).
    fn object(&self) -> &'static str;

    /// Register-backend label for reports ("packed", "epoch").
    fn backend(&self) -> &'static str;

    /// Number of distinct worker slots the target supports
    /// (`usize::MAX` when unbounded). The engine drives slots
    /// `0..threads` and requires `threads <= slots()`.
    fn slots(&self) -> usize;

    /// Mints the worker for `slot`. At most one live worker per slot at
    /// a time (the engine guarantees this, including across churn
    /// lives).
    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a>;

    /// The sub-step granularity this target's workers announce through
    /// [`WorkloadWorker::step_gated`]. Defaults to
    /// [`ReplayGranularity::Op`]; targets whose objects expose phase
    /// hooks override with [`ReplayGranularity::MemoryAccess`].
    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::Op
    }

    /// A snapshot of the object's unified hot-path counters
    /// ([`ServiceStats`]), if it keeps any. Bench reports use this to
    /// print fast-hit / batch-fill / shard-imbalance ratios next to a
    /// cell's throughput. `None` (the default) means the object has no
    /// such counters, not that they are all zero.
    fn service_stats(&self) -> Option<ServiceStats> {
        None
    }
}

// ---------------------------------------------------------------------
// CollectMax: the long-lived baseline, driven directly.
// ---------------------------------------------------------------------

struct CollectMaxWorker<'a, B: RegisterBackend<u64>> {
    obj: &'a CollectMax<B>,
    slot: usize,
    history: OpHistory<Timestamp>,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for CollectMaxWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.obj.get_ts(self.slot).expect("slot < processes");
                if let Some(p) = self.history.last() {
                    // Non-overlapping calls by one process: the
                    // timestamp property must order them.
                    assert!(
                        Timestamp::compare(&p, &t),
                        "collect_max violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.obj.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "collect_max history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                gate.pause(); // op start
                let t = self
                    .obj
                    .get_ts_paused(self.slot, || gate.pause())
                    .expect("slot < processes");
                if let Some(p) = self.history.last() {
                    assert!(
                        Timestamp::compare(&p, &t),
                        "collect_max violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            other => {
                gate.pause();
                self.step(other)
            }
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

/// Report label for a backend × register-layout pair: the plain backend
/// name for the default padded layout, a `_unpadded` suffix for the
/// compact one (so padded-vs-unpadded cells are distinguishable in the
/// workload grid).
fn layout_label(backend: &'static str, layout: ArrayLayout) -> &'static str {
    match (backend, layout) {
        (_, ArrayLayout::Padded) => backend,
        ("packed", ArrayLayout::Compact) => "packed_unpadded",
        ("epoch", ArrayLayout::Compact) => "epoch_unpadded",
        (_, ArrayLayout::Compact) => "custom_unpadded",
    }
}

impl<B: RegisterBackend<u64>> WorkloadTarget for CollectMax<B> {
    fn object(&self) -> &'static str {
        "collect_max"
    }

    fn backend(&self) -> &'static str {
        layout_label(B::NAME, self.layout())
    }

    fn slots(&self) -> usize {
        LongLivedTimestamp::processes(self)
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots(), "slot {slot} out of range");
        Box::new(CollectMaxWorker {
            obj: self,
            slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        Some(self.stats())
    }
}

// ---------------------------------------------------------------------
// CollectMaxFast: the same object replayed along its cached-max fast
// path instead of the classic collect.
// ---------------------------------------------------------------------

/// [`CollectMax`] wrapped so that gated replay drives
/// [`CollectMax::get_ts_fast_paused`] — the cached-max fast path with
/// one announced sub-step per shared access — instead of the classic
/// collect path the bare `CollectMax` target announces.
///
/// Two targets exist because their announced access sequences differ
/// and each must match its own model twin: bare `CollectMax` ↔
/// `CollectMaxModel` (the checked-in pre-fast-path traces), this
/// wrapper ↔ `CollectMaxFastModel` (the fast-path regression traces).
/// Ungated stepping is identical in both (`get_ts` *is* the fast path).
#[derive(Debug)]
pub struct CollectMaxFast<B: RegisterBackend<u64> = crate::PackedBackend>(CollectMax<B>);

impl<B: RegisterBackend<u64>> CollectMaxFast<B> {
    /// Wraps an object for fast-path-granular replay.
    pub fn new(processes: usize) -> Self {
        Self(CollectMax::with_backend(processes))
    }

    /// The wrapped object.
    pub fn inner(&self) -> &CollectMax<B> {
        &self.0
    }
}

struct CollectMaxFastWorker<'a, B: RegisterBackend<u64>> {
    obj: &'a CollectMax<B>,
    slot: usize,
    history: OpHistory<Timestamp>,
}

impl<B: RegisterBackend<u64>> WorkloadWorker for CollectMaxFastWorker<'_, B> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.obj.get_ts(self.slot).expect("slot < processes");
                if let Some(p) = self.history.last() {
                    assert!(
                        Timestamp::compare(&p, &t),
                        "collect_max_fast violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.obj.read_max());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "collect_max_fast history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                gate.pause(); // op start
                let t = self
                    .obj
                    .get_ts_fast_paused(self.slot, || gate.pause())
                    .expect("slot < processes");
                if let Some(p) = self.history.last() {
                    assert!(
                        Timestamp::compare(&p, &t),
                        "collect_max_fast violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            other => {
                gate.pause();
                self.step(other)
            }
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl<B: RegisterBackend<u64>> WorkloadTarget for CollectMaxFast<B> {
    fn object(&self) -> &'static str {
        "collect_max_fast"
    }

    fn backend(&self) -> &'static str {
        layout_label(B::NAME, self.0.layout())
    }

    fn slots(&self) -> usize {
        LongLivedTimestamp::processes(&self.0)
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots(), "slot {slot} out of range");
        Box::new(CollectMaxFastWorker {
            obj: &self.0,
            slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        Some(self.0.stats())
    }
}

// ---------------------------------------------------------------------
// HelpingScanWorkload: one scanner + storming writers over one shared
// register array, the driving seam for the adaptive/helping scan path.
// ---------------------------------------------------------------------

/// Which scan rendition the scanner slot of a [`HelpingScanWorkload`]
/// runs when stepped ungated — the A/B/C axis of the `writer_storm`
/// bench cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// `classic_double_collect_scan`: full-array sweeps repeated until
    /// two agree — the pre-adaptive baseline.
    Classic,
    /// `adaptive_scan`: the dirty-block retry ladder (lock-free).
    Adaptive,
    /// `helping_scan`: the ladder plus help-board adoption (wait-free).
    Helping,
}

/// A scanner/writer-storm workload over one register array: slot 0
/// scans (by the configured [`ScanMode`]), every other slot storms
/// writes into its own register through the help board.
///
/// This is the driving seam for the adaptive scan path: ungated it
/// produces the `writer_storm` bench cells (same writer traffic, three
/// scanner renditions), gated it replays
/// `ts_core::model::HelpingScanModel` schedules at memory-access
/// granularity — the scanner announces `helping_scan_paused`'s access
/// sequence, writers announce `storm_write_paused`'s (collect-max
/// `getTS` issuers, like the model twin's).
///
/// The array capacity may exceed the writer count (writers use
/// registers `0..writers`): a storm over a large, sparsely-written
/// array is exactly where the dirty-block ladder beats the classic
/// full-sweep recollect.
///
/// Ungated writers are *paced to scanner progress* (see
/// `HelpingScanWriter::pace`): each store is followed by a bounded
/// spin that exits early when the scan counter moves, so the storm
/// covers the scanner's whole run instead of draining in its opening
/// instants, whichever rendition is scanning.
pub struct HelpingScanWorkload {
    array: ts_register::RegisterArray<u64, crate::PackedBackend>,
    board: ts_snapshot::HelpBoard<u64>,
    policy: ts_snapshot::ScanPolicy,
    mode: ScanMode,
    writers: usize,
    scans: AtomicU64,
    helped: AtomicU64,
    recollects: AtomicU64,
    writes: AtomicU64,
}

impl std::fmt::Debug for HelpingScanWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HelpingScanWorkload")
            .field("mode", &self.mode)
            .field("writers", &self.writers)
            .field("capacity", &self.array.capacity())
            .finish()
    }
}

impl HelpingScanWorkload {
    /// Creates the workload: `writers` storming slots over an array of
    /// `capacity >= writers` registers, scanned in `mode` under
    /// `policy`. Slot count is `writers + 1` (slot 0 scans).
    ///
    /// # Panics
    ///
    /// Panics if `writers == 0` or `capacity < writers`.
    pub fn new(
        writers: usize,
        capacity: usize,
        mode: ScanMode,
        policy: ts_snapshot::ScanPolicy,
    ) -> Self {
        assert!(writers > 0, "need at least one writer slot");
        assert!(capacity >= writers, "every writer needs a register");
        Self {
            array: ts_register::RegisterArray::with_backend(capacity, 0),
            board: ts_snapshot::HelpBoard::new(writers),
            policy,
            mode,
            writers,
            scans: Default::default(),
            helped: Default::default(),
            recollects: Default::default(),
            writes: Default::default(),
        }
    }

    /// The replay configuration matching `HelpingScanModel::new(n)`:
    /// `n - 1` writers, one register per writer, helping mode with a
    /// starvation bound of 1 (the model raises distress after its
    /// first failed validate pass).
    pub fn for_replay(processes: usize) -> Self {
        assert!(processes >= 2, "need a scanner and a writer");
        Self::new(
            processes - 1,
            processes - 1,
            ScanMode::Helping,
            ts_snapshot::ScanPolicy {
                starvation_bound: 1,
            },
        )
    }

    /// Scans completed (all slots, all modes).
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    fn record_scan(&self, outcome: &ts_snapshot::ScanOutcome) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.recollects
            .fetch_add(outcome.recollect_passes, Ordering::Relaxed);
        if outcome.helped {
            self.helped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct HelpingScanScanner<'a> {
    obj: &'a HelpingScanWorkload,
}

impl WorkloadWorker for HelpingScanScanner<'_> {
    // Slot 0 honors only `Scan`, whatever the mix deals it.
    fn step(&mut self, _op: WorkloadOp) -> WorkloadOp {
        let outcome = match self.obj.mode {
            ScanMode::Classic => {
                let (view, outcome) = ts_snapshot::classic_double_collect_scan(&self.obj.array);
                black_box(view);
                outcome
            }
            ScanMode::Adaptive => {
                let (view, outcome) = ts_snapshot::adaptive_scan(&self.obj.array);
                black_box(view);
                outcome
            }
            ScanMode::Helping => {
                let (view, outcome) =
                    ts_snapshot::helping_scan(&self.obj.array, &self.obj.board, &self.obj.policy);
                black_box(view);
                outcome
            }
        };
        self.obj.record_scan(&outcome);
        WorkloadOp::Scan
    }

    fn step_gated(&mut self, _op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        gate.pause(); // op start
        let (view, outcome) = ts_snapshot::helping_scan_paused(
            &self.obj.array,
            &self.obj.board,
            &self.obj.policy,
            || gate.pause(),
        );
        black_box(view);
        self.obj.record_scan(&outcome);
        WorkloadOp::Scan
    }

    // Scan outputs are views, not timestamps: opt out of the replay
    // output check (order is still replayed and property-checked across
    // the writers' timestamps).
}

struct HelpingScanWriter<'a> {
    obj: &'a HelpingScanWorkload,
    /// Board slot and register index (writer `slot - 1` of the target).
    writer: usize,
    /// Ungated storm value: a worker-local monotone counter (the
    /// register is single-writer, so the register stays monotone too).
    next: u64,
    history: OpHistory<Timestamp>,
}

impl HelpingScanWriter<'_> {
    /// Paces the ungated storm to scanner progress: after each write,
    /// spin until the shared scan counter moves or a sweep-scale spin
    /// budget expires.
    ///
    /// Without pacing, writers (a few dozen nanoseconds per store)
    /// drain their closed-loop op budget in the opening instants of
    /// the cell and the scanner spends the rest of the run over a
    /// quiescent array — every scan rendition then measures its
    /// *contention-free* cost and the cell stops being a storm. With
    /// pacing, the storm self-throttles to whatever the scanner can
    /// sustain: a scanner that keeps validating (the adaptive ladder)
    /// releases the writers a few stores per scan for its whole run,
    /// while a scanner stuck re-sweeping (the classic baseline never
    /// sees two clean full sweeps under sustained stores) leaves the
    /// writers on the budget path, which keeps the store rate high
    /// enough to stay ahead of full-array validation. The budget is
    /// proportional to the array capacity so the fallback write
    /// interval tracks the cost of the sweeps it is meant to disturb.
    fn pace(&self) {
        let seen = self.obj.scans.load(Ordering::Relaxed);
        for _ in 0..2 * self.obj.array.capacity() {
            if self.obj.scans.load(Ordering::Relaxed) != seen {
                break;
            }
            std::hint::spin_loop();
        }
    }
}

impl WorkloadWorker for HelpingScanWriter<'_> {
    // Writer slots honor only `GetTs` (the storm store); `Compare`
    // checks the worker's own history once it has a pair.
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "storm writer history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
            _ => {
                self.next += 1;
                ts_snapshot::helping_write(
                    &self.obj.array,
                    &self.obj.board,
                    self.writer,
                    self.writer,
                    self.next,
                )
                .expect("writer register in range");
                self.obj.writes.fetch_add(1, Ordering::Relaxed);
                self.history.push(Timestamp::scalar(self.next));
                self.pace();
                WorkloadOp::GetTs
            }
        }
    }

    fn step_gated(&mut self, _op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        gate.pause(); // op start
        let (t, _outcome) = ts_snapshot::storm_write_paused(
            &self.obj.array,
            &self.obj.board,
            self.writer,
            self.writer,
            || gate.pause(),
        );
        self.obj.writes.fetch_add(1, Ordering::Relaxed);
        let t = Timestamp::scalar(t);
        if let Some(p) = self.history.last() {
            // The gated writer is a collect-max getTS issuer (its own
            // register is in the collect), so its outputs are ordered.
            assert!(
                Timestamp::compare(&p, &t),
                "storm writer violated the timestamp property: {p} !< {t}"
            );
        }
        self.history.push(t);
        WorkloadOp::GetTs
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl WorkloadTarget for HelpingScanWorkload {
    fn object(&self) -> &'static str {
        match self.mode {
            ScanMode::Classic => "classic_scan",
            ScanMode::Adaptive => "adaptive_scan",
            ScanMode::Helping => "helping_scan",
        }
    }

    fn backend(&self) -> &'static str {
        "packed"
    }

    fn slots(&self) -> usize {
        self.writers + 1
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot <= self.writers, "slot {slot} out of range");
        if slot == 0 {
            Box::new(HelpingScanScanner { obj: self })
        } else {
            Box::new(HelpingScanWriter {
                obj: self,
                writer: slot - 1,
                next: 0,
                history: OpHistory::new(),
            })
        }
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }

    fn service_stats(&self) -> Option<ServiceStats> {
        Some(ServiceStats {
            calls: self.writes.load(Ordering::Relaxed),
            stamps: self.writes.load(Ordering::Relaxed),
            helped_scans: self.helped.load(Ordering::Relaxed),
            dirty_recollects: self.recollects.load(Ordering::Relaxed),
            ..ServiceStats::default()
        })
    }
}

// ---------------------------------------------------------------------
// GrowableTimestamp: unbounded long-lived object; workers draw unique
// virtual process ids so churn replacements never reuse a GetTsId.
// ---------------------------------------------------------------------

/// [`GrowableTimestamp`] wrapped for the workload engine: hands every
/// worker (including churn replacements) a fresh virtual process id
/// from a [`VpidAllocator`] so `GetTsId`s stay globally unique across
/// worker lives.
#[derive(Debug, Default)]
pub struct GrowableWorkload {
    inner: GrowableTimestamp,
    vpids: VpidAllocator,
}

impl GrowableWorkload {
    /// Creates an empty growable object ready for driving.
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped object (for post-run space assertions).
    pub fn inner(&self) -> &GrowableTimestamp {
        &self.inner
    }
}

struct GrowableWorker<'a> {
    obj: &'a GrowableTimestamp,
    vpid: u32,
    turn: u32,
    history: OpHistory<Timestamp>,
}

impl WorkloadWorker for GrowableWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.obj.get_ts_with_id(GetTsId::new(self.vpid, self.turn));
                self.turn += 1;
                if let Some(p) = self.history.last() {
                    assert!(
                        Timestamp::compare(&p, &t),
                        "growable violated the timestamp property: {p} !< {t}"
                    );
                }
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => {
                black_box(self.obj.probe_round());
                WorkloadOp::Scan
            }
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    assert!(
                        black_box(Timestamp::compare(&a, &b)),
                        "growable history out of order: {a} !< {b}"
                    );
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl WorkloadTarget for GrowableWorkload {
    fn object(&self) -> &'static str {
        "growable"
    }

    fn backend(&self) -> &'static str {
        // The growable object's segmented registers are epoch-reclaimed
        // `StampedRegister`s; there is no packed variant (its slots are
        // unbounded sequences).
        "epoch"
    }

    fn slots(&self) -> usize {
        usize::MAX
    }

    fn worker<'a>(&'a self, _slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        let vpid = self.vpids.next();
        Box::new(GrowableWorker {
            obj: &self.inner,
            vpid,
            turn: 0,
            history: OpHistory::new(),
        })
    }
}

// ---------------------------------------------------------------------
// One-shot objects: made long-runnable by cycling pools of fresh
// objects (each object serves each slot exactly once).
// ---------------------------------------------------------------------

/// Object factory for [`OneShotPool`].
pub type OneShotFactory<T> = Box<dyn Fn() -> T + Send + Sync>;

/// Optional read-only scan hook for [`OneShotPool`] (e.g.
/// [`SimpleOneShot::observed_sum`](crate::SimpleOneShot::observed_sum)).
pub type OneShotScan<T> = Box<dyn Fn(&T) + Send + Sync>;

struct PoolState<T> {
    generation: u64,
    objects: Arc<Vec<T>>,
    /// Per-slot progress through `objects`. Shared so a churn
    /// replacement resumes exactly where its predecessor (same slot)
    /// stopped instead of re-walking consumed objects. Only the slot's
    /// single live worker writes its entry (engine guarantee), so plain
    /// relaxed loads/stores suffice.
    cursors: Arc<Vec<AtomicUsize>>,
}

/// Drives any [`OneShotTimestamp`] continuously by cycling through a
/// pool of fresh objects: each worker takes its single timestamp from
/// each pooled object in order, and whichever worker exhausts the pool
/// first swaps in a new generation (laggards finish their old pool —
/// the `Arc` keeps it alive). Per-slot cursors live in the shared pool
/// state, so a churn replacement worker resumes where its predecessor
/// stopped instead of paying a re-walk over consumed objects.
///
/// Timestamps from *different* objects are incomparable, so unlike the
/// long-lived targets this one measures cost only; the one-shot
/// ordering guarantees are covered by the model checker and the
/// `ts-bench` happens-before harness instead.
pub struct OneShotPool<T> {
    object: &'static str,
    backend: &'static str,
    slots: usize,
    pool_size: usize,
    make: OneShotFactory<T>,
    scan: Option<OneShotScan<T>>,
    state: Mutex<PoolState<T>>,
}

impl<T: OneShotTimestamp> OneShotPool<T> {
    /// Creates a pool target serving `slots` worker slots with
    /// `pool_size` objects per generation; `make` must mint objects
    /// accepting pids `0..slots`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `pool_size == 0`.
    pub fn new(
        object: &'static str,
        backend: &'static str,
        slots: usize,
        pool_size: usize,
        make: OneShotFactory<T>,
    ) -> Self {
        assert!(slots > 0, "need at least one slot");
        assert!(pool_size > 0, "need at least one pooled object");
        let objects = Arc::new((0..pool_size).map(|_| make()).collect::<Vec<_>>());
        let cursors = Arc::new((0..slots).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        Self {
            object,
            backend,
            slots,
            pool_size,
            make,
            scan: None,
            state: Mutex::new(PoolState {
                generation: 0,
                objects,
                cursors,
            }),
        }
    }

    /// Installs a read-only scan hook; without one, `Scan` ops fall
    /// back to `GetTs`.
    pub fn with_scan(mut self, scan: OneShotScan<T>) -> Self {
        self.scan = Some(scan);
        self
    }

    fn refresh(&self, seen_generation: u64) -> PoolView<T> {
        let mut state = self.state.lock().expect("pool lock");
        if state.generation == seen_generation {
            state.objects = Arc::new((0..self.pool_size).map(|_| (self.make)()).collect());
            state.cursors = Arc::new((0..self.slots).map(|_| AtomicUsize::new(0)).collect());
            state.generation += 1;
        }
        PoolView {
            generation: state.generation,
            objects: Arc::clone(&state.objects),
            cursors: Arc::clone(&state.cursors),
        }
    }

    fn current(&self) -> PoolView<T> {
        let state = self.state.lock().expect("pool lock");
        PoolView {
            generation: state.generation,
            objects: Arc::clone(&state.objects),
            cursors: Arc::clone(&state.cursors),
        }
    }
}

/// A worker's snapshot of one pool generation.
struct PoolView<T> {
    generation: u64,
    objects: Arc<Vec<T>>,
    cursors: Arc<Vec<AtomicUsize>>,
}

impl<T: OneShotTimestamp> std::fmt::Debug for OneShotPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneShotPool")
            .field("object", &self.object)
            .field("slots", &self.slots)
            .field("pool_size", &self.pool_size)
            .finish()
    }
}

struct PoolWorker<'a, T> {
    pool: &'a OneShotPool<T>,
    slot: usize,
    view: PoolView<T>,
    history: OpHistory<Timestamp>,
}

impl<T: OneShotTimestamp> PoolWorker<'_, T> {
    /// This slot's progress through the current generation (shared with
    /// churn successors; only this worker writes it while alive).
    fn cursor(&self) -> usize {
        self.view.cursors[self.slot].load(Ordering::Relaxed)
    }

    fn get_ts(&mut self) -> Timestamp {
        loop {
            let cursor = self.cursor();
            if cursor >= self.view.objects.len() {
                self.view = self.pool.refresh(self.view.generation);
                continue;
            }
            self.view.cursors[self.slot].store(cursor + 1, Ordering::Relaxed);
            match self.view.objects[cursor].get_ts(self.slot) {
                Ok(t) => return t,
                // Unreachable while the shared cursor is advanced only
                // by this slot's worker; kept as a safety net so a
                // bookkeeping bug degrades to a skip, not a panic.
                Err(GetTsError::AlreadyUsed { .. }) => continue,
                Err(e) => panic!("one-shot pool get_ts failed: {e}"),
            }
        }
    }
}

impl<T: OneShotTimestamp> WorkloadWorker for PoolWorker<'_, T> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                let t = self.get_ts();
                self.history.push(t);
                WorkloadOp::GetTs
            }
            WorkloadOp::Scan => match &self.pool.scan {
                Some(scan) => {
                    let idx = self.cursor().min(self.view.objects.len() - 1);
                    scan(&self.view.objects[idx]);
                    WorkloadOp::Scan
                }
                None => self.step(WorkloadOp::GetTs),
            },
            WorkloadOp::Compare => match self.history.pair() {
                Some((a, b)) => {
                    // Timestamps come from different pooled objects, so
                    // only the comparison's cost is measured; its result
                    // carries no cross-object meaning.
                    black_box(Timestamp::compare(&a, &b));
                    WorkloadOp::Compare
                }
                None => self.step(WorkloadOp::GetTs),
            },
        }
    }

    // Pool timestamps come from different objects and are mutually
    // incomparable, so `last_ts` stays `None`: replay checks order only.
}

impl<T: OneShotTimestamp> WorkloadTarget for OneShotPool<T> {
    fn object(&self) -> &'static str {
        self.object
    }

    fn backend(&self) -> &'static str {
        self.backend
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots, "slot {slot} out of range");
        Box::new(PoolWorker {
            pool: self,
            slot,
            view: self.current(),
            history: OpHistory::new(),
        })
    }
}

// ---------------------------------------------------------------------
// BrokenCounter: the replay harness's canary. Deliberately incorrect
// (see `crate::broken`), so its worker does NOT assert the timestamp
// property — replay exists to *observe* the violation, not panic on it.
//
// Unlike the other one-shot objects (which the scenario engine drives
// through `OneShotPool`'s fresh-object cycling), this target is
// replay-only: each slot supports exactly ONE `GetTs`, mirroring its
// one-shot model twin (`ops_per_process = Some(1)`), and a second op
// panics with a clear message. Traces built from the twin can never
// request a second op per process (the model refuses to invoke one),
// so the panic is reachable only by driving this target outside the
// replay harness — wrap it in `OneShotPool` for scenario use instead.
// ---------------------------------------------------------------------

struct BrokenCounterWorker<'a> {
    obj: &'a BrokenCounter,
    pid: usize,
    history: OpHistory<Timestamp>,
}

impl BrokenCounterWorker<'_> {
    fn get_ts(&mut self, pause: impl FnMut()) {
        let t = self.obj.get_ts_paused(self.pid, pause).expect(
            "broken_counter is a replay-only one-shot target: each slot supports exactly \
             one GetTs (wrap it in OneShotPool for scenario-engine use)",
        );
        self.history.push(t);
    }
}

impl WorkloadWorker for BrokenCounterWorker<'_> {
    fn step(&mut self, op: WorkloadOp) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                self.get_ts(|| {});
                WorkloadOp::GetTs
            }
            // No read-only observation or meaningful comparison exists;
            // substitute GetTs like the other adapters.
            WorkloadOp::Scan | WorkloadOp::Compare => self.step(WorkloadOp::GetTs),
        }
    }

    fn step_gated(&mut self, op: WorkloadOp, gate: &StepGate) -> WorkloadOp {
        match op {
            WorkloadOp::GetTs => {
                gate.pause(); // op start
                self.get_ts(|| gate.pause());
                WorkloadOp::GetTs
            }
            other => {
                gate.pause();
                self.step(other)
            }
        }
    }

    fn last_ts(&self) -> Option<Timestamp> {
        self.history.last()
    }
}

impl WorkloadTarget for BrokenCounter {
    fn object(&self) -> &'static str {
        "broken_counter"
    }

    fn backend(&self) -> &'static str {
        // A bare `WordRegister`, not a pluggable backend.
        "word"
    }

    fn slots(&self) -> usize {
        crate::traits::OneShotTimestamp::processes(self)
    }

    fn worker<'a>(&'a self, slot: usize) -> Box<dyn WorkloadWorker + 'a> {
        assert!(slot < self.slots(), "slot {slot} out of range");
        Box::new(BrokenCounterWorker {
            obj: self,
            pid: slot,
            history: OpHistory::new(),
        })
    }

    fn replay_granularity(&self) -> ReplayGranularity {
        ReplayGranularity::MemoryAccess
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackedBackend, SimpleOneShot};

    #[test]
    fn collect_max_worker_runs_every_op_kind() {
        let obj = CollectMax::new(2);
        let mut w = obj.worker(0);
        assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
        // First compare lacks two timestamps and substitutes GetTs.
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::GetTs);
        assert_eq!(w.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(obj.calls(), 2);
    }

    #[test]
    fn growable_workers_get_unique_vpids_across_lives() {
        let target = GrowableWorkload::new();
        for _life in 0..3 {
            let mut w = target.worker(0); // same slot, new life
            for _ in 0..5 {
                w.step(WorkloadOp::GetTs);
            }
        }
        assert_eq!(target.inner().calls(), 15);
        assert_eq!(target.vpids.issued(), 3);
    }

    #[test]
    fn one_shot_pool_cycles_generations() {
        let slots = 2;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            4,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        let mut w = pool.worker(0);
        // 10 ops > pool_size forces at least one generation swap.
        for _ in 0..10 {
            assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        }
        assert!(
            pool.current().generation >= 2,
            "pool generation never advanced"
        );
    }

    #[test]
    fn one_shot_pool_replacement_worker_resumes_at_the_shared_cursor() {
        let slots = 1;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            8,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        {
            let mut w = pool.worker(0);
            for _ in 0..3 {
                w.step(WorkloadOp::GetTs);
            }
        }
        // Replacement on the same slot resumes at object 3 — exactly 5
        // objects remain, consumed without triggering a refresh.
        assert_eq!(pool.current().cursors[0].load(Ordering::Relaxed), 3);
        let mut w = pool.worker(0);
        for _ in 0..5 {
            assert_eq!(w.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        }
        assert_eq!(
            pool.current().generation,
            0,
            "no refresh needed within one pool"
        );
        assert_eq!(pool.current().cursors[0].load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scan_without_hook_substitutes_getts() {
        let slots = 1;
        let pool = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            2,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        );
        let mut w = pool.worker(0);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::GetTs);
        drop(w);
        let with_hook = OneShotPool::new(
            "simple_oneshot",
            "packed",
            slots,
            2,
            Box::new(move || SimpleOneShot::<PackedBackend>::with_backend(slots)),
        )
        .with_scan(Box::new(|obj| {
            std::hint::black_box(obj.observed_sum());
        }));
        let mut w = with_hook.worker(0);
        assert_eq!(w.step(WorkloadOp::Scan), WorkloadOp::Scan);
    }

    const GATE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

    #[test]
    fn gate_release_next_observes_completed_substeps() {
        let gate = StepGate::new();
        let progress = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..5 {
                    gate.pause();
                    progress.fetch_add(1, Ordering::SeqCst);
                }
                gate.finish();
            });
            for released in 1..=5 {
                gate.release_next(GATE_TIMEOUT).unwrap();
                assert_eq!(progress.load(Ordering::SeqCst), released);
            }
            let p = gate.progress();
            assert!(p.done);
            assert_eq!(p.finished, 5);
        });
    }

    #[test]
    fn gate_worker_never_runs_ahead_of_released_steps() {
        // A worker hammering the gate as fast as it can, a controller
        // releasing with jitter, and a sampler asserting the run-ahead
        // invariant the whole time.
        let gate = StepGate::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let steps = 200u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..steps {
                    gate.pause();
                }
                gate.finish();
            });
            s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let p = gate.progress();
                    assert!(
                        p.finished <= p.released,
                        "worker ran ahead: finished {} > released {}",
                        p.finished,
                        p.released
                    );
                    assert!(
                        p.announced <= p.released + 1,
                        "worker announced past its release horizon"
                    );
                    std::thread::yield_now();
                }
            });
            // SplitMix64-style jitter without a rand dependency.
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..steps {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 4 == 0 {
                    std::thread::yield_now();
                }
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
            stop.store(true, Ordering::Release);
        });
    }

    #[test]
    fn gate_reports_finished_early_on_substep_mismatch() {
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                gate.pause();
                gate.finish(); // announces 1 sub-step total
            });
            gate.release_next(GATE_TIMEOUT).unwrap();
            // The trace expects a second sub-step the worker never has.
            assert_eq!(
                gate.release_next(GATE_TIMEOUT),
                Err(GateError::FinishedEarly)
            );
        });
    }

    #[test]
    fn gate_reports_stall_on_absent_worker() {
        let gate = StepGate::new();
        assert_eq!(
            gate.release_next(std::time::Duration::from_millis(50)),
            Err(GateError::Stalled)
        );
        // An abandoned gate lets a later worker run unpaced.
        gate.release_all();
        gate.pause(); // returns immediately
        gate.finish();
    }

    #[test]
    fn granted_credits_meter_the_worker_without_lockstep_waits() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let gate = StepGate::new();
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    gate.pause();
                    done.fetch_add(1, Ordering::SeqCst);
                }
                gate.finish();
            });
            // Two credits: the worker burns both and parks at its third
            // pause — a stall injected at an exact sub-step boundary.
            gate.grant(2);
            while gate.progress().announced < 3 {
                std::thread::yield_now();
            }
            assert_eq!(done.load(Ordering::SeqCst), 2, "parked on the 3rd pause");
            // One more credit resumes it.
            gate.grant(1);
            while !gate.progress().done {
                std::thread::yield_now();
            }
            assert_eq!(done.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn default_step_gated_announces_one_substep_per_op() {
        let obj = GrowableWorkload::new();
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = obj.worker(0);
                for _ in 0..3 {
                    w.step_gated(WorkloadOp::GetTs, &gate);
                }
                gate.finish();
            });
            for _ in 0..3 {
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
        });
        assert_eq!(gate.progress().announced, 3);
        assert_eq!(obj.inner().calls(), 3);
    }

    #[test]
    fn collect_max_gated_step_announces_every_memory_access() {
        let n = 3;
        let obj = CollectMax::new(n);
        assert_eq!(obj.replay_granularity(), ReplayGranularity::MemoryAccess);
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = obj.worker(0);
                w.step_gated(WorkloadOp::GetTs, &gate);
                gate.finish();
            });
            // 1 op-start + n reads + 1 write.
            for _ in 0..(n + 2) {
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
        });
        assert_eq!(gate.progress().announced, (n + 2) as u64);
        assert_eq!(obj.calls(), 1);
    }

    #[test]
    fn helping_scan_target_steps_by_slot_role() {
        // Slot 0 scans whatever the mix deals it; writer slots storm.
        let obj =
            HelpingScanWorkload::new(2, 4, ScanMode::Helping, ts_snapshot::ScanPolicy::default());
        assert_eq!(obj.object(), "helping_scan");
        assert_eq!(obj.slots(), 3);
        assert_eq!(obj.replay_granularity(), ReplayGranularity::MemoryAccess);
        let mut scanner = obj.worker(0);
        assert_eq!(scanner.step(WorkloadOp::GetTs), WorkloadOp::Scan);
        assert_eq!(scanner.last_ts(), None, "scan outputs are not timestamps");
        let mut writer = obj.worker(1);
        assert_eq!(writer.step(WorkloadOp::Scan), WorkloadOp::GetTs);
        assert_eq!(writer.step(WorkloadOp::GetTs), WorkloadOp::GetTs);
        assert_eq!(writer.step(WorkloadOp::Compare), WorkloadOp::Compare);
        assert_eq!(writer.last_ts(), Some(Timestamp::scalar(2)));
        drop((scanner, writer));
        let stats = obj.service_stats().expect("target keeps counters");
        assert_eq!(stats.calls, 2);
        assert_eq!(obj.scans(), 1);
        assert_eq!(stats.helped_scans, 0, "nobody starved");
    }

    #[test]
    fn helping_scan_mode_labels_select_the_scan_rendition() {
        for (mode, label) in [
            (ScanMode::Classic, "classic_scan"),
            (ScanMode::Adaptive, "adaptive_scan"),
            (ScanMode::Helping, "helping_scan"),
        ] {
            let obj = HelpingScanWorkload::new(1, 1, mode, ts_snapshot::ScanPolicy::default());
            assert_eq!(obj.object(), label);
            let mut scanner = obj.worker(0);
            assert_eq!(scanner.step(WorkloadOp::Scan), WorkloadOp::Scan);
        }
    }

    #[test]
    fn helping_scan_gated_workers_announce_the_model_access_sequence() {
        // One writer, one register: the solo scanner announces
        // 1 op-start + era read + era CAS + 1 collect + 1 validate = 5;
        // the calm writer announces 1 op-start + distress read +
        // 1 collect read + store = 4 — exactly the model twin's
        // Invoke/Read/Write/Cas step counts.
        let obj = HelpingScanWorkload::for_replay(2);
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = obj.worker(0);
                w.step_gated(WorkloadOp::Scan, &gate);
                gate.finish();
            });
            for _ in 0..5 {
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
        });
        assert_eq!(gate.progress().announced, 5);
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = obj.worker(1);
                w.step_gated(WorkloadOp::GetTs, &gate);
                assert_eq!(w.last_ts(), Some(Timestamp::scalar(1)));
                gate.finish();
            });
            for _ in 0..4 {
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
        });
        assert_eq!(gate.progress().announced, 4);
        assert_eq!(obj.scans(), 1);
    }

    #[test]
    fn broken_counter_target_exposes_access_granularity() {
        let obj = BrokenCounter::new(2);
        assert_eq!(obj.replay_granularity(), ReplayGranularity::MemoryAccess);
        assert_eq!(obj.object(), "broken_counter");
        assert_eq!(obj.slots(), 2);
        let gate = StepGate::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = obj.worker(0);
                w.step_gated(WorkloadOp::GetTs, &gate);
                assert_eq!(w.last_ts(), Some(Timestamp::scalar(1)));
                gate.finish();
            });
            // op start + read + write.
            for _ in 0..3 {
                gate.release_next(GATE_TIMEOUT).unwrap();
            }
        });
        assert_eq!(gate.progress().announced, 3);
    }
}
