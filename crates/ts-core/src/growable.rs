//! Section 7 extension: unbounded invocations with registers acquired on
//! demand.
//!
//! The paper remarks that Algorithm 4 "generalizes even to the situation
//! where the number of getTS() method invocations is not bounded,
//! provided that the system could acquire additional registers as
//! needed. In this case however, progress would be non-blocking only
//! instead of wait-free." This module makes that concrete: the register
//! array is a lazily-allocated segmented vector, so no bound `M` is ever
//! fixed; the while-loop, invalidation pass and scan are unchanged.
//!
//! Progress: each individual `getTS` can now be overtaken forever by a
//! stream of phase-opening writes (its scan and line-6 checks keep
//! failing), so the object is non-blocking (some call always completes)
//! rather than wait-free. Register acquisition itself uses `OnceLock`
//! segment initialization, whose one-time initialization race is the
//! "system acquires registers" step the paper hypothesizes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use ts_register::{Stamped, StampedRegister};

use crate::bounded::Slot;
use crate::ids::GetTsId;
use crate::timestamp::Timestamp;

/// Number of doubling segments: segment `s` holds `2^s` registers, so 40
/// segments cover ~10^12 registers — unbounded for practical purposes.
const SEGMENTS: usize = 40;

/// Lazily grown register bank: segment `s` covers 0-based indices
/// `[2^s − 1, 2^{s+1} − 1)`.
struct SegmentedRegisters {
    segments: Vec<OnceLock<Box<[StampedRegister<Slot>]>>>,
    /// High-water mark of touched 0-based indices (for space reporting).
    touched: AtomicU64,
}

impl SegmentedRegisters {
    fn new() -> Self {
        Self {
            segments: (0..SEGMENTS).map(|_| OnceLock::new()).collect(),
            touched: AtomicU64::new(0),
        }
    }

    fn locate(index: usize) -> (usize, usize) {
        let segment = (usize::BITS - (index + 1).leading_zeros() - 1) as usize;
        let offset = index + 1 - (1 << segment);
        (segment, offset)
    }

    fn register(&self, index: usize) -> &StampedRegister<Slot> {
        let (segment, offset) = Self::locate(index);
        assert!(
            segment < SEGMENTS,
            "register index {index} beyond growth limit"
        );
        self.touched.fetch_max(index as u64 + 1, Ordering::Relaxed);
        let seg = self.segments[segment].get_or_init(|| {
            (0..1usize << segment)
                .map(|_| StampedRegister::new(Slot::Bot))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &seg[offset]
    }

    /// Observation-only access: an unallocated segment reads as `⊥`
    /// without being materialized, and the touched high-water mark is
    /// left alone (observers must not inflate the space metric the
    /// algorithm is measured by).
    fn peek(&self, index: usize) -> Option<&StampedRegister<Slot>> {
        let (segment, offset) = Self::locate(index);
        if segment >= SEGMENTS {
            return None;
        }
        self.segments[segment].get().map(|seg| &seg[offset])
    }

    fn high_water(&self) -> usize {
        self.touched.load(Ordering::Relaxed) as usize
    }
}

/// Unbounded-`M` timestamp object (Section 7): Algorithm 4 over a
/// register bank that grows on demand.
///
/// `getTS` never fails and there is no invocation budget; the space used
/// after `M` calls is still `O(√M)` (the phase accounting of Section 6.3
/// does not depend on `m` being fixed in advance).
///
/// # Example
///
/// ```
/// use ts_core::{GetTsId, GrowableTimestamp, Timestamp};
///
/// let ts = GrowableTimestamp::new();
/// let a = ts.get_ts_with_id(GetTsId::new(0, 0));
/// let b = ts.get_ts_with_id(GetTsId::new(1, 0));
/// assert!(Timestamp::compare(&a, &b));
/// ```
pub struct GrowableTimestamp {
    regs: SegmentedRegisters,
    calls: AtomicU64,
}

impl GrowableTimestamp {
    /// Creates an empty object (no registers allocated yet).
    pub fn new() -> Self {
        Self {
            regs: SegmentedRegisters::new(),
            calls: AtomicU64::new(0),
        }
    }

    /// Total `getTS` calls served.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Highest register index ever touched (reads or writes) — the
    /// object's space consumption.
    pub fn registers_touched(&self) -> usize {
        self.regs.high_water()
    }

    /// Read-only probe of the current round: walks `R[1], R[2], ...`
    /// until the first `⊥` register and returns how many non-`⊥`
    /// registers it saw (lines 1–4 of Algorithm 4 without the rest of
    /// the call). Used as the workload engine's *scan* operation.
    ///
    /// Genuinely read-only: it neither materializes lazily-allocated
    /// segments nor bumps [`registers_touched`](Self::registers_touched)
    /// (an unallocated register is by definition `⊥`), so scan-heavy
    /// workloads cannot distort the object's space accounting.
    pub fn probe_round(&self) -> usize {
        let mut j = 1usize;
        loop {
            match self.regs.peek(j - 1) {
                Some(reg) if !reg.read().is_bot() => j += 1,
                _ => return j - 1,
            }
        }
    }

    /// Reads `R[j]` (paper's 1-based indexing).
    fn read(&self, j: usize) -> Slot {
        self.regs.register(j - 1).read()
    }

    fn read_stamped(&self, j: usize) -> Stamped<Slot> {
        self.regs.register(j - 1).read_stamped()
    }

    /// Writes `R[j]` (paper's 1-based indexing).
    fn write(&self, j: usize, value: Slot) {
        self.regs.register(j - 1).write(value);
    }

    /// Double-collect scan of `R[1..=hi]` (sufficient for line 15, which
    /// only consults the prefix).
    fn scan_prefix(&self, hi: usize) -> Vec<Stamped<Slot>> {
        let collect =
            |_: &Self| -> Vec<Stamped<Slot>> { (1..=hi).map(|j| self.read_stamped(j)).collect() };
        let mut previous = collect(self);
        loop {
            let current = collect(self);
            let same = current
                .iter()
                .zip(&previous)
                .all(|(a, b)| a.stamp == b.stamp);
            if same {
                return current;
            }
            previous = current;
        }
    }

    /// Algorithm 4 `getTS(ID)` without an invocation budget.
    ///
    /// Never fails; progress is non-blocking (see the module docs).
    pub fn get_ts_with_id(&self, id: GetTsId) -> Timestamp {
        self.calls.fetch_add(1, Ordering::Relaxed);

        // Lines 1–4.
        let mut r: Vec<Slot> = vec![Slot::Bot];
        let mut j = 1usize;
        loop {
            let v = self.read(j);
            if v.is_bot() {
                break;
            }
            r.push(v);
            j += 1;
        }
        let myrnd = j - 1;

        // Lines 5–12.
        for j in 1..myrnd {
            if !self.read(myrnd + 1).is_bot() {
                return Timestamp::new((myrnd + 1) as u64, 0);
            }
            let cur = self.read(j);
            let expected = r[myrnd].seq_get(j);
            if expected.is_some() && cur.last() == expected {
                self.write(j, Slot::val(vec![id], myrnd as u64));
                return Timestamp::new(myrnd as u64, j as u64);
            }
            if cur.rnd().is_some_and(|rnd| rnd < myrnd as u64) {
                self.write(j, Slot::val(vec![id], myrnd as u64));
            }
        }

        // Lines 13–16 over the prefix R[1..=myrnd+1].
        let view = self.scan_prefix(myrnd + 1);
        if view[myrnd].value.is_bot() {
            let mut seq = Vec::with_capacity(myrnd + 1);
            for jj in 1..=myrnd {
                let last = view[jj - 1]
                    .value
                    .last()
                    .expect("scanned prefix registers are non-⊥");
                seq.push(last);
            }
            seq.push(id);
            self.write(myrnd + 1, Slot::val(seq, (myrnd + 1) as u64));
        }
        Timestamp::new((myrnd + 1) as u64, 0)
    }

    /// `compare` — Algorithm 3.
    pub fn compare(t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }
}

impl Default for GrowableTimestamp {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GrowableTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GrowableTimestamp")
            .field("calls", &self.calls())
            .field("registers_touched", &self.registers_touched())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn segment_locate_is_consistent() {
        assert_eq!(SegmentedRegisters::locate(0), (0, 0));
        assert_eq!(SegmentedRegisters::locate(1), (1, 0));
        assert_eq!(SegmentedRegisters::locate(2), (1, 1));
        assert_eq!(SegmentedRegisters::locate(3), (2, 0));
        assert_eq!(SegmentedRegisters::locate(6), (2, 3));
        assert_eq!(SegmentedRegisters::locate(7), (3, 0));
    }

    #[test]
    fn sequential_timestamps_strictly_increase_without_budget() {
        let ts = GrowableTimestamp::new();
        let mut last: Option<Timestamp> = None;
        for k in 0..200u32 {
            let t = ts.get_ts_with_id(GetTsId::new(0, k));
            if let Some(prev) = last {
                assert!(Timestamp::compare(&prev, &t), "call {k}");
            }
            last = Some(t);
        }
        assert_eq!(ts.calls(), 200);
    }

    #[test]
    fn space_grows_like_sqrt_of_calls() {
        let ts = GrowableTimestamp::new();
        for k in 0..400u32 {
            ts.get_ts_with_id(GetTsId::new(0, k));
        }
        let touched = ts.registers_touched();
        // Sequential runs use ~√(2M) registers; 2√M + slack is a safe cap.
        let cap = (2.0 * 400f64.sqrt()) as usize + 2;
        assert!(
            touched <= cap,
            "registers touched {touched} exceeds O(√M) cap {cap}"
        );
        assert!(touched >= 20, "suspiciously few registers: {touched}");
    }

    #[test]
    fn probe_round_is_observation_only() {
        let ts = GrowableTimestamp::new();
        assert_eq!(ts.probe_round(), 0, "fresh object has no open round");
        assert_eq!(ts.registers_touched(), 0, "probe must not allocate");
        for k in 0..50u32 {
            ts.get_ts_with_id(GetTsId::new(0, k));
        }
        let touched = ts.registers_touched();
        let round = ts.probe_round();
        assert!(round >= 1 && round <= touched, "round {round} of {touched}");
        assert_eq!(
            ts.registers_touched(),
            touched,
            "probe inflated the space metric"
        );
    }

    #[test]
    fn concurrent_rounds_respect_happens_before() {
        let ts = Arc::new(GrowableTimestamp::new());
        let mut prev_round_max: Option<Timestamp> = None;
        for round in 0..3u32 {
            let outs: Vec<Timestamp> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..8u32)
                    .map(|i| {
                        let ts = Arc::clone(&ts);
                        s.spawn(move |_| ts.get_ts_with_id(GetTsId::new(i, round)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            let min = *outs.iter().min().unwrap();
            let max = *outs.iter().max().unwrap();
            if let Some(pm) = prev_round_max {
                assert!(
                    Timestamp::compare(&pm, &min),
                    "round {round}: {pm} !< {min}"
                );
            }
            prev_round_max = Some(max);
        }
    }
}
