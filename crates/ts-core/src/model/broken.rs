//! Model twin of the deliberately broken shared-counter object.

use ts_model::{Algorithm, Machine, Poised, ProcId};

use crate::timestamp::Timestamp;

/// Step machine for one [`BrokenCounter`](crate::BrokenCounter)
/// `getTS()` call: read the single shared register, write `read + 1`,
/// return it as a scalar timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BrokenCounterMachine {
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    Read,
    Write { t: u64 },
    Finished { t: u64 },
}

impl BrokenCounterMachine {
    /// Creates the machine (every process runs the same program on
    /// register 0).
    pub fn new() -> Self {
        Self { phase: Phase::Read }
    }
}

impl Default for BrokenCounterMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine for BrokenCounterMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::Read => Poised::Read { reg: 0 },
            Phase::Write { t } => Poised::Write { reg: 0, value: *t },
            Phase::Finished { t } => Poised::Done(Timestamp::scalar(*t)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        self.phase = match (&self.phase, observed) {
            (Phase::Read, Some(v)) => Phase::Write { t: v + 1 },
            (Phase::Write { t }, None) => Phase::Finished { t: *t },
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }

    fn may_read(&self) -> Option<Vec<usize>> {
        Some(match self.phase {
            Phase::Read => vec![0],
            Phase::Write { .. } | Phase::Finished { .. } => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match self.phase {
            Phase::Read | Phase::Write { .. } => vec![0],
            Phase::Finished { .. } => vec![],
        })
    }
}

/// Model algorithm for [`BrokenCounter`](crate::BrokenCounter): a
/// one-shot read-increment-write "timestamp" over one shared register.
///
/// Correct for `n ≤ 3`, broken for `n ≥ 4` (a stalled writer rolls the
/// register back). The explorer's minimized counterexample for `n = 4`
/// is the seed of the replay corpus: exported with
/// [`ts_model::replay::minimized_trace`] and replayed against the real
/// object by `ts_workloads::replay`, it reproduces the violation on
/// real threads.
///
/// The toy `CounterAlgorithm` in `ts_model::toy` is the same program
/// with a bare `u64` output; this twin returns [`Timestamp`] so replay
/// harnesses can diff model outputs against the real object's.
#[derive(Debug, Clone)]
pub struct BrokenCounterModel {
    n: usize,
}

impl BrokenCounterModel {
    /// Creates the model for `n` one-shot processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }
}

impl Algorithm for BrokenCounterModel {
    type Machine = BrokenCounterMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        1
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> BrokenCounterMachine {
        assert!(pid < self.n, "pid {pid} out of range");
        BrokenCounterMachine::new()
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(1)
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![0])
    }

    fn op_may_write(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, System};

    #[test]
    fn sequential_calls_count_up() {
        let mut sys = System::new(BrokenCounterModel::new(2));
        assert_eq!(
            sys.run_solo_to_completion(0, 100).unwrap(),
            Timestamp::scalar(1)
        );
        assert_eq!(
            sys.run_solo_to_completion(1, 100).unwrap(),
            Timestamp::scalar(2)
        );
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn clean_up_to_three_processes_broken_at_four() {
        // Mirrors the toy counter's canary role, now with Timestamp
        // outputs: the twin must break exactly where the real object
        // does.
        assert!(Explorer::new(BrokenCounterModel::new(3), 1)
            .run()
            .violation
            .is_none());
        let violation = Explorer::new(BrokenCounterModel::new(4), 1)
            .run()
            .violation
            .expect("n=4 must violate");
        assert!(!violation.schedule.is_empty());
    }
}
