//! Model twin of the simple one-shot algorithm (Algorithms 1–2).

use ts_model::{Algorithm, Machine, Poised, ProcId};

use crate::timestamp::Timestamp;

/// Where a [`SimpleMachine`] is in its register walk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// About to read register `i`.
    Walk { i: usize },
    /// About to write `value` to own register `i`.
    OwnWrite { i: usize, value: u64 },
    /// About to re-read own register `i` (the `sum := sum + R[i]` read).
    OwnReread { i: usize },
    /// Finished.
    Finished,
}

/// Step machine for one `simple-getTS()` call by process `pid`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimpleMachine {
    own: usize,
    m: usize,
    sum: u64,
    phase: Phase,
}

impl SimpleMachine {
    /// Creates the machine for process `pid` of an `n`-process object.
    pub fn new(pid: ProcId, n: usize) -> Self {
        assert!(pid < n);
        Self {
            own: pid / 2,
            m: n.div_ceil(2),
            sum: 0,
            phase: Phase::Walk { i: 0 },
        }
    }

    fn advance_from(&self, i: usize) -> Phase {
        if i + 1 < self.m {
            Phase::Walk { i: i + 1 }
        } else {
            Phase::Finished
        }
    }
}

impl Machine for SimpleMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::Walk { i } => Poised::Read { reg: *i },
            Phase::OwnWrite { i, value } => Poised::Write {
                reg: *i,
                value: *value,
            },
            Phase::OwnReread { i } => Poised::Read { reg: *i },
            Phase::Finished => Poised::Done(Timestamp::scalar(self.sum)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        self.phase = match (&self.phase, observed) {
            (Phase::Walk { i }, Some(v)) => {
                if *i == self.own {
                    Phase::OwnWrite {
                        i: *i,
                        value: v + 1,
                    }
                } else {
                    self.sum += v;
                    self.advance_from(*i)
                }
            }
            (Phase::OwnWrite { i, .. }, None) => Phase::OwnReread { i: *i },
            (Phase::OwnReread { i }, Some(v)) => {
                self.sum += v;
                self.advance_from(*i)
            }
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }

    // DPOR footprints: the walk reads registers i..m (the own-register
    // reread included), and the only write is to the own register —
    // and only while the walk has not passed it yet.
    fn may_read(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::Walk { i } | Phase::OwnReread { i } => (*i..self.m).collect(),
            Phase::OwnWrite { i, .. } => (*i..self.m).collect(),
            Phase::Finished => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::Walk { i } if *i <= self.own => vec![self.own],
            Phase::OwnWrite { .. } => vec![self.own],
            _ => vec![],
        })
    }
}

/// Model algorithm: the Section 5 simple one-shot object for `n`
/// processes over `⌈n/2⌉` registers.
#[derive(Debug, Clone)]
pub struct SimpleModel {
    n: usize,
}

impl SimpleModel {
    /// Creates the model for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }
}

impl Algorithm for SimpleModel {
    type Machine = SimpleMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        self.n.div_ceil(2)
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, op_index: usize) -> SimpleMachine {
        assert_eq!(op_index, 0, "one-shot object");
        SimpleMachine::new(pid, self.n)
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(1)
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some((0..self.n.div_ceil(2)).collect())
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![pid / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, RandomScheduler, System};

    #[test]
    fn solo_machine_matches_concrete_algorithm() {
        let mut sys = System::new(SimpleModel::new(4));
        let t0 = sys.run_solo_to_completion(0, 100).unwrap();
        let t1 = sys.run_solo_to_completion(1, 100).unwrap();
        let t2 = sys.run_solo_to_completion(2, 100).unwrap();
        // Concrete algorithm sequentially returns sums 1, 2, 3, ...
        assert_eq!(t0, Timestamp::scalar(1));
        assert_eq!(t1, Timestamp::scalar(2));
        assert_eq!(t2, Timestamp::scalar(3));
    }

    #[test]
    fn exhaustive_check_two_processes() {
        let report = Explorer::new(SimpleModel::new(2), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.executions > 0);
    }

    #[test]
    fn exhaustive_check_three_processes() {
        let report = Explorer::new(SimpleModel::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn exhaustive_check_four_processes() {
        let report = Explorer::new(SimpleModel::new(4), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn random_runs_ten_processes() {
        for seed in 0..20 {
            let report = RandomScheduler::new(seed).run(SimpleModel::new(10));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 10);
            assert!(report.registers_written <= 5);
        }
    }
}
