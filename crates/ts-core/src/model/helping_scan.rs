//! Model twin of the **adaptive helping scan** of `ts-snapshot`.
//!
//! [`HelpingScanModel`] puts one scanner (pid 0) next to `n - 1`
//! collect-max writers (pids `1..n`) over a shared register file:
//!
//! | register        | role                                           |
//! |-----------------|------------------------------------------------|
//! | `0..w`          | SWMR data registers, one per writer            |
//! | `w`             | scan era (bumped by CAS at every scan start)   |
//! | `w + 1`         | distress flag (raised by a starved scanner)    |
//! | `w + 2 + s`     | writer `s`'s help board slot                   |
//!
//! The scanner collects, then runs validate passes that re-read the data
//! registers and patch moved entries — the model rendition of the
//! dirty-block recollect (the model has one register per "block", so a
//! patched register *is* a dirty block). After one failed pass it raises
//! distress (`starvation_bound = 1`, the most adversarial setting) and
//! polls the help boards between passes, adopting any record whose era
//! tag is at least its own post-bump era — the tag certifies the view's
//! linearization point lies after the scanner's bump, hence inside the
//! scan's interval.
//!
//! Writers mirror `helping_write`: read distress; when calm, do a plain
//! collect-max `getTS` (collect, write `max + 1` to the own register);
//! when distress is up, first read the era, produce a *validated* view
//! (collect + validate-until-clean), publish it era-tagged on the own
//! board slot, and only then store `max(view) + 1`. Two deliberate
//! simplifications versus the implementation, both conservative: the
//! model's distress flag is sticky (never decremented — more helping
//! interleavings, never fewer), and helpers always build their own view
//! rather than adopting a peer's (adoption republishes with a preserved
//! tag, which changes no observable output in histories this small).
//!
//! Outputs are packed into `u64`s: writers return the timestamp they
//! stored; scans return bit 63, their post-bump era (bits 32..48) and
//! the view, one byte per writer. The timestamp property then holds for
//! *every* non-overlapping pair — writer/writer by strict timestamp
//! order, writer/scan by register monotonicity (a later view dominates
//! every completed store; a later store exceeds every validated view),
//! and scan/scan componentwise with the strictly increasing era as the
//! tie-breaker. The exhaustive and PCT sweeps in `tests/model_check.rs`
//! turn that into the headline claim: no interleaving of the helping
//! scan returns a torn or stale view, and no recollect path runs
//! unboundedly (the exhaustive run completes without tripping the
//! step-depth bound).

use ts_model::{Algorithm, Machine, Poised, ProcId};

/// Bit 63: marks a scan output (writers return plain timestamps).
const SCAN_BIT: u64 = 1 << 63;

/// Packs a scan output: [`SCAN_BIT`], the post-bump era in bits 32..48
/// and one view byte per writer.
fn encode_scan(era0: u64, view: &[u64]) -> u64 {
    debug_assert!(era0 < 1 << 16);
    SCAN_BIT | (era0 << 32) | encode_view(view)
}

fn encode_view(view: &[u64]) -> u64 {
    view.iter().enumerate().fold(0, |acc, (i, &v)| {
        debug_assert!(v < 1 << 8, "view component overflows its byte");
        acc | (v << (8 * i))
    })
}

fn decode_view(bits: u64, writers: usize) -> Vec<u64> {
    (0..writers).map(|i| (bits >> (8 * i)) & 0xff).collect()
}

/// Packs a help-board record: era tag in the high half, view below.
/// Tags are always `>= 1` (distress is only visible after the first
/// era bump), so an empty board (0) never passes the adoption filter.
fn encode_record(tag: u64, view: &[u64]) -> u64 {
    (tag << 32) | encode_view(view)
}

/// Step machine for one scanner or writer operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HelpingScanMachine {
    pid: usize,
    writers: usize,
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    // ---- scanner (pid 0) ----
    /// Read the era word ahead of the bump CAS.
    ReadEra,
    /// Bump the era `e -> e + 1`; the post-bump value is the adoption
    /// threshold.
    BumpEra {
        e: u64,
    },
    /// Opening collect of the data registers.
    Collect {
        era0: u64,
        i: usize,
        view: Vec<u64>,
    },
    /// Validate pass: re-read every data register, patching moved
    /// entries. A clean pass is a linearizable view.
    Validate {
        era0: u64,
        i: usize,
        patched: bool,
        view: Vec<u64>,
        distressed: bool,
    },
    /// First pass failed: raise the distress flag.
    RaiseDistress {
        era0: u64,
        view: Vec<u64>,
    },
    /// Between passes, poll the help boards for an adoptable record.
    PollBoards {
        era0: u64,
        j: usize,
        view: Vec<u64>,
    },

    // ---- writer (pid >= 1) ----
    /// Read the distress flag to pick the path.
    ReadDistress,
    /// Calm path: plain collect.
    FastCollect {
        i: usize,
        max: u64,
    },
    /// Helping path: read the era before collecting (the tag must
    /// lower-bound the view's linearization point).
    ReadHelpEra,
    /// Helping collect of the data registers.
    HelpCollect {
        tag: u64,
        i: usize,
        view: Vec<u64>,
    },
    /// Helping validate pass, looped until clean.
    HelpValidate {
        tag: u64,
        i: usize,
        patched: bool,
        view: Vec<u64>,
    },
    /// Publish the validated, era-tagged view on the own board slot.
    Publish {
        tag: u64,
        view: Vec<u64>,
    },
    /// Store the timestamp in the own data register.
    WriteOwn {
        t: u64,
    },

    Finished {
        out: u64,
    },
}

impl HelpingScanMachine {
    /// Creates the machine for process `pid` (0 = scanner) of a model
    /// with `writers` writers.
    pub fn new(pid: ProcId, writers: usize) -> Self {
        assert!(pid <= writers, "pid out of range");
        let phase = if pid == 0 {
            Phase::ReadEra
        } else {
            Phase::ReadDistress
        };
        Self {
            pid,
            writers,
            phase,
        }
    }

    fn era_reg(&self) -> usize {
        self.writers
    }

    fn distress_reg(&self) -> usize {
        self.writers + 1
    }

    fn board_reg(&self, slot: usize) -> usize {
        self.writers + 2 + slot
    }

    /// The writer's own data register (writers only).
    fn slot(&self) -> usize {
        debug_assert!(self.pid >= 1);
        self.pid - 1
    }
}

impl Machine for HelpingScanMachine {
    type Value = u64;
    type Output = u64;

    fn poised(&self) -> Poised<u64, u64> {
        match &self.phase {
            Phase::ReadEra => Poised::Read {
                reg: self.era_reg(),
            },
            Phase::BumpEra { e } => Poised::Cas {
                reg: self.era_reg(),
                expected: *e,
                new: e + 1,
            },
            Phase::Collect { i, .. }
            | Phase::Validate { i, .. }
            | Phase::HelpCollect { i, .. }
            | Phase::HelpValidate { i, .. } => Poised::Read { reg: *i },
            Phase::RaiseDistress { .. } => Poised::Write {
                reg: self.distress_reg(),
                value: 1,
            },
            Phase::PollBoards { j, .. } => Poised::Read {
                reg: self.board_reg(*j),
            },
            Phase::ReadDistress => Poised::Read {
                reg: self.distress_reg(),
            },
            Phase::FastCollect { i, .. } => Poised::Read { reg: *i },
            Phase::ReadHelpEra => Poised::Read {
                reg: self.era_reg(),
            },
            Phase::Publish { tag, view } => Poised::Write {
                reg: self.board_reg(self.slot()),
                value: encode_record(*tag, view),
            },
            Phase::WriteOwn { t } => Poised::Write {
                reg: self.slot(),
                value: *t,
            },
            Phase::Finished { out } => Poised::Done(*out),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        let w = self.writers;
        self.phase = match (&self.phase, observed) {
            (Phase::ReadEra, Some(e)) => Phase::BumpEra { e },
            (Phase::BumpEra { e }, Some(prior)) => {
                if prior == *e {
                    Phase::Collect {
                        era0: e + 1,
                        i: 0,
                        view: Vec::with_capacity(w),
                    }
                } else {
                    // Lost the bump (only possible with several
                    // scanners; kept for generality).
                    Phase::BumpEra { e: prior }
                }
            }
            (Phase::Collect { era0, i, view }, Some(v)) => {
                let mut view = view.clone();
                view.push(v);
                if i + 1 < w {
                    Phase::Collect {
                        era0: *era0,
                        i: i + 1,
                        view,
                    }
                } else {
                    Phase::Validate {
                        era0: *era0,
                        i: 0,
                        patched: false,
                        view,
                        distressed: false,
                    }
                }
            }
            (
                Phase::Validate {
                    era0,
                    i,
                    patched,
                    view,
                    distressed,
                },
                Some(v),
            ) => {
                let mut view = view.clone();
                let patched = *patched || view[*i] != v;
                view[*i] = v;
                if i + 1 < w {
                    Phase::Validate {
                        era0: *era0,
                        i: i + 1,
                        patched,
                        view,
                        distressed: *distressed,
                    }
                } else if !patched {
                    Phase::Finished {
                        out: encode_scan(*era0, &view),
                    }
                } else if !distressed {
                    Phase::RaiseDistress { era0: *era0, view }
                } else {
                    Phase::PollBoards {
                        era0: *era0,
                        j: 0,
                        view,
                    }
                }
            }
            (Phase::RaiseDistress { era0, view }, None) => Phase::PollBoards {
                era0: *era0,
                j: 0,
                view: view.clone(),
            },
            (Phase::PollBoards { era0, j, view }, Some(record)) => {
                let tag = record >> 32;
                if tag >= *era0 {
                    // Adopt: the tag certifies the helped view
                    // linearized after our era bump.
                    Phase::Finished {
                        out: SCAN_BIT | (*era0 << 32) | (record & 0xffff_ffff),
                    }
                } else if j + 1 < w {
                    Phase::PollBoards {
                        era0: *era0,
                        j: j + 1,
                        view: view.clone(),
                    }
                } else {
                    Phase::Validate {
                        era0: *era0,
                        i: 0,
                        patched: false,
                        view: view.clone(),
                        distressed: true,
                    }
                }
            }
            (Phase::ReadDistress, Some(d)) => {
                if d == 0 {
                    Phase::FastCollect { i: 0, max: 0 }
                } else {
                    Phase::ReadHelpEra
                }
            }
            (Phase::FastCollect { i, max }, Some(v)) => {
                let max = (*max).max(v);
                if i + 1 < w {
                    Phase::FastCollect { i: i + 1, max }
                } else {
                    Phase::WriteOwn { t: max + 1 }
                }
            }
            (Phase::ReadHelpEra, Some(e)) => Phase::HelpCollect {
                tag: e,
                i: 0,
                view: Vec::with_capacity(w),
            },
            (Phase::HelpCollect { tag, i, view }, Some(v)) => {
                let mut view = view.clone();
                view.push(v);
                if i + 1 < w {
                    Phase::HelpCollect {
                        tag: *tag,
                        i: i + 1,
                        view,
                    }
                } else {
                    Phase::HelpValidate {
                        tag: *tag,
                        i: 0,
                        patched: false,
                        view,
                    }
                }
            }
            (
                Phase::HelpValidate {
                    tag,
                    i,
                    patched,
                    view,
                },
                Some(v),
            ) => {
                let mut view = view.clone();
                let patched = *patched || view[*i] != v;
                view[*i] = v;
                if i + 1 < w {
                    Phase::HelpValidate {
                        tag: *tag,
                        i: i + 1,
                        patched,
                        view,
                    }
                } else if patched {
                    Phase::HelpValidate {
                        tag: *tag,
                        i: 0,
                        patched: false,
                        view,
                    }
                } else {
                    Phase::Publish { tag: *tag, view }
                }
            }
            (Phase::Publish { tag: _, view }, None) => Phase::WriteOwn {
                t: view.iter().copied().max().unwrap_or(0) + 1,
            },
            (Phase::WriteOwn { t }, None) => Phase::Finished { out: *t },
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }

    // DPOR footprints: registers each phase may still touch. The
    // scanner can always loop back to a validate pass until it is done,
    // so the data registers and boards stay readable throughout; its
    // only writes are the era CAS (until it lands) and the distress
    // flag (until raised). A writer that has not yet read distress may
    // take either path, so both paths' footprints union at the start.
    fn may_read(&self) -> Option<Vec<usize>> {
        let w = self.writers;
        let data = 0..w;
        let boards = (0..w).map(|s| self.board_reg(s));
        Some(match &self.phase {
            Phase::ReadEra | Phase::BumpEra { .. } => {
                data.chain([self.era_reg()]).chain(boards).collect()
            }
            Phase::Collect { .. }
            | Phase::Validate { .. }
            | Phase::RaiseDistress { .. }
            | Phase::PollBoards { .. } => data.chain(boards).collect(),
            Phase::ReadDistress => data.chain([self.era_reg(), self.distress_reg()]).collect(),
            Phase::FastCollect { i, .. } => (*i..w).collect(),
            Phase::ReadHelpEra => data.chain([self.era_reg()]).collect(),
            Phase::HelpCollect { .. } | Phase::HelpValidate { .. } => data.collect(),
            Phase::Publish { .. } | Phase::WriteOwn { .. } | Phase::Finished { .. } => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::ReadEra | Phase::BumpEra { .. } => {
                vec![self.era_reg(), self.distress_reg()]
            }
            Phase::Collect { .. }
            | Phase::Validate {
                distressed: false, ..
            } => {
                vec![self.distress_reg()]
            }
            Phase::RaiseDistress { .. } => vec![self.distress_reg()],
            Phase::Validate {
                distressed: true, ..
            }
            | Phase::PollBoards { .. } => vec![],
            Phase::ReadDistress => vec![self.slot(), self.board_reg(self.slot())],
            Phase::FastCollect { .. } => vec![self.slot()],
            Phase::ReadHelpEra | Phase::HelpCollect { .. } | Phase::HelpValidate { .. } => {
                vec![self.slot(), self.board_reg(self.slot())]
            }
            Phase::Publish { .. } => vec![self.slot(), self.board_reg(self.slot())],
            Phase::WriteOwn { .. } => vec![self.slot()],
            Phase::Finished { .. } => vec![],
        })
    }
}

/// Model algorithm: one adaptive helping scanner (pid 0) plus
/// `n - 1` collect-max writers over `3(n - 1) + 2` registers.
#[derive(Debug, Clone)]
pub struct HelpingScanModel {
    n: usize,
}

impl HelpingScanModel {
    /// Creates the model for `n` processes: pid 0 scans, the rest
    /// write.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 5` (the view packs one byte per writer
    /// into the scan output).
    pub fn new(n: usize) -> Self {
        assert!((2..=5).contains(&n), "need a scanner and 1..=4 writers");
        Self { n }
    }

    fn writers(&self) -> usize {
        self.n - 1
    }
}

impl Algorithm for HelpingScanModel {
    type Machine = HelpingScanMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        // w data + era + distress + w boards.
        2 * self.writers() + 2
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> HelpingScanMachine {
        HelpingScanMachine::new(pid, self.writers())
    }

    /// The timestamp property, extended to scan outputs (see the module
    /// docs for why each arm is sound and strict).
    fn compare(&self, t1: &u64, t2: &u64) -> bool {
        let w = self.writers();
        match (t1 & SCAN_BIT != 0, t2 & SCAN_BIT != 0) {
            (false, false) => t1 < t2,
            (false, true) => {
                // A later view dominates the completed store.
                decode_view(*t2, w).iter().max().copied().unwrap_or(0) >= *t1
            }
            (true, false) => {
                // A later store exceeds the validated view.
                *t2 > decode_view(*t1, w).iter().max().copied().unwrap_or(0)
            }
            (true, true) => {
                let (v1, v2) = (decode_view(*t1, w), decode_view(*t2, w));
                let (e1, e2) = ((t1 >> 32) & 0xffff, (t2 >> 32) & 0xffff);
                e1 < e2 && v1.iter().zip(&v2).all(|(a, b)| a <= b)
            }
        }
    }

    fn ops_per_process(&self) -> Option<usize> {
        None // long-lived
    }

    fn op_may_read(&self, pid: ProcId) -> Option<Vec<usize>> {
        let w = self.writers();
        Some(if pid == 0 {
            // data + era + boards (the scanner never reads distress).
            (0..w).chain([w]).chain(w + 2..2 * w + 2).collect()
        } else {
            // distress + era + data.
            (0..w).chain([w, w + 1]).collect()
        })
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        let w = self.writers();
        Some(if pid == 0 {
            vec![w, w + 1] // era CAS + distress flag
        } else {
            vec![pid - 1, w + 2 + (pid - 1)] // own data + own board
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, RandomScheduler, System};

    #[test]
    fn solo_scan_is_two_clean_sweeps() {
        let mut sys = System::new(HelpingScanModel::new(3));
        // invoke, read era, bump, collect x2, validate x2, done.
        let out = sys.run_solo_to_completion(0, 10).unwrap();
        assert_eq!(out, encode_scan(1, &[0, 0]));
    }

    #[test]
    fn solo_writers_count_up_and_scans_observe_them() {
        let mut sys = System::new(HelpingScanModel::new(3));
        assert_eq!(sys.run_solo_to_completion(1, 10).unwrap(), 1);
        assert_eq!(sys.run_solo_to_completion(2, 10).unwrap(), 2);
        assert_eq!(sys.run_solo_to_completion(1, 10).unwrap(), 3);
        let scan = sys.run_solo_to_completion(0, 10).unwrap();
        assert_eq!(scan, encode_scan(1, &[3, 2]));
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn starved_scanner_adopts_the_helped_view() {
        let mut sys = System::new(HelpingScanModel::new(2));
        // Scanner: invoke, read era (0), bump to 1, collect data[0]=0.
        for _ in 0..4 {
            sys.step(0).unwrap();
        }
        // Writer storms a calm op: data[0] becomes 1.
        assert_eq!(sys.run_solo_to_completion(1, 10).unwrap(), 1);
        // Scanner's validate patches 1, raises distress, polls an empty
        // board — stop just before the next validate pass. (3 steps)
        for _ in 0..3 {
            sys.step(0).unwrap();
        }
        // The writer's next op sees distress and helps: read distress
        // (1), read era (1), collect [1], validate clean, publish
        // (tag 1, view [1]), store 2.
        assert_eq!(sys.run_solo_to_completion(1, 15).unwrap(), 2);
        // The store dirties the scanner's pass again (it patches 2),
        // so without helping the scan would have returned view [2] —
        // returning [1] proves the poll adopted the era-1 record.
        let out = sys.run_solo_to_completion(0, 10).unwrap();
        assert_eq!(out, encode_scan(1, &[1]), "adopted the helped view");
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn stale_tags_are_not_adoptable() {
        // Drive the scanner machine by hand: a board record tagged
        // below the scan's post-bump era must be skipped (its view may
        // linearize before this scan's invocation), while a fresh tag
        // is adopted as-is.
        let mut m = HelpingScanMachine::new(0, 1);
        m.observe(Some(5)); // ReadEra -> BumpEra{5}
        m.observe(Some(5)); // CAS lands -> Collect, era0 = 6
        m.observe(Some(7)); // collect data[0] = 7
        m.observe(Some(8)); // validate reads 8 -> patched -> RaiseDistress
        assert!(matches!(m.phase, Phase::RaiseDistress { .. }));
        m.observe(None); // distress := 1 -> PollBoards
                         // A stale record (tag 5 < era0 6): not adoptable, and with one
                         // writer the poll loops back into a validate pass.
        m.observe(Some(encode_record(5, &[7])));
        assert!(matches!(
            m.phase,
            Phase::Validate {
                distressed: true,
                ..
            }
        ));
        m.observe(Some(9)); // validate reads 9 -> patched -> poll again
                            // A fresh record (tag 6 >= era0 6): adopted verbatim.
        m.observe(Some(encode_record(6, &[8])));
        match m.poised() {
            Poised::Done(out) => assert_eq!(out, encode_scan(6, &[8])),
            other => panic!("expected adoption, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_check_two_processes_two_ops_each() {
        let report = Explorer::new(HelpingScanModel::new(2), 2).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.depth_bounded, "recollect path failed to bound");
    }

    #[test]
    fn exhaustive_check_three_processes_one_op() {
        let report = Explorer::new(HelpingScanModel::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.depth_bounded, "recollect path failed to bound");
    }

    #[test]
    fn random_long_lived_runs() {
        for seed in 0..10 {
            let report = RandomScheduler::new(seed)
                .ops_per_process(3)
                .run(HelpingScanModel::new(4));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 12);
        }
    }
}
