//! Model twin of Algorithm 4 (the `⌈2√M⌉`-register object).
//!
//! The machine follows the pseudocode line-by-line, including the
//! double-collect scan of line 13 expressed as individual register
//! reads. In the model, value equality is exact change detection: every
//! write to a given register carries a distinct `last(seq)` (Claim
//! 6.1(b)), so a repeated identical collect certifies a linearizable
//! view without stamps.

use ts_model::{Algorithm, Machine, Poised, ProcId};

use crate::bounded::{registers_for_budget, OverwritePolicy, Slot};
use crate::ids::GetTsId;
use crate::timestamp::Timestamp;

/// Where a [`BoundedMachine`] is in Algorithm 4.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Lines 1–3: reading `R[j]` of the while-loop (paper 1-based `j`).
    While { j: usize },
    /// Line 6 of iteration `j`: reading `R[myrnd + 1]`.
    CheckNext { j: usize },
    /// Line 7/10 of iteration `j`: reading `R[j]`.
    ReadReg { j: usize },
    /// Line 8: writing the invalidating pair, then returning `(myrnd, j)`.
    WriteTurn { j: usize },
    /// Line 11: writing the pin-down pair, then continuing the loop.
    WritePin { j: usize },
    /// Line 13: reading register `idx` (0-based) of the current collect.
    Scan { idx: usize },
    /// Line 15: writing the phase-opening value.
    WriteOpen { value: Slot },
    /// Line 9/12/16: returning.
    Finished { ts: Timestamp },
}

/// Step machine for one Algorithm 4 `getTS(ID)` call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoundedMachine {
    id: GetTsId,
    m: usize,
    policy: OverwritePolicy,
    myrnd: usize,
    /// Local views `r[1..=myrnd]` from the while-loop (index 0 unused).
    r: Vec<Slot>,
    /// Collect in progress (line 13).
    current: Vec<Slot>,
    /// Last completed collect (line 13).
    previous: Option<Vec<Slot>>,
    phase: Phase,
}

impl BoundedMachine {
    /// Creates the machine for getTS-id `id` over `m` registers.
    pub fn new(id: GetTsId, m: usize, policy: OverwritePolicy) -> Self {
        Self {
            id,
            m,
            policy,
            myrnd: 0,
            r: vec![Slot::Bot],
            current: Vec::new(),
            previous: None,
            phase: Phase::While { j: 1 },
        }
    }

    fn inval_value(&self) -> Slot {
        Slot::val(vec![self.id], self.myrnd as u64)
    }

    /// Next phase after finishing loop iteration `j` without returning.
    fn next_iteration(&self, j: usize) -> Phase {
        if j < self.myrnd.saturating_sub(1) {
            Phase::CheckNext { j: j + 1 }
        } else {
            Phase::Scan { idx: 0 }
        }
    }

    /// Entry into the for-loop (or directly to the scan when empty).
    fn enter_loop(&self) -> Phase {
        if self.myrnd >= 2 {
            Phase::CheckNext { j: 1 }
        } else {
            Phase::Scan { idx: 0 }
        }
    }

    /// Lines 14–15 once the double collect succeeded with `view`.
    fn after_scan(&self, view: &[Slot]) -> Phase {
        if view[self.myrnd].is_bot() {
            assert!(
                self.myrnd + 1 < self.m,
                "space bound violated: writing sentinel register R[{}]",
                self.m
            );
            let mut seq = Vec::with_capacity(self.myrnd + 1);
            for jj in 1..=self.myrnd {
                seq.push(
                    view[jj - 1]
                        .last()
                        .expect("scanned prefix registers are non-⊥"),
                );
            }
            seq.push(self.id);
            Phase::WriteOpen {
                value: Slot::val(seq, (self.myrnd + 1) as u64),
            }
        } else {
            Phase::Finished {
                ts: Timestamp::new((self.myrnd + 1) as u64, 0),
            }
        }
    }
}

impl Machine for BoundedMachine {
    type Value = Slot;
    type Output = Timestamp;

    fn poised(&self) -> Poised<Slot, Timestamp> {
        match &self.phase {
            Phase::While { j } => Poised::Read { reg: j - 1 },
            Phase::CheckNext { .. } => Poised::Read { reg: self.myrnd },
            Phase::ReadReg { j } => Poised::Read { reg: j - 1 },
            Phase::WriteTurn { j } | Phase::WritePin { j } => Poised::Write {
                reg: j - 1,
                value: self.inval_value(),
            },
            Phase::Scan { idx } => Poised::Read { reg: *idx },
            Phase::WriteOpen { value } => Poised::Write {
                reg: self.myrnd,
                value: value.clone(),
            },
            Phase::Finished { ts } => Poised::Done(*ts),
        }
    }

    fn observe(&mut self, observed: Option<Slot>) {
        self.phase = match (self.phase.clone(), observed) {
            (Phase::While { j }, Some(v)) => {
                if v.is_bot() {
                    self.myrnd = j - 1;
                    self.enter_loop()
                } else {
                    self.r.push(v);
                    assert!(
                        j < self.m,
                        "space bound violated: all {} registers non-⊥",
                        self.m
                    );
                    Phase::While { j: j + 1 }
                }
            }
            (Phase::CheckNext { j }, Some(v)) => {
                if v.is_bot() {
                    Phase::ReadReg { j }
                } else {
                    // Line 12.
                    Phase::Finished {
                        ts: Timestamp::new((self.myrnd + 1) as u64, 0),
                    }
                }
            }
            (Phase::ReadReg { j }, Some(cur)) => {
                let expected = self.r[self.myrnd].seq_get(j);
                if expected.is_some() && cur.last() == expected {
                    Phase::WriteTurn { j }
                } else {
                    let overwrite = match self.policy {
                        OverwritePolicy::Paper => {
                            cur.rnd().is_some_and(|rnd| rnd < self.myrnd as u64)
                        }
                        OverwritePolicy::Always => true,
                        OverwritePolicy::Never => false,
                    };
                    if overwrite {
                        Phase::WritePin { j }
                    } else {
                        self.next_iteration(j)
                    }
                }
            }
            (Phase::WriteTurn { j }, None) => Phase::Finished {
                ts: Timestamp::new(self.myrnd as u64, j as u64),
            },
            (Phase::WritePin { j }, None) => self.next_iteration(j),
            (Phase::Scan { idx }, Some(v)) => {
                self.current.push(v);
                if idx + 1 < self.m {
                    Phase::Scan { idx: idx + 1 }
                } else {
                    let collect = std::mem::take(&mut self.current);
                    if self.previous.as_ref() == Some(&collect) {
                        self.after_scan(&collect)
                    } else {
                        self.previous = Some(collect);
                        Phase::Scan { idx: 0 }
                    }
                }
            }
            (Phase::WriteOpen { .. }, None) => Phase::Finished {
                ts: Timestamp::new((self.myrnd + 1) as u64, 0),
            },
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }
}

/// Model algorithm: Algorithm 4 with budget `M = n · ops_per_process`,
/// over `max(⌈2√M⌉, 2)` registers. The default constructors build the
/// one-shot specialization (`ops_per_process = 1`, Theorem 1.3).
#[derive(Debug, Clone)]
pub struct BoundedModel {
    n: usize,
    ops_per_process: usize,
    m: usize,
    policy: OverwritePolicy,
}

impl BoundedModel {
    /// Creates the one-shot model for `n` processes with the paper's
    /// overwrite policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, OverwritePolicy::Paper)
    }

    /// Creates the one-shot model with an explicit overwrite policy
    /// (for the ablation and bug-demonstration experiments).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_policy(n: usize, policy: OverwritePolicy) -> Self {
        Self::with_ops(n, 1, policy)
    }

    /// Creates the general `M`-bounded model: `n` processes, each
    /// invoking `getTS` up to `ops_per_process` times
    /// (`M = n · ops_per_process` total budget).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ops_per_process == 0`.
    pub fn with_ops(n: usize, ops_per_process: usize, policy: OverwritePolicy) -> Self {
        assert!(n > 0);
        assert!(ops_per_process > 0);
        Self {
            n,
            ops_per_process,
            m: registers_for_budget(n * ops_per_process).max(2),
            policy,
        }
    }

    /// The register count `m`.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl Algorithm for BoundedModel {
    type Machine = BoundedMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        self.m
    }

    fn initial_value(&self) -> Slot {
        Slot::Bot
    }

    fn invoke(&self, pid: ProcId, op_index: usize) -> BoundedMachine {
        assert!(
            op_index < self.ops_per_process,
            "invocation budget exceeded for p{pid}"
        );
        BoundedMachine::new(
            GetTsId::new(pid as u32, op_index as u32),
            self.m,
            self.policy,
        )
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        Some(self.ops_per_process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, RandomScheduler, System};

    #[test]
    fn solo_sequence_matches_concrete_walkthrough() {
        // Mirror of the concrete test: (1,0), (2,0), (2,1), (3,0), ...
        // but sized for n = 6 processes.
        let mut sys = System::new(BoundedModel::new(6));
        let expected = [
            Timestamp::new(1, 0),
            Timestamp::new(2, 0),
            Timestamp::new(2, 1),
            Timestamp::new(3, 0),
            Timestamp::new(3, 1),
            Timestamp::new(3, 2),
        ];
        for (p, want) in expected.iter().enumerate() {
            let got = sys.run_solo_to_completion(p, 1000).unwrap();
            assert_eq!(got, *want, "call {p}");
        }
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn exhaustive_check_two_processes() {
        let report = Explorer::new(BoundedModel::new(2), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.executions > 0);
    }

    #[test]
    fn random_runs_many_processes() {
        for seed in 0..10 {
            let report = RandomScheduler::new(seed).run(BoundedModel::new(12));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 12);
            // Space: strictly fewer writes than m registers (sentinel).
            assert!(report.registers_written < BoundedModel::new(12).m());
        }
    }

    #[test]
    fn never_overwrite_policy_still_passes_tiny_exhaustive_check() {
        // The Section 6.1 bug needs at least 5 participants to manifest;
        // with 2 processes the Never policy is still safe, which the
        // explorer confirms (the bug demo lives in the integration
        // tests).
        let report = Explorer::new(BoundedModel::with_policy(2, OverwritePolicy::Never), 1).run();
        assert!(report.violation.is_none());
    }

    #[test]
    fn multi_shot_model_matches_concrete_walkthrough() {
        // One process, budget 6: the sequential (1,0), (2,0), (2,1), ...
        // pattern must match the concrete object's.
        let mut sys = System::new(BoundedModel::with_ops(1, 6, OverwritePolicy::Paper));
        let expected = [
            Timestamp::new(1, 0),
            Timestamp::new(2, 0),
            Timestamp::new(2, 1),
            Timestamp::new(3, 0),
            Timestamp::new(3, 1),
            Timestamp::new(3, 2),
        ];
        for (k, want) in expected.iter().enumerate() {
            let got = sys.run_solo_to_completion(0, 10_000).unwrap();
            assert_eq!(got, *want, "call {k}");
        }
        assert!(sys.check_property().is_none());
    }

    #[test]
    fn multi_shot_exhaustive_two_processes_two_ops() {
        let report = Explorer::new(BoundedModel::with_ops(2, 2, OverwritePolicy::Paper), 2).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.executions > 0);
    }

    #[test]
    fn multi_shot_random_runs_are_clean() {
        for seed in 0..10 {
            let report = RandomScheduler::new(seed)
                .ops_per_process(3)
                .run(BoundedModel::with_ops(4, 3, OverwritePolicy::Paper));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 12);
        }
    }

    #[test]
    fn machine_rejects_invalid_observation() {
        let mut m = BoundedMachine::new(GetTsId::one_shot(0), 3, OverwritePolicy::Paper);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.observe(None) // poised on a read
        }));
        assert!(result.is_err());
    }
}
