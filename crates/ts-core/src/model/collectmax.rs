//! Model twin of the long-lived collect-max baseline.

use ts_model::{Algorithm, Machine, Poised, ProcId};

use crate::timestamp::Timestamp;

/// Step machine for one collect-max `getTS()` call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CollectMaxMachine {
    pid: usize,
    n: usize,
    phase: Phase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    Collect { i: usize, max: u64 },
    WriteOwn { t: u64 },
    Finished { t: u64 },
}

impl CollectMaxMachine {
    /// Creates the machine for process `pid` of an `n`-process object.
    pub fn new(pid: ProcId, n: usize) -> Self {
        assert!(pid < n);
        Self {
            pid,
            n,
            phase: Phase::Collect { i: 0, max: 0 },
        }
    }
}

impl Machine for CollectMaxMachine {
    type Value = u64;
    type Output = Timestamp;

    fn poised(&self) -> Poised<u64, Timestamp> {
        match &self.phase {
            Phase::Collect { i, .. } => Poised::Read { reg: *i },
            Phase::WriteOwn { t } => Poised::Write {
                reg: self.pid,
                value: *t,
            },
            Phase::Finished { t } => Poised::Done(Timestamp::scalar(*t)),
        }
    }

    fn observe(&mut self, observed: Option<u64>) {
        self.phase = match (&self.phase, observed) {
            (Phase::Collect { i, max }, Some(v)) => {
                let max = (*max).max(v);
                if i + 1 < self.n {
                    Phase::Collect { i: i + 1, max }
                } else {
                    Phase::WriteOwn { t: max + 1 }
                }
            }
            (Phase::WriteOwn { t }, None) => Phase::Finished { t: *t },
            (phase, obs) => panic!("invalid observe({obs:?}) in {phase:?}"),
        };
    }

    // DPOR footprints: the collect still reads registers i..n; the only
    // write a call ever performs is to the caller's own SWMR register.
    fn may_read(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::Collect { i, .. } => (*i..self.n).collect(),
            Phase::WriteOwn { .. } | Phase::Finished { .. } => vec![],
        })
    }

    fn may_write(&self) -> Option<Vec<usize>> {
        Some(match &self.phase {
            Phase::Collect { .. } | Phase::WriteOwn { .. } => vec![self.pid],
            Phase::Finished { .. } => vec![],
        })
    }
}

/// Model algorithm: long-lived collect-max over `n` SWMR registers.
#[derive(Debug, Clone)]
pub struct CollectMaxModel {
    n: usize,
}

impl CollectMaxModel {
    /// Creates the model for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }
}

impl Algorithm for CollectMaxModel {
    type Machine = CollectMaxMachine;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        self.n
    }

    fn initial_value(&self) -> u64 {
        0
    }

    fn invoke(&self, pid: ProcId, _op_index: usize) -> CollectMaxMachine {
        CollectMaxMachine::new(pid, self.n)
    }

    fn compare(&self, t1: &Timestamp, t2: &Timestamp) -> bool {
        Timestamp::compare(t1, t2)
    }

    fn ops_per_process(&self) -> Option<usize> {
        None // long-lived
    }

    fn op_may_read(&self, _pid: ProcId) -> Option<Vec<usize>> {
        Some((0..self.n).collect())
    }

    fn op_may_write(&self, pid: ProcId) -> Option<Vec<usize>> {
        Some(vec![pid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_model::{Explorer, RandomScheduler, System};

    #[test]
    fn sequential_calls_count_up() {
        let mut sys = System::new(CollectMaxModel::new(2));
        assert_eq!(
            sys.run_solo_to_completion(0, 100).unwrap(),
            Timestamp::scalar(1)
        );
        assert_eq!(
            sys.run_solo_to_completion(1, 100).unwrap(),
            Timestamp::scalar(2)
        );
        assert_eq!(
            sys.run_solo_to_completion(0, 100).unwrap(),
            Timestamp::scalar(3)
        );
    }

    #[test]
    fn exhaustive_check_two_processes_two_ops_each() {
        let report = Explorer::new(CollectMaxModel::new(2), 2).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn exhaustive_check_three_processes_one_op() {
        let report = Explorer::new(CollectMaxModel::new(3), 1).run();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn random_long_lived_runs() {
        for seed in 0..10 {
            let report = RandomScheduler::new(seed)
                .ops_per_process(3)
                .run(CollectMaxModel::new(6));
            assert!(report.violation.is_none(), "seed {seed}");
            assert_eq!(report.completed_ops, 18);
        }
    }
}
